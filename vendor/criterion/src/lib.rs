//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the subset of criterion 0.5's API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] (`bench_function`, `sample_size`, `finish`),
//! [`Bencher`] (`iter`, `iter_batched`), [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed over a fixed number of samples whose mean/min are printed.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! the goal is that `cargo bench` compiles, runs, and produces comparable
//! wall-clock numbers offline.

use std::time::{Duration, Instant};

/// Re-export so benches written against criterion's `black_box` still work.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// How batched inputs are grouped. Only a hint upstream; ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Runs the measured closure and accumulates elapsed time.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            elapsed: Vec::new(),
        }
    }

    /// Time `routine` once per sample (plus one untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.elapsed.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.elapsed.iter().sum();
        let mean = total / self.elapsed.len() as u32;
        let min = self.elapsed.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            self.elapsed.len()
        );
    }
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Run one named benchmark. The name is anything string-like, matching
    /// upstream criterion's `IntoBenchmarkId` flexibility (`&str`, `String`).
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Criterion {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name.as_ref());
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name.as_ref()));
        self
    }

    /// End the group. (Reports are printed eagerly; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Declare a benchmark group: `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // one warm-up + DEFAULT_SAMPLES timed runs
        assert_eq!(calls, 1 + DEFAULT_SAMPLES as u32);
    }

    #[test]
    fn groups_honor_sample_size_and_batching() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut setups = 0u32;
        let mut runs = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
