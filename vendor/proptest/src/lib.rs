//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements the subset of the proptest 1.x API the workspace uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`strategy::Strategy`] with `prop_map`, ranges, tuples, and
//!   string-regex strategies (`".*"`, `"[a-z0-9]{0,6}"`, …),
//! - [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::hash_set`],
//! - [`test_runner::ProptestConfig`] (`with_cases`, `cases`).
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! cases are generated from a seed derived from the test name (so runs are
//! deterministic and reproducible), there is **no shrinking** (the failing
//! input is printed verbatim), and `proptest-regressions` files are not
//! replayed (regressions worth pinning should be written as explicit unit
//! tests — see `tests/props.rs` in the workspace for examples).
//!
//! # Reproducing a failure
//!
//! Inputs for a case are a pure function of `(test name, case number)`, so
//! a failure report like `failed at case 17` replays exactly with
//!
//! ```text
//! PROPTEST_CASE=17 cargo test <test_name>
//! ```
//!
//! Two environment variables control scheduling:
//!
//! - `PROPTEST_CASES=<n>` — run `n` cases per property instead of the
//!   configured count (CI uses this for cheap wide sweeps or stress runs).
//! - `PROPTEST_CASE=<n>` — run *only* case `n` of each property. If the
//!   failure came from a widened `PROPTEST_CASES` run, set both (the
//!   filter never runs cases past the resolved count).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property body. Panics (no shrink phase exists).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Discard the current case when `cond` is false. Without a rejection
/// budget in the stub, the case is simply skipped.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest! { ... }` block: runs each contained `#[test] fn` over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let only = $crate::test_runner::resolve_case_filter();
            for case in 0..cases {
                if only.is_some_and(|c| c != case) {
                    continue;
                }
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __guard = $crate::test_runner::FailureReport::new(
                    stringify!($name),
                    case,
                    __inputs,
                );
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            (a, b) in (0u32..10, -5i32..5),
            x in 0.0f64..1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn mapped_strategies_apply_function(v in (1u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 200);
        }

        #[test]
        fn collections_respect_size(
            xs in crate::collection::vec(0u8..255, 3..7),
            set in crate::collection::btree_set(0u32..1000, 0..20),
        ) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(set.len() < 20);
        }

        #[test]
        fn string_regex_classes(s in "[a-z0-9]{0,6}") {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn case_scheduling_knobs_parse() {
        use crate::test_runner::{parse_case_filter, parse_cases};
        // PROPTEST_CASES: parseable override wins, junk falls back.
        assert_eq!(parse_cases(None, 256), 256);
        assert_eq!(parse_cases(Some("64"), 256), 64);
        assert_eq!(parse_cases(Some(""), 256), 256);
        assert_eq!(parse_cases(Some("lots"), 256), 256);
        // PROPTEST_CASE: only a clean number selects a single case.
        assert_eq!(parse_case_filter(None), None);
        assert_eq!(parse_case_filter(Some("17")), Some(17));
        assert_eq!(parse_case_filter(Some("")), None);
        assert_eq!(parse_case_filter(Some("-3")), None);
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..10);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        let c = strat.generate(&mut TestRng::for_case("det", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
