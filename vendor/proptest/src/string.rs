//! A regex-lite string generator covering the patterns the workspace's
//! property tests use: `.`, character classes with ranges (`[a-zA-Z0-9 _]`),
//! and the quantifiers `{m,n}`, `{m}`, `*`, `+`, `?`. Unsupported syntax
//! panics loudly rather than generating surprising strings.

use crate::test_runner::TestRng;

const STAR_MAX: u32 = 32;

#[derive(Debug, Clone)]
enum CharSet {
    /// `.` — any printable ASCII character.
    Any,
    /// An explicit alternative set, expanded from a class.
    OneOf(Vec<char>),
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Any => (0x20 + rng.below(0x7F - 0x20) as u8) as char,
            CharSet::OneOf(chars) => chars[rng.below(chars.len() as u64) as usize],
        }
    }
}

#[derive(Debug, Clone)]
struct Element {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for el in &elements {
        let n = el.min + rng.below((el.max - el.min + 1) as u64) as u32;
        for _ in 0..n {
            out.push(el.set.sample(rng));
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let inner = &chars[i + 1..i + close];
                i += close + 1;
                CharSet::OneOf(expand_class(inner, pattern))
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                CharSet::OneOf(vec![c])
            }
            c if !"{}*+?|()".contains(c) => {
                i += 1;
                CharSet::OneOf(vec![c])
            }
            c => panic!("unsupported regex syntax {c:?} in pattern {pattern:?}"),
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        elements.push(Element { set, min, max });
    }
    elements
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (u32, u32) {
    match chars.get(*i) {
        Some('*') => {
            *i += 1;
            (0, STAR_MAX)
        }
        Some('+') => {
            *i += 1;
            (1, STAR_MAX)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            let parse_u32 = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse_u32(lo), parse_u32(hi)),
                None => {
                    let n = parse_u32(&body);
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    assert!(
        inner.first() != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut chars = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        let c = inner[i];
        let c = if c == '\\' {
            i += 1;
            *inner
                .get(i)
                .unwrap_or_else(|| panic!("dangling escape in class of {pattern:?}"))
        } else {
            c
        };
        if inner.get(i + 1) == Some(&'-') && i + 2 < inner.len() {
            let hi = inner[i + 2];
            assert!(c <= hi, "inverted range in class of {pattern:?}");
            for v in c as u32..=hi as u32 {
                chars.push(char::from_u32(v).unwrap());
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty class in pattern {pattern:?}");
    chars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z0-9 &<>\"']{1,20}", &mut r);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " &<>\"'".contains(c)));
        }
    }

    #[test]
    fn dot_star_is_printable_ascii() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_from_pattern(".*", &mut r);
            assert!(s.chars().count() <= STAR_MAX as usize);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_counts_and_literals() {
        let mut r = rng();
        let s = generate_from_pattern("ab{3}c", &mut r);
        assert_eq!(s, "abbbc");
        let s = generate_from_pattern("x?", &mut r);
        assert!(s.is_empty() || s == "x");
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        generate_from_pattern("a|b", &mut rng());
    }
}
