//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, string regexes, and `prop_map`.

use crate::test_runner::TestRng;

/// A generator of values for property tests. Unlike upstream proptest
/// there is no value tree: strategies generate directly and nothing
/// shrinks.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `pred` holds, regenerating otherwise
    /// (bounded retries; the last candidate is returned if none passes).
    fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// Strategies are usable through references, as upstream allows.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// String literals are regex strategies, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
