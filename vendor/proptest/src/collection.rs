//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// A `Vec` of `len ∈ size` elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with up to `size.end - 1` elements (at least `size.start`
/// distinct draws are attempted; duplicates may make the set smaller, as
/// upstream's rejection sampling also cannot exceed the element domain).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(!size.is_empty(), "empty size range");
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 4 * target + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A `HashSet` analogue of [`btree_set`].
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    assert!(!size.is_empty(), "empty size range");
    HashSetStrategy { element, size }
}

/// The strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut set = HashSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 4 * target + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_nesting() {
        let strat = vec(vec(0u32..8, 0..6), 1..25);
        for case in 0..50 {
            let rows = strat.generate(&mut TestRng::for_case("nest", case));
            assert!((1..25).contains(&rows.len()));
            assert!(rows.iter().all(|r| r.len() < 6));
            assert!(rows.iter().flatten().all(|&v| v < 8));
        }
    }

    #[test]
    fn sets_respect_bounds_and_uniqueness() {
        let strat = btree_set(0u32..50, 0..10);
        for case in 0..50 {
            let set = strat.generate(&mut TestRng::for_case("set", case));
            assert!(set.len() < 10);
            assert!(set.iter().all(|&v| v < 50));
        }
        let hs = hash_set(0u32..4, 0..4).generate(&mut TestRng::for_case("hs", 0));
        assert!(hs.len() < 4);
    }
}
