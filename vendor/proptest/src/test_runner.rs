//! Case scheduling, deterministic RNG, and failure reporting.

/// Per-block configuration. Only `cases` is consulted; the other knobs of
/// upstream proptest have no stub equivalent.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The configured case count, overridable with `PROPTEST_CASES`.
pub fn resolve_cases(configured: u32) -> u32 {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref(), configured)
}

/// Pure core of [`resolve_cases`]: a parseable override wins, anything
/// else (unset, empty, garbage) falls back to the configured count.
pub fn parse_cases(var: Option<&str>, configured: u32) -> u32 {
    var.and_then(|v| v.parse().ok()).unwrap_or(configured)
}

/// Single-case replay filter, set with `PROPTEST_CASE=<n>`. When present,
/// every `proptest!` test runs *only* case `n` — the generated inputs for
/// a given (test name, case) pair are a pure function of those two values,
/// so this reproduces a reported failure exactly without rerunning the
/// whole schedule.
pub fn resolve_case_filter() -> Option<u32> {
    parse_case_filter(std::env::var("PROPTEST_CASE").ok().as_deref())
}

/// Pure core of [`resolve_case_filter`]: `None` (or unparseable text)
/// means "no filter, run every case".
pub fn parse_case_filter(var: Option<&str>) -> Option<u32> {
    var.and_then(|v| v.parse().ok())
}

/// Deterministic per-case RNG (xoshiro256++ seeded with SplitMix64 over a
/// hash of the test name and the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The RNG for case number `case` of test `name`. Same inputs, same
    /// stream — failures reproduce across runs without a regressions file.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, bound); 0 for a zero bound.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Prints the generated inputs if the property body panics, so failures
/// are reproducible by hand even without shrinking.
pub struct FailureReport {
    name: &'static str,
    case: u32,
    inputs: String,
    armed: bool,
}

impl FailureReport {
    /// Arm a report for one case.
    pub fn new(name: &'static str, case: u32, inputs: String) -> FailureReport {
        FailureReport {
            name,
            case,
            inputs,
            armed: true,
        }
    }

    /// The case passed; do not report.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FailureReport {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest stub: {name} failed at case {case} with inputs:\n{inputs}\
                 replay just this case with:\n  \
                 PROPTEST_CASE={case} cargo test {name}\n\
                 (inputs are a pure function of the test name and case \
                 number; pin inputs worth keeping as an explicit unit test)",
                name = self.name,
                case = self.case,
                inputs = self.inputs,
            );
        }
    }
}
