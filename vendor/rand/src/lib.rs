//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements exactly the subset of the rand 0.9 API the workspace uses:
//! [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng`, but deterministic for a given seed, which
//! is all the synthetic-corpus generator and the benches rely on.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    /// A small, fast, seedable PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// Raw 64-bit output, the primitive everything else builds on.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` is uniform in [0, 1)).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    /// A uniform sample from `range`. Panics on an empty range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = r.random_range(3..9u32);
            assert!((3..9).contains(&v));
            let w = r.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
