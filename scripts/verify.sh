#!/usr/bin/env bash
# Tier-1 verification gate: build, tests, formatting, lints.
#
# The workspace is fully offline (all external deps are vendored stubs in
# vendor/ — see vendor/README.md), so every step below runs without
# network access; --offline makes cargo fail fast instead of probing an
# unreachable registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo fmt --all --check
run cargo clippy --all-targets --offline -- -D warnings

echo "verify: all gates green"
