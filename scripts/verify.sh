#!/usr/bin/env bash
# Tier-1 verification gate: build, tests, formatting, lints.
#
# The workspace is fully offline (all external deps are vendored stubs in
# vendor/ — see vendor/README.md), so every step below runs without
# network access; --offline makes cargo fail fast instead of probing an
# unreachable registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo fmt --all --check
run cargo clippy --all-targets --offline -- -D warnings

# Robustness gates. These suites are part of the workspace test run above;
# invoking them by name makes a chaos/corruption/determinism regression
# fail loudly on its own line instead of disappearing into the
# full-workspace summary.
run cargo test -q --offline -p wikistale-cli --test chaos
run cargo test -q --offline -p wikistale-wikicube binio
run cargo test -q --offline -p wikistale-cli --test differential

# Columnar data plane: the row-vs-columnar differential tests live in the
# differential suite above; this names them so a day-list or rebuild
# regression fails on its own line.
run cargo test -q --offline -p wikistale-cli --test differential -- \
    day_list columnar weekly_transactions binio_v2

# Serving gates: the query server's unit suite (admission, cache,
# deadline, byte-determinism) plus the end-to-end suite that drives the
# real binary over loopback TCP.
run cargo test -q --offline -p wikistale-serve
run cargo test -q --offline -p wikistale-cli --test serve_e2e

# The lossy-parsing, persistence, and serving code paths promise "typed
# error or quarantine entry, never a panic" — a stray unwrap()/expect()
# in them breaks that contract. Scan non-test, non-comment lines
# (everything before the #[cfg(test)] module) of the fault-tolerant
# surfaces. testutil.rs is cfg(test)-gated at the module level in
# lib.rs, so it is exempt.
echo "==> forbid unwrap()/expect() in fault-tolerant code paths"
violations=$(
    for f in crates/wikitext/src/*.rs crates/wikicube/src/binio.rs \
             crates/wikicube/src/daylist.rs crates/wikicube/src/cube.rs \
             crates/serve/src/*.rs; do
        [ "$(basename "$f")" = "testutil.rs" ] && continue
        awk '/#\[cfg\(test\)\]/ { exit }
             !/^[[:space:]]*\/\// && (/\.unwrap\(\)/ || /\.expect\(/) {
                 print FILENAME ":" FNR ": " $0
             }' "$f"
    done
)
if [ -n "$violations" ]; then
    echo "$violations"
    echo "verify: unwrap()/expect() are forbidden in lossy-parsing and persistence code"
    exit 1
fi

echo "verify: all gates green"
