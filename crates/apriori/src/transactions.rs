//! Transaction storage in compressed-sparse-row layout.

/// An immutable collection of transactions.
///
/// Each transaction is a *set* of `u32` items, stored as a sorted,
/// deduplicated slice. The whole collection lives in two flat vectors
/// (CSR), so iterating a million weekly infobox transactions touches
/// contiguous memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransactionSet {
    offsets: Vec<u32>,
    items: Vec<u32>,
    max_item: Option<u32>,
}

impl TransactionSet {
    /// Start building a transaction set.
    pub fn builder() -> TransactionSetBuilder {
        TransactionSetBuilder::default()
    }

    /// Number of transactions (including empty ones).
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th transaction as a sorted item slice.
    pub fn transaction(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.items[lo..hi]
    }

    /// Iterate over all transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len()).map(move |i| self.transaction(i))
    }

    /// Largest item id present, if any item exists.
    pub fn max_item(&self) -> Option<u32> {
        self.max_item
    }

    /// Total number of item occurrences across all transactions.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Whether transaction `i` contains every item of the sorted slice
    /// `itemset` (merge-based subset test).
    pub fn contains_all(&self, i: usize, itemset: &[u32]) -> bool {
        is_subset(itemset, self.transaction(i))
    }
}

/// Whether sorted `needle` is a subset of sorted `haystack`.
pub(crate) fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut hay = haystack;
    for &n in needle {
        let pos = hay.partition_point(|&h| h < n);
        if pos == hay.len() || hay[pos] != n {
            return false;
        }
        hay = &hay[pos + 1..];
    }
    true
}

/// Incremental builder for [`TransactionSet`].
#[derive(Debug, Default)]
pub struct TransactionSetBuilder {
    offsets: Vec<u32>,
    items: Vec<u32>,
    max_item: Option<u32>,
}

impl TransactionSetBuilder {
    /// Append one transaction. Items are sorted and deduplicated; an empty
    /// transaction is recorded (it still counts toward relative support).
    pub fn push(&mut self, items: impl IntoIterator<Item = u32>) -> &mut Self {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let start = self.items.len();
        self.items.extend(items);
        self.items[start..].sort_unstable();
        let new_len = dedup_tail(&mut self.items, start);
        self.items.truncate(new_len);
        if let Some(&last) = self.items.last() {
            if self.items.len() > start {
                self.max_item = Some(self.max_item.map_or(last, |m| m.max(last)));
            }
        }
        self.offsets.push(self.items.len() as u32);
        self
    }

    /// Number of transactions pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalize into an immutable [`TransactionSet`].
    pub fn finish(mut self) -> TransactionSet {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        TransactionSet {
            offsets: self.offsets,
            items: self.items,
            max_item: self.max_item,
        }
    }
}

/// Deduplicate the sorted tail `v[start..]` in place; returns the new
/// logical length of `v`.
fn dedup_tail(v: &mut [u32], start: usize) -> usize {
    let mut write = start;
    for read in start..v.len() {
        if write == start || v[write - 1] != v[read] {
            v[write] = v[read];
            write += 1;
        }
    }
    write
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_sorted_deduped_transactions() {
        let mut b = TransactionSet::builder();
        b.push([3, 1, 2, 1, 3]);
        b.push([]);
        b.push([7]);
        let ts = b.finish();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.transaction(0), &[1, 2, 3]);
        assert_eq!(ts.transaction(1), &[] as &[u32]);
        assert_eq!(ts.transaction(2), &[7]);
        assert_eq!(ts.max_item(), Some(7));
        assert_eq!(ts.total_items(), 4);
    }

    #[test]
    fn empty_set() {
        let ts = TransactionSet::builder().finish();
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.max_item(), None);
    }

    #[test]
    fn subset_tests() {
        let mut b = TransactionSet::builder();
        b.push([1, 3, 5, 7]);
        let ts = b.finish();
        assert!(ts.contains_all(0, &[1, 7]));
        assert!(ts.contains_all(0, &[]));
        assert!(ts.contains_all(0, &[3, 5, 7]));
        assert!(!ts.contains_all(0, &[2]));
        assert!(!ts.contains_all(0, &[1, 2]));
        assert!(!ts.contains_all(0, &[7, 8]));
    }

    #[test]
    fn iter_matches_indexing() {
        let mut b = TransactionSet::builder();
        b.push([1, 2]);
        b.push([3]);
        let ts = b.finish();
        let collected: Vec<&[u32]> = ts.iter().collect();
        assert_eq!(collected, vec![ts.transaction(0), ts.transaction(1)]);
    }

    proptest! {
        #[test]
        fn prop_transactions_sorted_unique(
            txs in proptest::collection::vec(
                proptest::collection::vec(0u32..100, 0..20), 0..20)
        ) {
            let mut b = TransactionSet::builder();
            for t in &txs {
                b.push(t.iter().copied());
            }
            let ts = b.finish();
            prop_assert_eq!(ts.len(), txs.len());
            for (i, t) in txs.iter().enumerate() {
                let mut expected: Vec<u32> = t.clone();
                expected.sort_unstable();
                expected.dedup();
                prop_assert_eq!(ts.transaction(i), expected.as_slice());
            }
        }

        #[test]
        fn prop_is_subset_agrees_with_sets(
            a in proptest::collection::btree_set(0u32..50, 0..10),
            b in proptest::collection::btree_set(0u32..50, 0..20),
        ) {
            let av: Vec<u32> = a.iter().copied().collect();
            let bv: Vec<u32> = b.iter().copied().collect();
            prop_assert_eq!(is_subset(&av, &bv), a.is_subset(&b));
        }
    }
}
