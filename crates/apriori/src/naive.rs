//! Exponential reference implementations used to verify the optimized
//! miner.
//!
//! These enumerate every candidate itemset over the item universe, so they
//! are only usable on tiny inputs — which is exactly what the property
//! tests feed them.

use crate::miner::{FrequentItemset, Support};
use crate::rules::AssociationRule;
use crate::transactions::{is_subset, TransactionSet};

/// All frequent itemsets of size 1..=`max_len`, by brute force.
pub fn frequent_itemsets(
    ts: &TransactionSet,
    min_support: Support,
    max_len: usize,
) -> Vec<FrequentItemset> {
    let Some(max_item) = ts.max_item() else {
        return Vec::new();
    };
    let min_count = min_support.to_count(ts.len());
    let universe: Vec<u32> = (0..=max_item).collect();
    let mut result = Vec::new();
    let mut stack: Vec<(Vec<u32>, usize)> = vec![(Vec::new(), 0)];
    while let Some((prefix, start)) = stack.pop() {
        for (i, &item) in universe.iter().enumerate().skip(start) {
            let mut candidate = prefix.clone();
            candidate.push(item);
            if candidate.len() > max_len {
                break;
            }
            let count = ts.iter().filter(|t| is_subset(&candidate, t)).count() as u64;
            if count >= min_count {
                result.push(FrequentItemset {
                    items: candidate.clone(),
                    count,
                });
            }
            // Even if infrequent we can stop this branch: support is
            // antitone in the itemset (Apriori property).
            if count >= min_count && candidate.len() < max_len {
                stack.push((candidate, i + 1));
            }
        }
    }
    result.sort_by(|a, b| a.items.cmp(&b.items));
    result
}

/// All association rules with confidence ≥ `min_confidence` whose union
/// itemset is frequent, by brute force.
pub fn rules(
    ts: &TransactionSet,
    min_support: Support,
    min_confidence: f64,
    max_len: usize,
) -> Vec<AssociationRule> {
    let itemsets = frequent_itemsets(ts, min_support, max_len);
    crate::rules::association_rules(ts, &itemsets, min_confidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AprioriParams;
    use proptest::prelude::*;

    fn ts_from(rows: &[Vec<u32>]) -> TransactionSet {
        let mut b = TransactionSet::builder();
        for r in rows {
            b.push(r.iter().copied());
        }
        b.finish()
    }

    #[test]
    fn agrees_on_textbook_example() {
        let ts = ts_from(&[vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let fast = crate::frequent_itemsets(&ts, Support::Count(2), 3);
        let slow = frequent_itemsets(&ts, Support::Count(2), 3);
        assert_eq!(fast, slow);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_miner_equals_naive(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..8, 0..6), 1..25),
            min_count in 1u64..4,
            max_len in 1usize..4,
        ) {
            let ts = ts_from(&rows);
            let fast = crate::frequent_itemsets(&ts, Support::Count(min_count), max_len);
            let slow = frequent_itemsets(&ts, Support::Count(min_count), max_len);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_rules_equal_naive(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 0..5), 1..20),
            conf in 0.0f64..1.0,
        ) {
            let ts = ts_from(&rows);
            let params = AprioriParams {
                min_support: Support::Count(1),
                min_confidence: conf,
                max_itemset_size: 3,
            };
            let fast = crate::mine(&ts, &params);
            let slow = rules(&ts, Support::Count(1), conf, 3);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_support_antitone(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..8, 0..6), 1..25),
        ) {
            // Every subset of a frequent itemset appears with ≥ its count.
            let ts = ts_from(&rows);
            let freq = crate::frequent_itemsets(&ts, Support::Count(1), 3);
            let lookup: std::collections::HashMap<&[u32], u64> =
                freq.iter().map(|f| (f.items.as_slice(), f.count)).collect();
            for f in &freq {
                if f.items.len() >= 2 {
                    for drop in 0..f.items.len() {
                        let mut sub = f.items.clone();
                        sub.remove(drop);
                        let sub_count = lookup.get(sub.as_slice()).copied().unwrap_or(0);
                        prop_assert!(sub_count >= f.count);
                    }
                }
            }
        }
    }
}
