//! # wikistale-apriori
//!
//! Frequent-itemset mining with the Apriori algorithm (Agrawal & Srikant,
//! VLDB 1994) and association-rule generation, as used by the
//! association-rule staleness predictor of Barth et al. (EDBT 2023, §3.3).
//!
//! The crate is deliberately generic: items are dense `u32` ids and
//! transactions are sets of items, so it is reusable outside the Wikipedia
//! setting. The paper's predictor mines *unary* rules (one item on each
//! side), but the miner here is complete up to a configurable itemset size
//! and the rule generator enumerates every antecedent/consequent split.
//!
//! A deliberately naive exponential reference implementation lives in
//! [`naive`]; property tests assert the optimized miner agrees with it on
//! random inputs.
//!
//! ## Example
//!
//! ```
//! use wikistale_apriori::{AprioriParams, Support, TransactionSet, mine};
//!
//! let mut b = TransactionSet::builder();
//! // `matches` (0) and `goals` (1) change together; `stadium` (2) rarely.
//! for _ in 0..8 { b.push([0, 1]); }
//! b.push([0]);
//! b.push([2]);
//! let ts = b.finish();
//!
//! let rules = mine(&ts, &AprioriParams {
//!     min_support: Support::Fraction(0.2),
//!     min_confidence: 0.6,
//!     max_itemset_size: 2,
//! });
//! // 0 ⇒ 1 holds with confidence 8/9; 1 ⇒ 0 with confidence 1.
//! assert!(rules.iter().any(|r| r.antecedent == [0] && r.consequent == [1]));
//! assert!(rules.iter().any(|r| r.antecedent == [1] && r.consequent == [0]));
//! ```

pub mod miner;
pub mod naive;
pub mod rules;
pub mod transactions;

pub use miner::{frequent_itemsets, FrequentItemset, Support};
pub use rules::{association_rules, mine, AssociationRule};
pub use transactions::{TransactionSet, TransactionSetBuilder};

/// Mining parameters.
///
/// The paper's configuration (§5.2) is `min_support = Fraction(0.0025)`,
/// `min_confidence = 0.6`, `max_itemset_size = 2` (unary rules).
#[derive(Debug, Clone, PartialEq)]
pub struct AprioriParams {
    /// Minimum support for an itemset to be considered frequent.
    pub min_support: Support,
    /// Minimum confidence for a rule to be emitted.
    pub min_confidence: f64,
    /// Largest itemset size explored (≥ 2 for any rule to exist).
    pub max_itemset_size: usize,
}

impl Default for AprioriParams {
    /// The paper's grid-search optimum.
    fn default() -> AprioriParams {
        AprioriParams {
            min_support: Support::Fraction(0.0025),
            min_confidence: 0.6,
            max_itemset_size: 2,
        }
    }
}
