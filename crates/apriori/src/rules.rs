//! Association-rule generation from frequent itemsets.

use crate::miner::{frequent_itemsets, FrequentItemset};
use crate::transactions::TransactionSet;
use crate::AprioriParams;
use std::collections::HashMap;

/// An association rule `antecedent ⇒ consequent` with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Sorted left-hand-side items.
    pub antecedent: Vec<u32>,
    /// Sorted right-hand-side items (disjoint from the antecedent).
    pub consequent: Vec<u32>,
    /// Transactions containing antecedent ∪ consequent.
    pub union_count: u64,
    /// Transactions containing the antecedent.
    pub antecedent_count: u64,
    /// Relative support of antecedent ∪ consequent.
    pub support: f64,
    /// `union_count / antecedent_count`.
    pub confidence: f64,
    /// Confidence divided by the consequent's base rate; > 1 means the
    /// antecedent genuinely raises the consequent's probability.
    pub lift: f64,
}

impl AssociationRule {
    /// Whether both sides contain exactly one item (the shape the paper's
    /// predictor uses).
    pub fn is_unary(&self) -> bool {
        self.antecedent.len() == 1 && self.consequent.len() == 1
    }
}

/// Generate all rules with confidence ≥ `min_confidence` from frequent
/// itemsets.
///
/// For every itemset of size ≥ 2 and every non-empty proper subset `A`, the
/// rule `A ⇒ itemset ∖ A` is emitted if confident. Counts come from the
/// frequent-itemset list itself: Apriori guarantees every subset of a
/// frequent itemset is present.
pub fn association_rules(
    ts: &TransactionSet,
    itemsets: &[FrequentItemset],
    min_confidence: f64,
) -> Vec<AssociationRule> {
    let counts: HashMap<&[u32], u64> = itemsets
        .iter()
        .map(|f| (f.items.as_slice(), f.count))
        .collect();
    let n = ts.len() as f64;
    let mut rules = Vec::new();
    for itemset in itemsets.iter().filter(|f| f.items.len() >= 2) {
        let k = itemset.items.len();
        // Enumerate non-empty proper subsets via bitmask (itemsets are
        // small: the paper uses k = 2).
        for mask in 1u32..((1 << k) - 1) {
            let mut antecedent = Vec::with_capacity(k);
            let mut consequent = Vec::with_capacity(k);
            for (bit, &item) in itemset.items.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let Some(&antecedent_count) = counts.get(antecedent.as_slice()) else {
                continue; // cannot happen for genuinely frequent inputs
            };
            let confidence = itemset.count as f64 / antecedent_count as f64;
            if confidence + f64::EPSILON < min_confidence {
                continue;
            }
            let consequent_count = counts.get(consequent.as_slice()).copied().unwrap_or(0);
            let lift = if consequent_count == 0 || n == 0.0 {
                f64::NAN
            } else {
                confidence / (consequent_count as f64 / n)
            };
            rules.push(AssociationRule {
                antecedent,
                consequent,
                union_count: itemset.count,
                antecedent_count,
                support: if n == 0.0 {
                    0.0
                } else {
                    itemset.count as f64 / n
                },
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    rules
}

/// Mine frequent itemsets and generate rules in one call.
pub fn mine(ts: &TransactionSet, params: &AprioriParams) -> Vec<AssociationRule> {
    let itemsets = frequent_itemsets(ts, params.min_support, params.max_itemset_size);
    association_rules(ts, &itemsets, params.min_confidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Support;

    fn ts(rows: &[&[u32]]) -> TransactionSet {
        let mut b = TransactionSet::builder();
        for r in rows {
            b.push(r.iter().copied());
        }
        b.finish()
    }

    #[test]
    fn asymmetric_confidence() {
        // ko ⇒ wins should hold; wins ⇒ ko should not (paper's boxer
        // example: every knockout is a win, not vice versa).
        let wins = 0u32;
        let ko = 1u32;
        let data = ts(&[
            &[wins, ko],
            &[wins, ko],
            &[wins, ko],
            &[wins],
            &[wins],
            &[wins],
        ]);
        let rules = mine(
            &data,
            &AprioriParams {
                min_support: Support::Count(2),
                min_confidence: 0.8,
                max_itemset_size: 2,
            },
        );
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.antecedent, vec![ko]);
        assert_eq!(r.consequent, vec![wins]);
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.is_unary());
        assert!((r.support - 0.5).abs() < 1e-12);
        assert!((r.lift - 1.0).abs() < 1e-12); // wins is in every transaction
    }

    #[test]
    fn both_directions_when_symmetric() {
        let data = ts(&[&[0, 1], &[0, 1], &[0, 1], &[2]]);
        let rules = mine(
            &data,
            &AprioriParams {
                min_support: Support::Count(2),
                min_confidence: 0.9,
                max_itemset_size: 2,
            },
        );
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| (r.confidence - 1.0).abs() < 1e-12));
        // Lift: P(1|0)=1, P(1)=0.75 → lift 4/3.
        assert!(rules.iter().all(|r| (r.lift - 4.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn multiway_rules_from_triple() {
        let rows: Vec<&[u32]> = vec![&[0, 1, 2]; 4];
        let data = ts(&rows);
        let itemsets = frequent_itemsets(&data, Support::Count(2), 3);
        let rules = association_rules(&data, &itemsets, 0.5);
        // 2^3 − 2 = 6 splits of {0,1,2}, plus 2 from each of the three
        // pairs → 12 rules, all with confidence 1.
        assert_eq!(rules.len(), 12);
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![0, 1] && r.consequent == vec![2]));
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![0] && r.consequent == vec![1, 2]));
    }

    #[test]
    fn confidence_threshold_is_inclusive() {
        // conf(0 ⇒ 1) = 2/3 exactly.
        let data = ts(&[&[0, 1], &[0, 1], &[0], &[1]]);
        let rules = mine(
            &data,
            &AprioriParams {
                min_support: Support::Count(1),
                min_confidence: 2.0 / 3.0,
                max_itemset_size: 2,
            },
        );
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![0] && r.consequent == vec![1]));
    }

    #[test]
    fn no_rules_from_empty_or_singleton_data() {
        let empty = TransactionSet::builder().finish();
        assert!(mine(&empty, &AprioriParams::default()).is_empty());
        let singles = ts(&[&[0], &[1], &[2]]);
        assert!(mine(
            &singles,
            &AprioriParams {
                min_support: Support::Count(1),
                min_confidence: 0.0,
                max_itemset_size: 2,
            }
        )
        .is_empty());
    }

    #[test]
    fn default_params_match_paper() {
        let p = AprioriParams::default();
        assert_eq!(p.min_support, Support::Fraction(0.0025));
        assert!((p.min_confidence - 0.6).abs() < 1e-12);
        assert_eq!(p.max_itemset_size, 2);
    }
}
