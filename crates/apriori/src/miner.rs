//! Level-wise Apriori frequent-itemset mining.

use crate::transactions::TransactionSet;
use std::collections::HashMap;

/// A minimum-support threshold, either relative or absolute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Support {
    /// Fraction of the number of transactions, in `[0, 1]`.
    Fraction(f64),
    /// Absolute transaction count.
    Count(u64),
}

impl Support {
    /// Resolve to an absolute count given the number of transactions.
    ///
    /// A `Fraction` resolves to `ceil(f · n)` clamped to at least 1, so
    /// `Fraction(0.0)` still requires one supporting transaction — an
    /// itemset nobody bought is never frequent.
    pub fn to_count(self, num_transactions: usize) -> u64 {
        match self {
            Support::Count(c) => c.max(1),
            Support::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                ((f * num_transactions as f64).ceil() as u64).max(1)
            }
        }
    }
}

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<u32>,
    /// Number of transactions containing every item.
    pub count: u64,
}

/// Mine all frequent itemsets of size 1 to `max_len`.
///
/// The classic level-wise algorithm: frequent 1-itemsets from a counting
/// pass, then repeatedly (a) join `L_{k-1}` with itself on a shared
/// (k−2)-prefix, (b) prune candidates with an infrequent (k−1)-subset, and
/// (c) count candidate support in one pass over the transactions.
/// Results are sorted lexicographically by item list.
pub fn frequent_itemsets(
    ts: &TransactionSet,
    min_support: Support,
    max_len: usize,
) -> Vec<FrequentItemset> {
    let obs = wikistale_obs::MetricsRegistry::global();
    let _span = obs.span("apriori_mine");
    let min_count = min_support.to_count(ts.len());
    let mut result: Vec<FrequentItemset> = Vec::new();
    if max_len == 0 || ts.is_empty() {
        return result;
    }

    // Level 1: direct counting, sharded over transaction chunks. Chunk
    // counts are merged by element-wise u64 addition — exactly
    // associative and commutative, so the totals are independent of
    // chunking and scheduling.
    let universe = ts.max_item().map_or(0, |m| m as usize + 1);
    let chunk_counts =
        wikistale_exec::par_ranges("apriori_items", ts.len(), COUNT_CHUNK, |range| {
            let mut counts = vec![0u64; universe];
            for i in range {
                for &item in ts.transaction(i) {
                    counts[item as usize] += 1;
                }
            }
            counts
        });
    let mut item_counts = vec![0u64; universe];
    for counts in chunk_counts {
        for (total, partial) in item_counts.iter_mut().zip(counts) {
            *total += partial;
        }
    }
    let mut level: Vec<FrequentItemset> = item_counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(i, &c)| FrequentItemset {
            items: vec![i as u32],
            count: c,
        })
        .collect();

    let mut k = 1;
    while !level.is_empty() {
        result.extend(level.iter().cloned());
        k += 1;
        if k > max_len {
            break;
        }
        let candidates = generate_candidates(&level);
        obs.counter("apriori/candidates")
            .add(candidates.len() as u64);
        if candidates.is_empty() {
            break;
        }
        level = count_candidates(ts, candidates, k, min_count);
    }
    result.sort_by(|a, b| a.items.cmp(&b.items));
    obs.counter("apriori/frequent_itemsets")
        .add(result.len() as u64);
    result
}

/// Join step + prune step: candidates of size k from frequent (k−1)-sets.
fn generate_candidates(level: &[FrequentItemset]) -> Vec<Vec<u32>> {
    // `level` items are sorted lists; sort the level lexicographically so
    // sets sharing a (k−2)-prefix are adjacent.
    let mut prev: Vec<&[u32]> = level.iter().map(|f| f.items.as_slice()).collect();
    prev.sort_unstable();
    let prev_set: std::collections::HashSet<&[u32]> = prev.iter().copied().collect();
    let k_minus_1 = prev.first().map_or(0, |s| s.len());

    let mut candidates = Vec::new();
    for i in 0..prev.len() {
        for j in (i + 1)..prev.len() {
            let (a, b) = (prev[i], prev[j]);
            if a[..k_minus_1 - 1] != b[..k_minus_1 - 1] {
                break; // sorted ⇒ no later j shares the prefix either
            }
            let mut candidate = a.to_vec();
            candidate.push(b[k_minus_1 - 1]);
            // Prune: every (k−1)-subset must be frequent. Subsets obtained
            // by dropping the last two positions equal `a` and the join
            // partner; check the rest.
            let frequent = (0..candidate.len() - 2).all(|drop| {
                let mut sub = candidate.clone();
                sub.remove(drop);
                prev_set.contains(sub.as_slice())
            });
            if frequent {
                candidates.push(candidate);
            }
        }
    }
    candidates
}

/// Transactions per counting chunk: infobox-week transactions are tiny,
/// so chunks stay coarse enough to amortize the per-chunk count vector.
const COUNT_CHUNK: usize = 2_048;

/// Count candidate support sharded over transaction chunks; keep
/// candidates with total support ≥ min_count.
///
/// Each chunk accumulates into a dense `Vec<u64>` keyed by candidate
/// index (a mergeable count map); merging is element-wise addition, so
/// the totals cannot depend on chunk scheduling, and the per-transaction
/// counting strategy (subset enumeration vs. candidate scan) depends only
/// on the transaction and the candidate count — identical in every chunk.
fn count_candidates(
    ts: &TransactionSet,
    candidates: Vec<Vec<u32>>,
    k: usize,
    min_count: u64,
) -> Vec<FrequentItemset> {
    let candidate_pos: HashMap<&[u32], usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_slice(), i))
        .collect();
    let chunk_counts =
        wikistale_exec::par_ranges("apriori_support", ts.len(), COUNT_CHUNK, |range| {
            let mut counts = vec![0u64; candidates.len()];
            let mut subset_buf = Vec::with_capacity(k);
            for i in range {
                let t = ts.transaction(i);
                if t.len() < k {
                    continue;
                }
                // For small transactions enumerate k-subsets and probe
                // the map; the binomial is tiny for infobox-week
                // transactions. For long transactions fall back to
                // testing each candidate.
                if binomial(t.len(), k) <= 4 * candidates.len() as u64 {
                    enumerate_subsets(t, k, &mut subset_buf, &mut |subset| {
                        if let Some(&pos) = candidate_pos.get(subset) {
                            counts[pos] += 1;
                        }
                    });
                } else {
                    for (pos, cand) in candidates.iter().enumerate() {
                        if crate::transactions::is_subset(cand, t) {
                            counts[pos] += 1;
                        }
                    }
                }
            }
            counts
        });
    let mut totals = vec![0u64; candidates.len()];
    for counts in chunk_counts {
        for (total, partial) in totals.iter_mut().zip(counts) {
            *total += partial;
        }
    }
    drop(candidate_pos);
    let mut level: Vec<FrequentItemset> = candidates
        .into_iter()
        .zip(totals)
        .filter(|&(_, count)| count >= min_count)
        .map(|(items, count)| FrequentItemset { items, count })
        .collect();
    level.sort_by(|a, b| a.items.cmp(&b.items));
    level
}

/// n choose k, saturating.
fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc
            .saturating_mul((n - i) as u64)
            .checked_div((i + 1) as u64)
            .unwrap_or(u64::MAX);
    }
    acc
}

/// Call `f` with every sorted k-subset of sorted `items`.
fn enumerate_subsets(items: &[u32], k: usize, buf: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    fn rec(items: &[u32], k: usize, start: usize, buf: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if buf.len() == k {
            f(buf);
            return;
        }
        let needed = k - buf.len();
        for i in start..=items.len().saturating_sub(needed) {
            buf.push(items[i]);
            rec(items, k, i + 1, buf, f);
            buf.pop();
        }
    }
    buf.clear();
    rec(items, k, 0, buf, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionSet;

    fn ts(rows: &[&[u32]]) -> TransactionSet {
        let mut b = TransactionSet::builder();
        for r in rows {
            b.push(r.iter().copied());
        }
        b.finish()
    }

    #[test]
    fn support_resolution() {
        assert_eq!(Support::Fraction(0.5).to_count(10), 5);
        assert_eq!(Support::Fraction(0.0).to_count(10), 1);
        assert_eq!(Support::Fraction(1.0).to_count(10), 10);
        assert_eq!(Support::Fraction(0.25).to_count(10), 3); // ceil(2.5)
        assert_eq!(Support::Count(0).to_count(10), 1);
        assert_eq!(Support::Count(7).to_count(10), 7);
        assert_eq!(Support::Fraction(2.0).to_count(10), 10); // clamped
    }

    #[test]
    fn textbook_example() {
        // Classic Agrawal-style basket data.
        let ts = ts(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]]);
        let freq = frequent_itemsets(&ts, Support::Count(2), 3);
        let as_pairs: Vec<(Vec<u32>, u64)> =
            freq.iter().map(|f| (f.items.clone(), f.count)).collect();
        assert!(as_pairs.contains(&(vec![1], 2)));
        assert!(as_pairs.contains(&(vec![2], 3)));
        assert!(as_pairs.contains(&(vec![3], 3)));
        assert!(as_pairs.contains(&(vec![5], 3)));
        assert!(as_pairs.contains(&(vec![1, 3], 2)));
        assert!(as_pairs.contains(&(vec![2, 3], 2)));
        assert!(as_pairs.contains(&(vec![2, 5], 3)));
        assert!(as_pairs.contains(&(vec![3, 5], 2)));
        assert!(as_pairs.contains(&(vec![2, 3, 5], 2)));
        // Item 4 appears once → not frequent; no itemset contains it.
        assert!(freq.iter().all(|f| !f.items.contains(&4)));
        assert_eq!(freq.len(), 9);
    }

    #[test]
    fn max_len_caps_exploration() {
        let ts = ts(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let freq = frequent_itemsets(&ts, Support::Count(2), 2);
        assert!(freq.iter().all(|f| f.items.len() <= 2));
        assert_eq!(freq.len(), 3 + 3); // singletons + pairs
        let deeper = frequent_itemsets(&ts, Support::Count(2), 3);
        assert_eq!(deeper.len(), 7);
        assert_eq!(frequent_itemsets(&ts, Support::Count(2), 0).len(), 0);
    }

    #[test]
    fn empty_inputs() {
        let empty = TransactionSet::builder().finish();
        assert!(frequent_itemsets(&empty, Support::Count(1), 3).is_empty());
        let ts = ts(&[&[], &[]]);
        assert!(frequent_itemsets(&ts, Support::Count(1), 3).is_empty());
    }

    #[test]
    fn counts_are_exact() {
        let ts = ts(&[&[0, 1], &[0, 1], &[0], &[1], &[0, 1, 2]]);
        let freq = frequent_itemsets(&ts, Support::Count(1), 2);
        let lookup = |items: &[u32]| {
            freq.iter()
                .find(|f| f.items == items)
                .map(|f| f.count)
                .unwrap_or(0)
        };
        assert_eq!(lookup(&[0]), 4);
        assert_eq!(lookup(&[1]), 4);
        assert_eq!(lookup(&[2]), 1);
        assert_eq!(lookup(&[0, 1]), 3);
        assert_eq!(lookup(&[0, 2]), 1);
        assert_eq!(lookup(&[1, 2]), 1);
    }

    #[test]
    fn binomial_sane() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(3, 3), 1);
        assert_eq!(binomial(2, 3), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn subset_enumeration() {
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        enumerate_subsets(&[1, 2, 3, 4], 2, &mut buf, &mut |s| {
            seen.push(s.to_vec());
        });
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
    }
}
