//! # wikistale-exec
//!
//! Deterministic work-stealing execution layer for the wikistale pipeline.
//!
//! Every hot pipeline stage (cube building, field-correlation pairing,
//! Apriori support counting, the evaluation sweep) runs through this crate
//! so that one determinism contract covers them all:
//!
//! **The bytes of every artifact are a pure function of the input and the
//! per-call-site chunk size — never of the worker count or the scheduling
//! order.**
//!
//! The contract is enforced structurally:
//!
//! 1. **Fixed chunking.** Work is split into chunks whose boundaries
//!    derive only from the input length and a fixed per-call-site chunk
//!    size (adjustable globally for tests via [`override_scope`]). The
//!    worker count never influences chunk boundaries — this is the key
//!    difference from the classic `len / num_threads` split, which would
//!    move floating-point merge order around as threads vary.
//! 2. **Slot merge.** Each chunk's result is written to a slot indexed by
//!    its chunk number; the caller receives results in chunk order no
//!    matter which worker ran which chunk or in what order.
//! 3. **Serial first-class.** With one worker (or one chunk) the engine
//!    runs on the caller thread — same chunking, same merge — so
//!    `--threads 1` exercises the identical code path that the
//!    differential suite compares `--threads N` against, and `obs` span
//!    nesting is preserved for serial metric attribution.
//!
//! Scheduling is work stealing over scoped threads: each worker owns a
//! deque seeded with a contiguous block of chunk indices, pops its own
//! front, and steals from the back of a victim's deque when it runs dry.
//! Chunks are never re-queued, so a worker that observes every deque
//! empty can exit immediately. Per-worker activity (tasks executed,
//! steals, max queue depth) and per-chunk latency are reported under the
//! `parallel/<label>/…` metric tree via [`wikistale_obs::parallel`].
//!
//! Worker-count resolution, in priority order: [`set_threads`] (the CLI
//! `--threads` flag) → the `WIKISTALE_THREADS` environment variable →
//! [`std::thread::available_parallelism`]. The resolved count is *not*
//! part of any checkpoint fingerprint: artifacts produced at one thread
//! count resume cleanly at any other.

pub mod service;

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use wikistale_obs::parallel::{record_pool, WorkerReport};

/// Explicit worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Global chunk-size override for differential tests; 0 means "not set".
static CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the worker count explicitly (the CLI `--threads` flag). `0`
/// restores automatic resolution (env var, then available parallelism).
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The resolved worker count: explicit override, else `WIKISTALE_THREADS`,
/// else [`std::thread::available_parallelism`], else 1.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(value) = std::env::var("WIKISTALE_THREADS") {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed > 0 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective chunk size for a call site requesting `requested`:
/// the global override if one is active, else `requested`, floored at 1.
pub fn chunk_size(requested: usize) -> usize {
    let forced = CHUNK_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        forced
    } else {
        requested.max(1)
    }
}

/// Serializes tests that mutate the global overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// RAII scope that pins the worker count (and optionally the chunk size)
/// and restores the previous configuration on drop.
///
/// Holding the guard also holds a global lock, serializing concurrent
/// tests that would otherwise race on the process-wide configuration —
/// required because `cargo test` runs tests of one binary concurrently.
pub struct OverrideGuard {
    prev_threads: usize,
    prev_chunk: usize,
    _lock: MutexGuard<'static, ()>,
}

/// Pin `threads` workers and, if `chunk_override > 0`, force every call
/// site's chunk size to `chunk_override` until the guard drops.
pub fn override_scope(threads: usize, chunk_override: usize) -> OverrideGuard {
    let lock = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let guard = OverrideGuard {
        prev_threads: THREAD_OVERRIDE.load(Ordering::SeqCst),
        prev_chunk: CHUNK_OVERRIDE.load(Ordering::SeqCst),
        _lock: lock,
    };
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
    CHUNK_OVERRIDE.store(chunk_override, Ordering::SeqCst);
    guard
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev_threads, Ordering::SeqCst);
        CHUNK_OVERRIDE.store(self.prev_chunk, Ordering::SeqCst);
    }
}

/// An execution strategy: maps task indices `0..num_tasks` to results,
/// returned in task order. Both engines implement it so every stage keeps
/// its serial implementation behind the same trait as the parallel one.
pub trait Execute {
    /// Run `f(0), f(1), …, f(num_tasks - 1)` and return the results in
    /// task order. `label` names the pool in the `parallel/*` metric tree.
    fn run_tasks<R, F>(&self, label: &str, num_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync;
}

/// Runs every task on the caller thread, in task order.
pub struct Serial;

impl Execute for Serial {
    fn run_tasks<R, F>(&self, label: &str, num_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut results = Vec::with_capacity(num_tasks);
        let mut durations = Vec::with_capacity(num_tasks);
        for task in 0..num_tasks {
            let start = Instant::now();
            results.push(f(task));
            durations.push(start.elapsed());
        }
        record_pool(
            label,
            &durations,
            &[WorkerReport {
                tasks: num_tasks as u64,
                steals: 0,
                max_queue_depth: num_tasks as u64,
            }],
        );
        results
    }
}

/// Work-stealing pool with a fixed worker count over scoped threads.
pub struct WorkStealing {
    workers: usize,
}

impl WorkStealing {
    /// A pool of `workers` workers (floored at 2; use [`Serial`] for 1).
    pub fn new(workers: usize) -> WorkStealing {
        WorkStealing {
            workers: workers.max(2),
        }
    }
}

/// One worker's output: executed (task, result, latency) triples plus the
/// scheduling report.
type WorkerOutput<R> = (Vec<(usize, R, Duration)>, WorkerReport);

impl WorkStealing {
    fn worker_loop<R, F>(worker: usize, queues: &[Mutex<VecDeque<usize>>], f: &F) -> WorkerOutput<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = queues.len();
        let mut done = Vec::new();
        let mut report = WorkerReport::default();
        loop {
            // Own deque first: pop the front (chunk order, cache-friendly).
            let mut task = {
                let mut queue = queues[worker]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                report.max_queue_depth = report.max_queue_depth.max(queue.len() as u64);
                queue.pop_front()
            };
            // Dry: steal from the back of the first non-empty victim.
            if task.is_none() {
                for offset in 1..workers {
                    let victim = (worker + offset) % workers;
                    let stolen = queues[victim]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .pop_back();
                    if stolen.is_some() {
                        task = stolen;
                        report.steals += 1;
                        break;
                    }
                }
            }
            // Tasks are never re-queued, so "every deque empty" is final.
            let Some(task) = task else { break };
            let start = Instant::now();
            let result = f(task);
            done.push((task, result, start.elapsed()));
            report.tasks += 1;
        }
        (done, report)
    }
}

impl Execute for WorkStealing {
    fn run_tasks<R, F>(&self, label: &str, num_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.workers.min(num_tasks);
        if workers <= 1 {
            return Serial.run_tasks(label, num_tasks, f);
        }
        // Seed each worker's deque with a contiguous block of chunk
        // indices. The distribution affects only scheduling, never the
        // merge order: results land in slots keyed by task index.
        let block = num_tasks.div_ceil(workers);
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = w * block;
                let hi = ((w + 1) * block).min(num_tasks);
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let f = &f;
        let queues = &queues;
        let outputs: Vec<WorkerOutput<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || Self::worker_loop(w, queues, f)))
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(output) => output,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });

        // Deterministic chunk → slot merge.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(num_tasks);
        slots.resize_with(num_tasks, || None);
        let mut durations = vec![Duration::ZERO; num_tasks];
        let mut reports = Vec::with_capacity(workers);
        for (done, report) in outputs {
            for (task, result, elapsed) in done {
                slots[task] = Some(result);
                durations[task] = elapsed;
            }
            reports.push(report);
        }
        record_pool(label, &durations, &reports);
        slots
            .into_iter()
            .map(|slot| slot.expect("exec: every task index is seeded exactly once"))
            .collect()
    }
}

/// The engine selected by the global configuration: serial at one worker,
/// work stealing otherwise.
pub enum Engine {
    /// Caller-thread execution.
    Serial(Serial),
    /// Scoped-thread work-stealing pool.
    Stealing(WorkStealing),
}

impl Engine {
    /// The engine for an explicit worker count.
    pub fn with_threads(threads: usize) -> Engine {
        if threads <= 1 {
            Engine::Serial(Serial)
        } else {
            Engine::Stealing(WorkStealing::new(threads))
        }
    }

    /// The engine for the resolved global configuration ([`threads`]).
    pub fn current() -> Engine {
        Engine::with_threads(threads())
    }

    /// The always-serial engine, independent of configuration.
    pub fn serial() -> Engine {
        Engine::Serial(Serial)
    }

    /// The worker count this engine schedules onto.
    pub fn workers(&self) -> usize {
        match self {
            Engine::Serial(_) => 1,
            Engine::Stealing(pool) => pool.workers,
        }
    }
}

impl Execute for Engine {
    fn run_tasks<R, F>(&self, label: &str, num_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self {
            Engine::Serial(engine) => engine.run_tasks(label, num_tasks, f),
            Engine::Stealing(pool) => pool.run_tasks(label, num_tasks, f),
        }
    }
}

/// Run `f` over fixed-size chunks of `items` on the current engine;
/// results come back in chunk order. `chunk` is the requested chunk size
/// (subject to the global test override, never to the worker count).
pub fn par_chunks<T, R, F>(label: &str, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let size = chunk_size(chunk);
    let chunks: Vec<&[T]> = items.chunks(size).collect();
    Engine::current().run_tasks(label, chunks.len(), |task| f(chunks[task]))
}

/// Run `f` over fixed-size index ranges partitioning `0..len` on the
/// current engine; results come back in range order.
pub fn par_ranges<R, F>(label: &str, len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size(chunk);
    let num_chunks = len.div_ceil(size);
    Engine::current().run_tasks(label, num_chunks, |task| {
        let lo = task * size;
        let hi = (lo + size).min(len);
        f(lo..hi)
    })
}

/// Run `f(0), …, f(num_tasks - 1)` on the current engine; results come
/// back in task order. For coarse heterogeneous tasks (one per
/// granularity, one per predictor) where chunking adds nothing.
pub fn par_tasks<R, F>(label: &str, num_tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Engine::current().run_tasks(label, num_tasks, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_stealing_agree_on_task_order() {
        let _guard = override_scope(0, 0);
        let serial = Serial.run_tasks("exec_test_order", 257, |i| i * 3 + 1);
        for workers in [2, 3, 4, 7] {
            let parallel =
                WorkStealing::new(workers).run_tasks("exec_test_order", 257, |i| i * 3 + 1);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn par_chunks_partitions_exactly() {
        let _guard = override_scope(4, 0);
        let items: Vec<u64> = (0..10_000).collect();
        for chunk in [1, 7, 64, 9_999, 10_000, 20_000] {
            let partials = par_chunks("exec_test_partition", &items, chunk, |c| {
                (c.len(), c.iter().sum::<u64>())
            });
            let total_len: usize = partials.iter().map(|p| p.0).sum();
            let total_sum: u64 = partials.iter().map(|p| p.1).sum();
            assert_eq!(total_len, items.len(), "chunk={chunk}");
            assert_eq!(total_sum, items.iter().sum::<u64>(), "chunk={chunk}");
            assert_eq!(partials.len(), items.len().div_ceil(chunk));
        }
    }

    #[test]
    fn par_ranges_covers_the_full_range_in_order() {
        let _guard = override_scope(3, 0);
        let ranges = par_ranges("exec_test_ranges", 100, 7, |r| r);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let _guard = override_scope(4, 0);
        let empty: Vec<u32> = Vec::new();
        assert!(par_chunks("exec_test_empty", &empty, 8, |c| c.len()).is_empty());
        assert!(par_ranges("exec_test_empty", 0, 8, |r| r.len()).is_empty());
        assert!(par_tasks("exec_test_empty", 0, |i| i).is_empty());
    }

    #[test]
    fn chunk_override_wins_over_requested_size() {
        let _guard = override_scope(2, 5);
        let items: Vec<u32> = (0..23).collect();
        let partials = par_chunks("exec_test_override", &items, 1_000, |c| c.len());
        assert_eq!(partials, vec![5, 5, 5, 5, 3]);
    }

    #[test]
    fn every_task_runs_exactly_once_under_stealing() {
        let _guard = override_scope(0, 0);
        let hits = AtomicU64::new(0);
        let results = WorkStealing::new(7).run_tasks("exec_test_once", 1_000, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i as u64
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1_000);
        assert_eq!(results, (0..1_000).collect::<Vec<u64>>());
    }

    #[test]
    fn uneven_workloads_still_merge_in_order() {
        let _guard = override_scope(0, 0);
        // Task 0 is much slower than the rest: stealing reorders
        // execution, the slot merge must not care.
        let results = WorkStealing::new(4).run_tasks("exec_test_uneven", 64, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i
        });
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn threads_resolution_honors_override() {
        let _guard = override_scope(5, 0);
        assert_eq!(threads(), 5);
        assert_eq!(Engine::current().workers(), 5);
        drop(_guard);
        let _guard = override_scope(1, 0);
        assert!(matches!(Engine::current(), Engine::Serial(_)));
    }

    #[test]
    fn pool_metrics_account_for_every_chunk() {
        let _guard = override_scope(4, 0);
        let registry = wikistale_obs::MetricsRegistry::global();
        let items: Vec<u64> = (0..4_096).collect();
        par_chunks("exec_test_metrics", &items, 64, |c| c.len());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.spans["parallel/exec_test_metrics/chunk"].count, 64);
        assert_eq!(snapshot.gauges["parallel/exec_test_metrics/chunks"], 64.0);
        let workers = snapshot.gauges["parallel/exec_test_metrics/workers"];
        assert!((1.0..=4.0).contains(&workers), "workers gauge {workers}");
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = override_scope(0, 0);
        let caught = std::panic::catch_unwind(|| {
            WorkStealing::new(3).run_tasks("exec_test_panic", 16, |i| {
                assert!(i != 9, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
