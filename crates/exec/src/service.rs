//! Long-lived bounded worker pool for non-batch callers.
//!
//! The batch engines in the crate root ([`crate::Execute`]) own the full
//! task set up front, fan it out over scoped threads, and join before
//! returning — the right shape for pipeline stages, and the wrong shape
//! for a server that receives work one request at a time and must bound
//! how much of it is admitted.
//!
//! [`ServicePool`] fills that gap with three deliberate properties:
//!
//! - **Bounded admission.** [`ServicePool::try_submit`] never blocks:
//!   when every worker is busy and the queue already holds `queue_limit`
//!   jobs, submission fails with [`SubmitError::QueueFull`] and the
//!   caller sheds load (the serving layer turns this into `503` +
//!   `Retry-After`). Backpressure is explicit, not an unbounded buffer.
//! - **Graceful drain.** [`ServicePool::shutdown`] stops admission,
//!   lets workers finish every job already accepted, then joins them —
//!   so an in-flight request is never abandoned mid-response.
//! - **Panic containment.** A panicking job is caught, counted
//!   (`service/<label>/panics`), and the worker keeps serving. One bad
//!   request must not take the daemon down.
//!
//! Per-pool counters live under `service/<label>/…` in the global
//! metrics registry: `submitted`, `rejected`, `completed`, `panics`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use wikistale_obs::MetricsRegistry;

/// A unit of work accepted by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`ServicePool::try_submit`] rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `limit` jobs; the caller should shed load.
    QueueFull {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The pool is draining; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth} queued, limit {limit})")
            }
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_available: Condvar,
}

/// A fixed-size pool of long-lived workers with a bounded submission
/// queue. See the module docs for the admission/drain/panic contract.
pub struct ServicePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_limit: usize,
    label: String,
}

impl ServicePool {
    /// Spawn `workers` threads (floored at 1) with an admission queue
    /// bounded at `queue_limit` pending jobs (floored at 1). `label`
    /// namespaces the pool's metrics.
    pub fn new(label: &str, workers: usize, queue_limit: usize) -> ServicePool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work_available: Condvar::new(),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let worker_label = label.to_string();
                std::thread::Builder::new()
                    .name(format!("{label}-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &worker_label))
                    .unwrap_or_else(|e| panic!("failed to spawn {label} worker: {e}"))
            })
            .collect();
        ServicePool {
            shared,
            workers: handles,
            queue_limit: queue_limit.max(1),
            label: label.to_string(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The configured admission limit.
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Admit `job` if the queue has room; never blocks. On rejection the
    /// job is returned to the caller untouched inside the error path
    /// semantics (it is simply dropped — the caller still owns the
    /// response channel and writes the shed reply itself).
    pub fn try_submit<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let metrics = MetricsRegistry::global();
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            metrics
                .counter(&format!("service/{}/rejected", self.label))
                .incr();
            return Err(SubmitError::ShuttingDown);
        }
        let depth = state.queue.len();
        if depth >= self.queue_limit {
            metrics
                .counter(&format!("service/{}/rejected", self.label))
                .incr();
            return Err(SubmitError::QueueFull {
                depth,
                limit: self.queue_limit,
            });
        }
        state.queue.push_back(Box::new(job));
        metrics
            .counter(&format!("service/{}/submitted", self.label))
            .incr();
        drop(state);
        self.shared.work_available.notify_one();
        Ok(())
    }

    /// Stop admission, run every already-accepted job to completion, and
    /// join the workers. Idempotent via `Drop` (calling `shutdown` then
    /// dropping is fine).
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            // A worker can only "fail" here by panicking outside
            // catch_unwind, which the loop structure does not allow;
            // still, a poisoned join must not panic the drain path.
            let _ = handle.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

fn worker_loop(shared: &Shared, label: &str) {
    let metrics = MetricsRegistry::global();
    let completed = metrics.counter(&format!("service/{label}/completed"));
    let panics = metrics.counter(&format!("service/{label}/panics"));
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_ok() {
            completed.incr();
        } else {
            panics.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = ServicePool::new("t_drain", 2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn queue_limit_sheds_excess_load() {
        let pool = ServicePool::new("t_shed", 1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker until released.
        pool.try_submit(move || {
            started_tx.send(()).ok();
            release_rx.recv().ok();
        })
        .expect("first job admitted");
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picked up the blocking job");
        // Worker busy, queue empty: one more job fits.
        pool.try_submit(|| {}).expect("queue slot available");
        // Queue now at the limit: the next submission is shed.
        match pool.try_submit(|| {}) {
            Err(SubmitError::QueueFull { depth, limit }) => {
                assert_eq!(depth, 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        release_tx.send(()).ok();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = ServicePool::new("t_panic", 1, 8);
        pool.try_submit(|| panic!("boom")).expect("admitted");
        let (tx, rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            tx.send(()).ok();
        })
        .expect("admitted after panic");
        rx.recv_timeout(Duration::from_secs(5))
            .expect("worker survived the panicking job");
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let pool = ServicePool::new("t_reject", 1, 8);
        {
            let mut state = pool
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn workers_and_limits_are_floored_at_one() {
        let pool = ServicePool::new("t_floor", 0, 0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.queue_limit(), 1);
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown();
    }
}
