//! A counting global allocator.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains three
//! process-wide atomics: the *current* number of live heap bytes, the
//! *global peak* since process start, and a resettable *scope peak* used
//! to attribute peak memory to one pipeline stage at a time. Binaries opt
//! in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wikistale_obs::alloc::CountingAlloc =
//!     wikistale_obs::alloc::CountingAlloc;
//! ```
//!
//! and libraries read the counters through [`current_bytes`] /
//! [`peak_bytes`] / [`AllocScope`]. When no binary installs the
//! allocator the counters simply stay at zero — readers must treat zero
//! as "not measured", never as "no memory".
//!
//! Every counter update is a relaxed `fetch_add`/`fetch_max`; the
//! allocator adds no locks and no allocation of its own, so it is safe
//! (and cheap, a few nanoseconds per call) to leave installed in
//! production binaries.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes right now.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// Largest value `CURRENT` has ever reached.
static GLOBAL_PEAK: AtomicUsize = AtomicUsize::new(0);
/// Largest value `CURRENT` has reached since the last [`AllocScope`]
/// began. Only meaningful while a single scope is active.
static SCOPE_PEAK: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator. A unit struct so it can be used directly as a
/// `#[global_allocator]` static.
pub struct CountingAlloc;

#[inline]
fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    GLOBAL_PEAK.fetch_max(now, Ordering::Relaxed);
    SCOPE_PEAK.fetch_max(now, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates are lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Live heap bytes right now. Zero when [`CountingAlloc`] is not the
/// process's global allocator.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start. Zero when [`CountingAlloc`]
/// is not installed.
pub fn peak_bytes() -> usize {
    GLOBAL_PEAK.load(Ordering::Relaxed)
}

/// A measurement scope attributing peak heap usage to one region of code.
///
/// `begin` snapshots the current live-byte count and resets the shared
/// scope-peak mark; [`AllocScope::peak_bytes`] then reports the highest
/// live-byte count observed since. Scopes share one global mark, so only
/// one should be active at a time — the intended use is sequential
/// pipeline stages, each wrapped in its own scope:
///
/// ```
/// let scope = wikistale_obs::alloc::AllocScope::begin();
/// let data = vec![0u8; 1 << 16]; // ... the stage under measurement ...
/// drop(data);
/// let stage_peak = scope.peak_delta(); // extra bytes the stage needed
/// ```
#[derive(Debug)]
pub struct AllocScope {
    start: usize,
}

impl AllocScope {
    /// Start a new scope: record the live-byte baseline and reset the
    /// scope-peak mark to it.
    pub fn begin() -> AllocScope {
        let start = CURRENT.load(Ordering::Relaxed);
        SCOPE_PEAK.store(start, Ordering::Relaxed);
        AllocScope { start }
    }

    /// Live bytes when the scope began.
    pub fn start_bytes(&self) -> usize {
        self.start
    }

    /// Highest live-byte count observed since the scope began.
    pub fn peak_bytes(&self) -> usize {
        SCOPE_PEAK.load(Ordering::Relaxed).max(self.start)
    }

    /// Peak bytes *above* the scope's baseline — the extra memory the
    /// measured region needed on top of what was already live.
    pub fn peak_delta(&self) -> usize {
        self.peak_bytes().saturating_sub(self.start)
    }

    /// Live bytes retained beyond the baseline at the time of the call —
    /// what the measured region left behind (e.g. a built artifact).
    pub fn retained_delta(&self) -> usize {
        current_bytes().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The counters are process-global; serialize the tests that drive
    /// the allocator directly so their deltas don't interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_lock(f: impl FnOnce()) {
        let _guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        f();
    }

    /// Drive the `GlobalAlloc` impl directly (the test binary itself runs
    /// on the default allocator, so the statics only move through these
    /// explicit calls).
    fn raw_alloc(size: usize) -> (*mut u8, Layout) {
        let layout = Layout::from_size_align(size, 8).expect("valid layout");
        let ptr = unsafe { CountingAlloc.alloc(layout) };
        assert!(!ptr.is_null());
        (ptr, layout)
    }

    #[test]
    fn alloc_and_dealloc_move_current() {
        with_lock(|| {
            let before = current_bytes();
            let (ptr, layout) = raw_alloc(4096);
            assert_eq!(current_bytes(), before + 4096);
            unsafe { CountingAlloc.dealloc(ptr, layout) };
            assert_eq!(current_bytes(), before);
        });
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        with_lock(|| {
            let (ptr, layout) = raw_alloc(1 << 20);
            let peak_while_live = peak_bytes();
            assert!(peak_while_live >= current_bytes());
            unsafe { CountingAlloc.dealloc(ptr, layout) };
            // Freeing must not lower the recorded peak.
            assert!(peak_bytes() >= peak_while_live);
        });
    }

    #[test]
    fn realloc_adjusts_by_difference() {
        with_lock(|| {
            let before = current_bytes();
            let (ptr, layout) = raw_alloc(1000);
            let grown = unsafe { CountingAlloc.realloc(ptr, layout, 3000) };
            assert!(!grown.is_null());
            assert_eq!(current_bytes(), before + 3000);
            let new_layout = Layout::from_size_align(3000, 8).expect("valid layout");
            unsafe { CountingAlloc.dealloc(grown, new_layout) };
            assert_eq!(current_bytes(), before);
        });
    }

    #[test]
    fn alloc_zeroed_counts_and_zeroes() {
        with_lock(|| {
            let before = current_bytes();
            let layout = Layout::from_size_align(512, 8).expect("valid layout");
            let ptr = unsafe { CountingAlloc.alloc_zeroed(layout) };
            assert!(!ptr.is_null());
            assert_eq!(current_bytes(), before + 512);
            let bytes = unsafe { std::slice::from_raw_parts(ptr, 512) };
            assert!(bytes.iter().all(|&b| b == 0));
            unsafe { CountingAlloc.dealloc(ptr, layout) };
        });
    }

    #[test]
    fn scope_reports_peak_delta_not_retained() {
        with_lock(|| {
            let scope = AllocScope::begin();
            let (ptr, layout) = raw_alloc(1 << 16);
            unsafe { CountingAlloc.dealloc(ptr, layout) };
            // The 64 KiB was freed, but the scope peak remembers it.
            assert!(scope.peak_delta() >= 1 << 16);
            assert_eq!(scope.retained_delta(), 0);
        });
    }

    #[test]
    fn scope_retained_counts_live_bytes() {
        with_lock(|| {
            let scope = AllocScope::begin();
            let (ptr, layout) = raw_alloc(2048);
            assert!(scope.retained_delta() >= 2048);
            assert!(scope.peak_bytes() >= scope.start_bytes() + 2048);
            unsafe { CountingAlloc.dealloc(ptr, layout) };
        });
    }
}
