//! Zero-dependency pipeline observability.
//!
//! The build environment cannot fetch crates, so this subsystem uses only
//! the standard library: [`std::time::Instant`] for monotonic timing,
//! atomics for counters and gauges, and hand-rolled JSON rendering.
//!
//! Three primitives cover the pipeline's needs:
//!
//! - **Spans** — RAII wall-clock timers that nest. Entering a span pushes
//!   its name onto a thread-local stack; the recorded key is the
//!   slash-joined path of the active stack (`experiment/train/field_corr`),
//!   so the rendered output is a stage tree. Each path accumulates call
//!   count, total, min, and max.
//! - **Counters** — monotonically increasing `u64`s (changes ingested,
//!   predictions emitted). [`MetricsRegistry::counter`] returns a shared
//!   atomic handle so hot loops pay one `fetch_add`, no lock.
//! - **Gauges** — last-write-wins `f64`s (chunk imbalance ratio, corpus
//!   size) stored as bit-cast `u64` atomics.
//!
//! A process-wide registry is available via [`MetricsRegistry::global`];
//! library code records into it unconditionally (recording costs tens of
//! nanoseconds) and binaries decide whether to render. Output formats are
//! a human-readable table ([`MetricsRegistry::render_table`]) and machine
//! JSON ([`MetricsRegistry::render_json`]) whose span section is a tree
//! mirroring the nesting.
//!
//! ```
//! use wikistale_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! {
//!     let _outer = registry.span("train");
//!     let _inner = registry.span("field_corr");
//!     registry.counter("pairs_scored").add(42);
//! }
//! let json = registry.render_json();
//! assert!(json.contains("\"field_corr\""));
//! wikistale_obs::json::validate(&json).unwrap();
//! ```

pub mod alloc;
pub mod json;
pub mod parallel;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed executions.
    pub count: u64,
    /// Total wall time across executions.
    pub total: Duration,
    /// Shortest single execution.
    pub min: Duration,
    /// Longest single execution.
    pub max: Duration,
}

impl SpanStat {
    fn record(&mut self, elapsed: Duration) {
        if self.count == 0 || elapsed < self.min {
            self.min = elapsed;
        }
        if elapsed > self.max {
            self.max = elapsed;
        }
        self.count += 1;
        self.total += elapsed;
    }

    /// Mean execution time, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// A shared atomic counter handle. Cheap to clone; `add` is lock-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

/// Number of power-of-two latency buckets. Bucket `i` (for `i >= 1`)
/// holds durations of `2^(i-1) ..= 2^i - 1` microseconds; bucket 0 holds
/// sub-microsecond samples. 40 buckets reach ~2^39 µs ≈ 6.4 days.
const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A shared latency histogram handle. Recording is lock-free: one
/// `fetch_add` into a power-of-two bucket plus running sum/max atomics,
/// so request threads can record on every response without contention.
///
/// Quantiles read from a [`HistogramStat`] snapshot are upper-bound
/// estimates (the top of the bucket containing the requested rank,
/// clamped to the observed maximum) — at most 2x the true value, which
/// is the right fidelity for p50/p95/p99 service latency reporting.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one observed duration.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.0.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.0.max_micros.fetch_max(micros, Ordering::Relaxed);
    }
}

/// Point-in-time statistics for one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramStat {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub sum_micros: u64,
    /// Largest single sample, in microseconds.
    pub max_micros: u64,
    /// Per-bucket sample counts (power-of-two bucket boundaries).
    pub buckets: Vec<u64>,
}

impl HistogramStat {
    fn from_cell(cell: &HistogramCell) -> HistogramStat {
        let buckets: Vec<u64> = cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramStat {
            count: buckets.iter().sum(),
            sum_micros: cell.sum_micros.load(Ordering::Relaxed),
            max_micros: cell.max_micros.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Mean sample duration, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        match self.sum_micros.checked_div(self.count) {
            Some(mean) => Duration::from_micros(mean),
            None => Duration::ZERO,
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`):
    /// the top of the bucket holding the requested rank, clamped to the
    /// observed maximum. Zero when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Duration::from_micros(upper.min(self.max_micros));
            }
        }
        Duration::from_micros(self.max_micros)
    }
}

impl Counter {
    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// The active span path on this thread. Worker threads start at the
    /// root, so spans opened inside spawned threads appear as top-level
    /// stages unless the caller passes an explicit parent path.
    static SPAN_STACK: std::cell::RefCell<Vec<String>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Central store for spans, counters, and gauges.
///
/// All methods take `&self`; internal state is a mutex-guarded map for
/// span statistics (updated once per span exit) plus atomics for the hot
/// counter/gauge paths.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, AtomicU64>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry the pipeline records into.
    pub fn global() -> &'static MetricsRegistry {
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Enter a span named `name`, nested under this thread's current span.
    /// The returned guard records the elapsed time when dropped.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        SpanGuard {
            registry: self,
            path,
            start: Instant::now(),
        }
    }

    /// Record a completed duration directly under `path` (slash-separated),
    /// bypassing the thread-local nesting. Used when the caller measured
    /// the time itself, e.g. per-chunk timings from worker threads.
    pub fn record_duration(&self, path: &str, elapsed: Duration) {
        self.spans
            .lock()
            .expect("metrics span map poisoned")
            .entry(path.to_string())
            .or_default()
            .record(elapsed);
    }

    /// The shared counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let handle = self
            .counters
            .lock()
            .expect("metrics counter map poisoned")
            .entry(name.to_string())
            .or_default()
            .clone();
        Counter(handle)
    }

    /// The shared latency histogram named `name`, created empty on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cell = self
            .histograms
            .lock()
            .expect("metrics histogram map poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new()))
            .clone();
        Histogram(cell)
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauges
            .lock()
            .expect("metrics gauge map poisoned")
            .entry(name.to_string())
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current gauge value, if the gauge exists.
    pub fn gauge_get(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("metrics gauge map poisoned")
            .get(name)
            .map(|bits| f64::from_bits(bits.load(Ordering::Relaxed)))
    }

    /// Drop all recorded spans, counters, and gauges. Counter handles
    /// obtained before the reset keep counting into detached cells.
    pub fn reset(&self) {
        self.spans
            .lock()
            .expect("metrics span map poisoned")
            .clear();
        self.counters
            .lock()
            .expect("metrics counter map poisoned")
            .clear();
        self.gauges
            .lock()
            .expect("metrics gauge map poisoned")
            .clear();
        self.histograms
            .lock()
            .expect("metrics histogram map poisoned")
            .clear();
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let spans = self
            .spans
            .lock()
            .expect("metrics span map poisoned")
            .clone();
        let counters = self
            .counters
            .lock()
            .expect("metrics counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), HistogramStat::from_cell(v)))
            .collect();
        MetricsSnapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }

    /// Render the current state as a human-readable table.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }

    /// Render the current state as JSON (span section nested as a tree).
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// RAII guard returned by [`MetricsRegistry::span`].
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard<'a> {
    registry: &'a MetricsRegistry,
    path: String,
    start: Instant,
}

impl SpanGuard<'_> {
    /// The slash-separated path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame. Out-of-order drops (guards held across
            // each other) pop the nearest matching frame instead.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        self.registry.record_duration(&self.path, elapsed);
    }
}

/// Immutable copy of a registry's state; renders tables and JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Span statistics keyed by slash-separated path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistogramStat>,
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

impl MetricsSnapshot {
    /// Total time recorded by top-level spans (paths without a parent).
    pub fn top_level_total(&self) -> Duration {
        self.spans
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .map(|(_, stat)| stat.total)
            .sum()
    }

    /// Render as an aligned text table: spans (indented by depth), then
    /// counters, then gauges. Empty sections are omitted.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "span", "count", "total_ms", "mean_ms", "min_ms", "max_ms"
            ));
            SpanNode::build(&self.spans).write_table(&mut out, 0);
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<44} {:>20}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<44} {value:>20}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("\n{:<44} {:>20}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<44} {value:>20.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"
            ));
            for (name, stat) in &self.histograms {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    stat.count,
                    fmt_ms(stat.mean()),
                    fmt_ms(stat.quantile(0.50)),
                    fmt_ms(stat.quantile(0.95)),
                    fmt_ms(stat.quantile(0.99)),
                    fmt_ms(Duration::from_micros(stat.max_micros)),
                ));
            }
        }
        out
    }

    /// Render as JSON. Spans become a tree keyed by path segment, each
    /// node carrying `count`/`total_ms`/`mean_ms`/`min_ms`/`max_ms` and a
    /// `children` object. A path can be both a stage and a parent
    /// (`train` and `train/field_corr`), so stats and children coexist.
    pub fn render_json(&self) -> String {
        let tree = SpanNode::build(&self.spans);
        let mut out = String::from("{\n  \"spans\": ");
        tree.write_json(&mut out, 1);
        out.push_str(",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::escape(name), value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {}",
                json::escape(name),
                json::number(*value)
            ));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, stat)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"mean_ms\": {}, \"p50_ms\": {}, \
                 \"p95_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}}}",
                json::escape(name),
                stat.count,
                fmt_ms(stat.mean()),
                fmt_ms(stat.quantile(0.50)),
                fmt_ms(stat.quantile(0.95)),
                fmt_ms(stat.quantile(0.99)),
                fmt_ms(Duration::from_micros(stat.max_micros)),
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[derive(Debug, Default)]
struct SpanNode {
    stat: Option<SpanStat>,
    children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    fn build(spans: &BTreeMap<String, SpanStat>) -> SpanNode {
        let mut root = SpanNode::default();
        for (path, stat) in spans {
            let mut node = &mut root;
            for segment in path.split('/') {
                node = node.children.entry(segment.to_string()).or_default();
            }
            node.stat = Some(*stat);
        }
        root
    }

    fn write_table(&self, out: &mut String, depth: usize) {
        for (name, child) in &self.children {
            let label = format!("{}{}", "  ".repeat(depth), name);
            match &child.stat {
                Some(stat) => out.push_str(&format!(
                    "{:<44} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                    label,
                    stat.count,
                    fmt_ms(stat.total),
                    fmt_ms(stat.mean()),
                    fmt_ms(stat.min),
                    fmt_ms(stat.max),
                )),
                // Recorded only through descendants (e.g. the `parallel`
                // grouping above per-chunk spans): print a name-only row
                // so the children don't appear attached to whatever
                // subtree happened to sort before them.
                None => {
                    out.push_str(&label);
                    out.push('\n');
                }
            }
            child.write_table(out, depth + 1);
        }
    }

    fn write_json(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let inner = "  ".repeat(depth + 1);
        out.push('{');
        let mut first = true;
        let mut field = |out: &mut String, text: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&inner);
            out.push_str(&text);
        };
        if let Some(stat) = &self.stat {
            field(out, format!("\"count\": {}", stat.count));
            field(out, format!("\"total_ms\": {}", fmt_ms(stat.total)));
            field(out, format!("\"mean_ms\": {}", fmt_ms(stat.mean())));
            field(out, format!("\"min_ms\": {}", fmt_ms(stat.min)));
            field(out, format!("\"max_ms\": {}", fmt_ms(stat.max)));
        }
        for (name, child) in &self.children {
            let mut text = format!("{}: ", json::escape(name));
            child.write_json(&mut text, depth + 1);
            field(out, text);
        }
        if !first {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let registry = MetricsRegistry::new();
        {
            let _outer = registry.span("outer");
            {
                let _inner = registry.span("inner");
            }
            let _sibling = registry.span("sibling");
        }
        let snapshot = registry.snapshot();
        let paths: Vec<&str> = snapshot.spans.keys().map(String::as_str).collect();
        assert_eq!(paths, ["outer", "outer/inner", "outer/sibling"]);
    }

    #[test]
    fn span_stats_accumulate() {
        let registry = MetricsRegistry::new();
        registry.record_duration("stage", Duration::from_millis(10));
        registry.record_duration("stage", Duration::from_millis(30));
        let stat = registry.snapshot().spans["stage"];
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total, Duration::from_millis(40));
        assert_eq!(stat.mean(), Duration::from_millis(20));
        assert_eq!(stat.min, Duration::from_millis(10));
        assert_eq!(stat.max, Duration::from_millis(30));
    }

    #[test]
    fn counters_are_exact_across_threads() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let counter = registry.counter("hits");
                    for _ in 0..10_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), 80_000);
    }

    #[test]
    fn gauges_hold_last_write() {
        let registry = MetricsRegistry::new();
        registry.gauge_set("imbalance", 1.5);
        registry.gauge_set("imbalance", 2.25);
        assert_eq!(registry.gauge_get("imbalance"), Some(2.25));
        assert_eq!(registry.gauge_get("missing"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let registry = MetricsRegistry::new();
        registry.counter("c").incr();
        registry.gauge_set("g", 1.0);
        registry.record_duration("s", Duration::from_millis(1));
        registry.reset();
        let snapshot = registry.snapshot();
        assert!(snapshot.spans.is_empty());
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
    }

    #[test]
    fn json_render_is_valid_and_nested() {
        let registry = MetricsRegistry::new();
        registry.record_duration("train", Duration::from_millis(50));
        registry.record_duration("train/field_corr", Duration::from_millis(30));
        registry.record_duration("train/assoc", Duration::from_millis(20));
        registry.counter("changes \"quoted\"").add(7);
        registry.gauge_set("ratio", 0.5);
        let rendered = registry.render_json();
        json::validate(&rendered).expect("valid JSON");
        assert!(rendered.contains("\"field_corr\""));
        assert!(rendered.contains("\"changes \\\"quoted\\\"\""));
    }

    #[test]
    fn table_render_lists_all_sections() {
        let registry = MetricsRegistry::new();
        registry.record_duration("a/b", Duration::from_millis(5));
        registry.counter("n").add(3);
        registry.gauge_set("g", 9.75);
        let table = registry.render_table();
        assert!(table.contains("span"));
        assert!(table.contains("  b"));
        assert!(table.contains("counter"));
        assert!(table.contains("gauge"));
    }

    #[test]
    fn table_render_prints_statless_intermediate_nodes() {
        let registry = MetricsRegistry::new();
        registry.record_duration("filter/min_changes", Duration::from_millis(5));
        registry.record_duration("parallel/assoc/chunk", Duration::from_millis(2));
        let table = registry.render_table();
        // `parallel` and `parallel/assoc` have no stats of their own, but
        // must still print so `chunk` is not mistaken for a child of the
        // lexicographically preceding `filter` subtree.
        let lines: Vec<&str> = table.lines().collect();
        let parallel = lines.iter().position(|l| l.trim() == "parallel").unwrap();
        assert_eq!(lines[parallel + 1].trim(), "assoc");
        assert!(lines[parallel + 2].trim_start().starts_with("chunk"));
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("latency");
        // 90 fast samples at ~100µs, 10 slow at ~50ms.
        for _ in 0..90 {
            hist.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            hist.record(Duration::from_millis(50));
        }
        let stat = &registry.snapshot().histograms["latency"];
        assert_eq!(stat.count, 100);
        // p50 lands in the fast bucket: upper bound of [64, 127] µs.
        let p50 = stat.quantile(0.50);
        assert!(p50 >= Duration::from_micros(100) && p50 < Duration::from_micros(200));
        // p95/p99 land in the slow bucket, clamped to the observed max.
        assert_eq!(stat.quantile(0.95), Duration::from_millis(50));
        assert_eq!(stat.quantile(0.99), Duration::from_millis(50));
        assert_eq!(stat.max_micros, 50_000);
        assert!(stat.mean() >= Duration::from_micros(100));
    }

    #[test]
    fn histogram_empty_and_zero_samples() {
        let registry = MetricsRegistry::new();
        let stat = HistogramStat::default();
        assert_eq!(stat.quantile(0.99), Duration::ZERO);
        assert_eq!(stat.mean(), Duration::ZERO);
        let hist = registry.histogram("h");
        hist.record(Duration::ZERO);
        let stat = &registry.snapshot().histograms["h"];
        assert_eq!(stat.count, 1);
        assert_eq!(stat.quantile(1.0), Duration::ZERO);
    }

    #[test]
    fn histogram_renders_in_table_and_json() {
        let registry = MetricsRegistry::new();
        registry
            .histogram("serve/latency")
            .record(Duration::from_millis(3));
        let table = registry.render_table();
        assert!(table.contains("histogram"));
        assert!(table.contains("p99_ms"));
        let rendered = registry.render_json();
        json::validate(&rendered).expect("valid JSON");
        assert!(rendered.contains("\"serve/latency\""));
        assert!(rendered.contains("\"p95_ms\""));
        // Reset clears histograms like the other sections.
        registry.reset();
        assert!(registry.snapshot().histograms.is_empty());
    }

    #[test]
    fn histogram_records_concurrently() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let hist = registry.histogram("h");
                    for _ in 0..1_000 {
                        hist.record(Duration::from_micros(10));
                    }
                });
            }
        });
        assert_eq!(registry.snapshot().histograms["h"].count, 4_000);
    }

    #[test]
    fn top_level_total_ignores_children() {
        let registry = MetricsRegistry::new();
        registry.record_duration("a", Duration::from_millis(100));
        registry.record_duration("a/b", Duration::from_millis(90));
        registry.record_duration("c", Duration::from_millis(10));
        assert_eq!(
            registry.snapshot().top_level_total(),
            Duration::from_millis(110)
        );
    }
}
