//! Minimal JSON helpers: string escaping, number formatting, and a
//! recursive-descent parser used by tests and tooling to check rendered
//! output is well-formed — and to navigate it — without an external JSON
//! dependency.

use std::collections::BTreeMap;

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number. Non-finite values have no JSON
/// representation and render as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; that is still
        // valid JSON, so pass it through unchanged.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object keys keep sorted order via `BTreeMap`,
/// matching how the registry renders them.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse `text` as one complete JSON value.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Check that `text` is one complete, well-formed JSON value.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(drop)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        if bytes.len() < *pos + 5
                            || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        let hex = std::str::from_utf8(&bytes[*pos + 1..*pos + 5]).unwrap();
                        let code = u32::from_str_radix(hex, 16).unwrap();
                        // Surrogate pairs are not produced by our renderer;
                        // reject them rather than silently mis-decode.
                        let c = char::from_u32(code).ok_or_else(|| {
                            format!("unsupported \\u{hex} at byte {pos}", pos = *pos)
                        })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let before = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn number_formats() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn validate_accepts_wellformed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"str \\u0041\"",
            "{\"a\": [1, 2, {\"b\": true}], \"c\": null}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01x", "\"unterminated", "{} {}"] {
            assert!(validate(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parse_builds_navigable_values() {
        let v = parse("{\"a\": [1, 2.5], \"s\": \"x\\ny\", \"t\": true}").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![Value::Num(1.0), Value::Num(2.5)]))
        );
        assert_eq!(v.get("s"), Some(&Value::Str("x\ny".to_string())));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("a").unwrap().as_f64(), None);
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert!(v.as_object().unwrap().contains_key("s"));
    }

    #[test]
    fn parse_unescapes_unicode() {
        assert_eq!(
            parse("\"\\u00e9\\u0041\"").unwrap(),
            Value::Str("\u{e9}A".to_string())
        );
        assert!(parse("\"\\ud800\"").is_err()); // lone surrogate
    }

    /// A `\u` escape is exactly four hex digits. The guard checks each
    /// byte with `is_ascii_hexdigit` before `from_str_radix`, so a
    /// sign character can never ride in as part of the code point.
    #[test]
    fn parse_rejects_malformed_unicode_escapes() {
        assert!(parse("\"\\u+0ff\"").is_err()); // signed "hex"
        assert!(parse("\"\\u00g1\"").is_err()); // non-hex digit
        assert!(parse("\"\\u00f\"").is_err()); // too short
        assert!(parse("\"\\u\"").is_err()); // no digits at all
    }
}
