//! Metric attribution for parallel execution pools.
//!
//! The execution layer (`wikistale-exec`) is metric-agnostic: it measures
//! per-chunk wall times and per-worker scheduling activity, then hands the
//! raw observations to [`record_pool`], which owns the naming scheme. All
//! pool metrics live under the `parallel/<label>/…` tree that the serial
//! pipeline already used, so `--metrics` output keeps one namespace
//! regardless of thread count:
//!
//! * span `parallel/<label>/chunk` — one observation per executed chunk
//!   (count, total, min/max), the chunk-latency distribution;
//! * gauge `parallel/<label>/chunks` — chunks in the last run;
//! * gauge `parallel/<label>/workers` — workers used by the last run;
//! * gauge `parallel/<label>/imbalance` — max chunk time ÷ mean chunk
//!   time for the last run (1.0 = perfectly balanced);
//! * gauge `parallel/<label>/queue_depth_max` — deepest per-worker deque
//!   observed during the last run;
//! * counter `parallel/<label>/steals` — cumulative successful steals;
//! * counters `parallel/<label>/worker<K>/tasks` and
//!   `parallel/<label>/worker<K>/steals` — cumulative per-worker
//!   attribution (worker indices are stable within one pool run).

use crate::MetricsRegistry;
use std::time::Duration;

/// Scheduling activity of one worker during one pool run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Chunks this worker executed.
    pub tasks: u64,
    /// Chunks this worker stole from another worker's deque.
    pub steals: u64,
    /// Deepest own-deque length observed when popping.
    pub max_queue_depth: u64,
}

/// Record one pool run's observations into the global registry.
///
/// `chunk_durations` holds one wall-time entry per executed chunk (in
/// chunk order, though order does not matter for any derived metric);
/// `reports` holds one entry per worker, indexed by worker id. A serial
/// run passes a single synthetic worker report.
pub fn record_pool(label: &str, chunk_durations: &[Duration], reports: &[WorkerReport]) {
    if chunk_durations.is_empty() {
        return;
    }
    let registry = MetricsRegistry::global();
    let chunk_path = format!("parallel/{label}/chunk");
    let mut total = Duration::ZERO;
    let mut max = Duration::ZERO;
    for elapsed in chunk_durations {
        registry.record_duration(&chunk_path, *elapsed);
        total += *elapsed;
        max = max.max(*elapsed);
    }
    registry.gauge_set(
        &format!("parallel/{label}/chunks"),
        chunk_durations.len() as f64,
    );
    registry.gauge_set(&format!("parallel/{label}/workers"), reports.len() as f64);
    let mean = total.as_secs_f64() / chunk_durations.len() as f64;
    if mean > 0.0 {
        registry.gauge_set(
            &format!("parallel/{label}/imbalance"),
            max.as_secs_f64() / mean,
        );
    }
    let mut steals_total = 0u64;
    let mut depth_max = 0u64;
    for (worker, report) in reports.iter().enumerate() {
        steals_total += report.steals;
        depth_max = depth_max.max(report.max_queue_depth);
        registry
            .counter(&format!("parallel/{label}/worker{worker}/tasks"))
            .add(report.tasks);
        registry
            .counter(&format!("parallel/{label}/worker{worker}/steals"))
            .add(report.steals);
    }
    registry
        .counter(&format!("parallel/{label}/steals"))
        .add(steals_total);
    registry.gauge_set(
        &format!("parallel/{label}/queue_depth_max"),
        depth_max as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_pool_populates_the_parallel_tree() {
        let registry = MetricsRegistry::global();
        let steals_before = registry.counter("parallel/pool_test/steals").get();
        record_pool(
            "pool_test",
            &[Duration::from_millis(2), Duration::from_millis(4)],
            &[
                WorkerReport {
                    tasks: 1,
                    steals: 0,
                    max_queue_depth: 1,
                },
                WorkerReport {
                    tasks: 1,
                    steals: 1,
                    max_queue_depth: 2,
                },
            ],
        );
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.spans["parallel/pool_test/chunk"].count, 2);
        assert_eq!(snapshot.gauges["parallel/pool_test/chunks"], 2.0);
        assert_eq!(snapshot.gauges["parallel/pool_test/workers"], 2.0);
        assert_eq!(snapshot.gauges["parallel/pool_test/queue_depth_max"], 2.0);
        assert_eq!(
            registry.counter("parallel/pool_test/steals").get() - steals_before,
            1
        );
        assert_eq!(
            registry.counter("parallel/pool_test/worker1/steals").get(),
            1
        );
        let imbalance = snapshot.gauges["parallel/pool_test/imbalance"];
        assert!(
            (imbalance - 4.0 / 3.0).abs() < 1e-9,
            "imbalance {imbalance}"
        );
    }

    #[test]
    fn record_pool_with_no_chunks_is_a_no_op() {
        let registry = MetricsRegistry::global();
        record_pool("pool_empty_test", &[], &[WorkerReport::default()]);
        let snapshot = registry.snapshot();
        assert!(!snapshot
            .spans
            .contains_key("parallel/pool_empty_test/chunk"));
    }
}
