//! Checkpoint-verified artifact loading for the query path.
//!
//! The server boots from a checkpoint directory written by
//! `wikistale experiment --checkpoint-dir <dir>`: the manifest binds the
//! directory to the exact configuration fingerprint that produced it,
//! and [`CheckpointManifest::verified_stage_bytes`] re-checks the CRC-32
//! and length of the `filter` stage artifact before a single byte is
//! decoded. Decoding failures surface the binio-v2
//! `Truncated{section,need,got}` detail verbatim — a clear, classified
//! error (exit code 4 at the CLI), never a panic.
//!
//! Trained predictors are rebuilt from the verified filtered cube at
//! startup (training is deterministic, so the model is exactly the one
//! the batch evaluation used). The **generation** string — FNV-1a over
//! the manifest's config fingerprint, the artifact CRC/length, and the
//! training config — keys the response cache: re-training with a
//! different configuration or corpus changes it, so stale cached
//! responses can never be served across a model swap.

use std::path::Path;

use wikistale_core::checkpoint::{self, CheckpointError, CheckpointManifest};
use wikistale_core::experiment::{ExperimentConfig, TrainedPredictors};
use wikistale_core::predictor::EvalData;
use wikistale_core::scoring::Scorer;
use wikistale_core::split::EvalSplit;
use wikistale_wikicube::{binio, ChangeCube, CubeIndex, DateRange};

/// Why the artifact set could not be loaded. Mirrors the CLI's
/// classified exit codes: `Io` → 3, `Corrupt` → 4.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem trouble or a missing artifact/manifest.
    Io(String),
    /// The manifest or artifact bytes fail verification (bad JSON, CRC
    /// mismatch, truncated binio section, …).
    Corrupt(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(why) => write!(f, "artifact i/o error: {why}"),
            ArtifactError::Corrupt(why) => write!(f, "corrupt artifacts: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<CheckpointError> for ArtifactError {
    fn from(e: CheckpointError) -> ArtifactError {
        match e {
            CheckpointError::Io(io) => ArtifactError::Io(io.to_string()),
            other => ArtifactError::Corrupt(other.to_string()),
        }
    }
}

/// Everything the server owns for one model generation.
pub struct ServeArtifacts {
    filtered: ChangeCube,
    index: CubeIndex,
    trained: TrainedPredictors,
    /// The checkpoint's config fingerprint (from the manifest).
    pub fingerprint: String,
    /// Cache generation: fingerprint ⊕ artifact checksum ⊕ training
    /// config. Keys every cached response.
    pub generation: String,
    /// The range whose tumbling windows `/v1/score` indices refer to.
    pub eval_range: DateRange,
}

impl std::fmt::Debug for ServeArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeArtifacts")
            .field("fingerprint", &self.fingerprint)
            .field("generation", &self.generation)
            .field("eval_range", &self.eval_range)
            .finish_non_exhaustive()
    }
}

impl ServeArtifacts {
    /// Load and verify the artifact set in `dir`, then train the
    /// predictors on it.
    ///
    /// The evaluation range mirrors the batch protocol: the test year of
    /// the standard split when the corpus spans enough history (training
    /// on train + validation), else the full span (trained on all of
    /// it — a degenerate fallback for tiny corpora, documented as such).
    pub fn load(dir: &Path, config: &ExperimentConfig) -> Result<ServeArtifacts, ArtifactError> {
        let manifest = CheckpointManifest::load(dir)?.ok_or_else(|| {
            ArtifactError::Io(format!(
                "no checkpoint manifest in {} — run \
                 `wikistale experiment --checkpoint-dir {}` first",
                dir.display(),
                dir.display()
            ))
        })?;
        let stage = manifest.stage("filter").ok_or_else(|| {
            ArtifactError::Io(format!(
                "checkpoint in {} has no completed 'filter' stage — \
                 rerun the experiment to completion",
                dir.display()
            ))
        })?;
        let (crc32, len) = (stage.crc32, stage.len);
        let bytes = manifest
            .verified_stage_bytes(dir, "filter")?
            .ok_or_else(|| {
                ArtifactError::Io(format!(
                    "filter stage artifact missing from {}",
                    dir.display()
                ))
            })?;
        let filtered = binio::decode(&bytes)
            .map_err(|e| ArtifactError::Corrupt(format!("filter stage artifact: {e}")))?;

        let span = filtered.time_span().ok_or_else(|| {
            ArtifactError::Corrupt("filtered cube is empty — nothing to serve".into())
        })?;
        let (train_range, eval_range) = match EvalSplit::for_span(span) {
            Some(split) => (split.train_and_validation(), split.test),
            None => (span, span),
        };
        let index = CubeIndex::build(&filtered);
        let trained = {
            let data = EvalData::new(&filtered, &index);
            TrainedPredictors::train(&data, train_range, config)
        };
        let generation = checkpoint::fingerprint(&format!(
            "{}|crc32={crc32:08x}|len={len}|{config:?}",
            manifest.fingerprint
        ));
        Ok(ServeArtifacts {
            filtered,
            index,
            trained,
            fingerprint: manifest.fingerprint,
            generation,
            eval_range,
        })
    }

    /// The cube + index being served.
    pub fn data(&self) -> EvalData<'_> {
        EvalData::new(&self.filtered, &self.index)
    }

    /// A scorer over this generation's predictors and eval range.
    pub fn scorer(&self) -> Scorer<'_> {
        Scorer::new(self.data(), &self.trained, self.eval_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_core::filters::FilterPipeline;
    use wikistale_synth::{generate, SynthConfig};

    fn write_checkpoint(dir: &Path) -> CheckpointManifest {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let bytes = binio::encode(&filtered);
        std::fs::create_dir_all(dir).unwrap();
        binio::write_bytes_atomic(&dir.join("filter.wcube"), &bytes).unwrap();
        let mut manifest = CheckpointManifest::new("testfp");
        manifest.record_stage("filter", "filter.wcube", &bytes);
        manifest.save(dir).unwrap();
        manifest
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wikistale-serve-artifacts-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_verified_checkpoint_and_scores() {
        let dir = tmpdir("ok");
        write_checkpoint(&dir);
        let artifacts = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
        assert_eq!(artifacts.fingerprint, "testfp");
        assert!(!artifacts.generation.is_empty());
        // The tiny corpus spans > 2 years, so the split applies and the
        // eval range is the last year.
        assert_eq!(artifacts.eval_range.len_days(), 365);
        let scorer = artifacts.scorer();
        let sets = scorer.predict(7);
        assert!(sets.or.num_windows() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_tracks_config_and_bytes() {
        let dir = tmpdir("gen");
        write_checkpoint(&dir);
        let a = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
        let b = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
        assert_eq!(a.generation, b.generation, "same inputs, same generation");
        let mut config = ExperimentConfig::default();
        config.threshold_baseline.threshold = 0.5;
        let c = ServeArtifacts::load(&dir, &config).unwrap();
        assert_ne!(a.generation, c.generation, "config change must rotate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_io() {
        let dir = tmpdir("missing");
        let err = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap_err();
        assert!(matches!(err, ArtifactError::Io(_)), "{err}");
        assert!(err.to_string().contains("no checkpoint manifest"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_precise_not_a_panic() {
        // Flipped byte: CRC mismatch from the checkpoint layer.
        let dir = tmpdir("flip");
        write_checkpoint(&dir);
        let path = dir.join("filter.wcube");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap_err();
        assert!(matches!(err, ArtifactError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("CRC-32"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);

        // Truncated artifact with a doctored manifest: the length check
        // in the manifest catches it first; when the manifest is
        // regenerated over the truncated bytes, binio's own
        // Truncated{section,need,got} detail must surface.
        let dir = tmpdir("trunc");
        write_checkpoint(&dir);
        let path = dir.join("filter.wcube");
        let bytes = std::fs::read(&path).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        std::fs::write(&path, cut).unwrap();
        let err = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap_err();
        assert!(matches!(err, ArtifactError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("bytes"), "{err}");

        let mut manifest = CheckpointManifest::new("testfp");
        manifest.record_stage("filter", "filter.wcube", cut);
        manifest.save(&dir).unwrap();
        let err = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap_err();
        assert!(matches!(err, ArtifactError::Corrupt(_)), "{err}");
        assert!(
            err.to_string().contains("truncated") || err.to_string().contains("need"),
            "binio truncation detail lost: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
