//! `wikistale-serve` — a zero-dependency staleness query server.
//!
//! Serves the trained staleness models over HTTP/1.1 on a plain
//! [`std::net::TcpListener`] — no async runtime, no HTTP crate, nothing
//! beyond `std` — answering:
//!
//! * `GET /healthz` — liveness plus the served artifact generation.
//! * `GET /metrics` — the live [`wikistale_obs`] registry (JSON or table).
//! * `GET /v1/stale/{page}?at=YYYY-MM-DD&window=N` — fields on a page
//!   flagged as possibly stale in the window ending at `at`, each with
//!   its provenance from [`wikistale_core::explain`].
//! * `POST /v1/score` — batch `(entity, property, window)` triples
//!   through the trained predictors and OR/AND ensembles.
//!
//! Layering, bottom to top:
//!
//! * [`artifacts`] — loads binio-v2 artifacts from a checkpoint
//!   directory, CRC-verified through `core::checkpoint`, and trains the
//!   predictors once at startup. Derives the cache **generation**.
//! * [`http`] — minimal, strict HTTP/1.1 request parsing and
//!   deterministic response serialization (no `Date` header: response
//!   bytes are a pure function of request + generation).
//! * [`cache`] — sharded LRU over rendered responses, keyed by
//!   generation so re-trained artifacts invalidate implicitly.
//! * [`routes`] — socket-free request → response dispatch; the unit of
//!   differential testing against the batch pipeline.
//! * [`server`] — the accept loop: bounded admission through
//!   [`wikistale_exec::service::ServicePool`] (sheds 503 +
//!   `Retry-After` when the queue is full), per-request deadlines
//!   (504), graceful drain on shutdown.
//! * [`loadgen`] — deterministic loopback load harness producing the
//!   p50/p95/p99 + shed-rate numbers in `BENCH_serve.json`.

pub mod artifacts;
pub mod cache;
pub mod http;
pub mod loadgen;
pub mod routes;
pub mod server;
#[cfg(test)]
pub(crate) mod testutil;

pub use artifacts::{ArtifactError, ServeArtifacts};
pub use cache::ResponseCache;
pub use loadgen::{LoadConfig, LoadReport};
pub use routes::{App, MetricsFormat};
pub use server::{Server, ServerConfig};
