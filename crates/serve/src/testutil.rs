//! Shared helpers for the in-crate test suites: tiny trained artifact
//! sets and a bare-bones blocking HTTP client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::artifacts::ServeArtifacts;
use wikistale_core::checkpoint::CheckpointManifest;
use wikistale_core::experiment::ExperimentConfig;
use wikistale_core::filters::FilterPipeline;
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::binio;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// Generate a tiny synthetic corpus, checkpoint it, load it back through
/// the verified path, and clean up the directory.
pub fn tiny_artifacts() -> ServeArtifacts {
    let dir = std::env::temp_dir().join(format!(
        "wikistale-serve-testutil-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let bytes = binio::encode(&filtered);
    binio::write_bytes_atomic(&dir.join("filter.wcube"), &bytes).unwrap();
    let mut manifest = CheckpointManifest::new("testutilfp");
    manifest.record_stage("filter", "filter.wcube", &bytes);
    manifest.save(&dir).unwrap();
    let artifacts = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    artifacts
}

/// Send raw request bytes, read the whole response, return
/// `(status, full response text)`.
pub fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, text)
}

/// `GET target` against `addr`.
pub fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// `POST target` with a JSON `body` against `addr`.
pub fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    raw_request(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The body of a response (after the blank line).
pub fn body_of(response: &str) -> &str {
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body,
        None => "",
    }
}
