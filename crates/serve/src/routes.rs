//! Route dispatch and JSON rendering — the socket-free application
//! core.
//!
//! [`App::handle`] maps a parsed [`Request`] to a [`Response`] with no
//! I/O beyond the in-memory caches, so the route surface is unit-tested
//! (and differential-tested against the batch predictor) without a
//! single TCP connection. The server glue in [`crate::server`] only
//! frames bytes and schedules calls into this module.
//!
//! Determinism contract: for a fixed artifact generation, every route's
//! response bytes are a pure function of the request — no timestamps,
//! no map iteration order (rendering walks sorted structures), no
//! thread-count dependence. `/metrics` is the one deliberate exception
//! (it reports live counters) and is excluded from the differential
//! contract.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::artifacts::ServeArtifacts;
use crate::cache::ResponseCache;
use crate::http::{Request, Response};
use wikistale_core::explain::{Explanation, Reason};
use wikistale_core::scoring::{PredictedSets, ScoreQuery};
use wikistale_obs::json::{self, Value};
use wikistale_obs::MetricsRegistry;
use wikistale_wikicube::{Date, DateRange};

/// Default `/metrics` rendering when the request has no `format=` param.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Machine-readable JSON (the default).
    Json,
    /// Human-readable aligned table.
    Table,
}

impl MetricsFormat {
    /// Parse a `--metrics-format` / `format=` value.
    pub fn parse(text: &str) -> Option<MetricsFormat> {
        match text {
            "json" => Some(MetricsFormat::Json),
            "table" => Some(MetricsFormat::Table),
            _ => None,
        }
    }
}

/// Upper bound for `delay_ms` on `/healthz` — a load-testing aid, not a
/// denial-of-service lever.
const MAX_DELAY_MS: u64 = 5_000;

/// The application: owns the artifact generation, the response cache,
/// and the per-granularity prediction sets.
pub struct App {
    artifacts: Arc<ServeArtifacts>,
    cache: ResponseCache,
    /// Full-range prediction sets per granularity, computed on first
    /// use through the same `scoring::predict_all` path as the batch
    /// evaluation. Bounded: only the paper granularities are admitted.
    sets: Mutex<BTreeMap<u32, Arc<PredictedSets>>>,
    metrics_format: MetricsFormat,
}

impl App {
    /// An app serving `artifacts` with a response cache of
    /// `cache_entries` entries.
    pub fn new(
        artifacts: Arc<ServeArtifacts>,
        cache_entries: usize,
        metrics_format: MetricsFormat,
    ) -> App {
        App {
            artifacts,
            cache: ResponseCache::new(cache_entries),
            sets: Mutex::new(BTreeMap::new()),
            metrics_format,
        }
    }

    /// The served artifact generation.
    pub fn artifacts(&self) -> &ServeArtifacts {
        &self.artifacts
    }

    /// Dispatch one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.segments.iter().map(String::as_str).collect();
        let (route, response) = match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => ("healthz", self.healthz(req)),
            ("GET", ["metrics"]) => ("metrics", self.metrics(req)),
            ("GET", ["v1", "stale", page]) => ("v1/stale", self.stale(req, page)),
            ("POST", ["v1", "score"]) => ("v1/score", self.score(req)),
            ("GET", ["v1", "score"])
            | ("POST", ["healthz" | "metrics"])
            | ("POST", ["v1", "stale", _]) => (
                "method",
                Response::error(405, "wrong method for this route"),
            ),
            _ => (
                "unknown",
                Response::error(404, &format!("no route for {}", req.raw_path)),
            ),
        };
        let metrics = MetricsRegistry::global();
        metrics.counter(&format!("serve/requests/{route}")).incr();
        metrics
            .counter(&format!("serve/responses/{}", response.status))
            .incr();
        response
    }

    fn healthz(&self, req: &Request) -> Response {
        if let Some(delay) = req.query_param("delay_ms") {
            match delay.parse::<u64>() {
                Ok(ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms.min(MAX_DELAY_MS)))
                }
                Err(_) => return Response::error(400, "delay_ms must be an integer"),
            }
        }
        Response::json(
            200,
            format!(
                "{{\"status\": \"ok\", \"fingerprint\": {}, \"generation\": {}, \
                 \"eval_range\": {}}}\n",
                json::escape(&self.artifacts.fingerprint),
                json::escape(&self.artifacts.generation),
                render_range(self.artifacts.eval_range),
            ),
        )
    }

    fn metrics(&self, req: &Request) -> Response {
        let format = match req.query_param("format") {
            None => self.metrics_format,
            Some(text) => match MetricsFormat::parse(text) {
                Some(f) => f,
                None => return Response::error(400, "format must be 'json' or 'table'"),
            },
        };
        let registry = MetricsRegistry::global();
        match format {
            MetricsFormat::Json => Response::json(200, registry.render_json()),
            MetricsFormat::Table => Response::text(200, registry.render_table()),
        }
    }

    fn stale(&self, req: &Request, page_title: &str) -> Response {
        let artifacts = &self.artifacts;
        let span_end = artifacts.eval_range.end();
        let at = match req.query_param("at") {
            None => span_end,
            Some(text) => match text.parse::<Date>() {
                Ok(date) => date,
                Err(e) => return Response::error(400, &format!("bad 'at' date: {e}")),
            },
        };
        let window_days = match req.query_param("window") {
            None => 7i64,
            Some(text) => match text.parse::<i64>() {
                Ok(days) if (1..=365).contains(&days) => days,
                Ok(days) => {
                    return Response::error(400, &format!("window of {days} days out of 1..=365"))
                }
                Err(e) => return Response::error(400, &format!("bad 'window': {e}")),
            },
        };

        // Cache key: generation ⊕ the canonicalized query. A re-trained
        // artifact set changes the generation and thus misses.
        let key = format!(
            "{}|stale|{page_title}|{at}|{window_days}",
            artifacts.generation
        );
        if let Some(body) = self.cache.get(&key) {
            return Response::json(200, body.as_ref().clone());
        }

        let cube = artifacts.data().cube;
        let Some(page) = cube.page_id(page_title) else {
            return Response::error(404, &format!("unknown page {page_title:?}"));
        };
        let window = DateRange::new(at.plus_days(-(window_days as i32)), at);
        let flags = artifacts.scorer().page_flags(page, window);
        let body = render_stale_response(artifacts, page_title, window, &flags);
        self.cache.insert(&key, Arc::new(body.clone().into_bytes()));
        Response::json(200, body)
    }

    fn score(&self, req: &Request) -> Response {
        let body = String::from_utf8_lossy(&req.body);
        let parsed = match json::parse(&body) {
            Ok(value) => value,
            Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
        };
        let granularity = match parsed.get("granularity").and_then(Value::as_f64) {
            Some(g) if g.fract() == 0.0 && g > 0.0 => g as u32,
            _ => return Response::error(400, "body needs integer 'granularity'"),
        };
        if !wikistale_core::GRANULARITIES.contains(&granularity) {
            return Response::error(
                400,
                &format!(
                    "granularity {granularity} unsupported (use one of {:?})",
                    wikistale_core::GRANULARITIES
                ),
            );
        }
        let Some(triples) = parsed.get("triples").and_then(Value::as_array) else {
            return Response::error(400, "body needs a 'triples' array");
        };
        let mut queries = Vec::with_capacity(triples.len());
        for (i, triple) in triples.iter().enumerate() {
            let entity = triple.get("entity").and_then(Value::as_str);
            let property = triple.get("property").and_then(Value::as_str);
            let window = triple.get("window").and_then(Value::as_f64);
            match (entity, property, window) {
                (Some(e), Some(p), Some(w)) if w.fract() == 0.0 && w >= 0.0 => {
                    queries.push(ScoreQuery {
                        entity: e.to_string(),
                        property: p.to_string(),
                        window: w as u32,
                    });
                }
                _ => {
                    return Response::error(
                        400,
                        &format!(
                            "triple {i} needs string 'entity'/'property' and \
                             a non-negative integer 'window'"
                        ),
                    )
                }
            }
        }

        let sets = self.sets_for(granularity);
        match render_score_response(&self.artifacts, &sets, granularity, &queries) {
            Ok(body) => Response::json(200, body),
            Err(message) => Response::error(400, &message),
        }
    }

    /// The full-range prediction sets for `granularity`, computed once
    /// per generation through the shared batch code path. The lock is
    /// held across the first computation on purpose: concurrent first
    /// requests must not duplicate the sweep.
    pub fn sets_for(&self, granularity: u32) -> Arc<PredictedSets> {
        let mut sets = self.sets.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(sets.entry(granularity).or_insert_with(|| {
            MetricsRegistry::global()
                .counter("serve/sets_computed")
                .incr();
            Arc::new(self.artifacts.scorer().predict(granularity))
        }))
    }
}

fn render_range(range: DateRange) -> String {
    format!(
        "{{\"start\": \"{}\", \"end\": \"{}\"}}",
        range.start(),
        range.end()
    )
}

fn render_days(days: &[Date]) -> String {
    let mut out = String::from("[");
    for (i, day) in days.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&day.to_string());
        out.push('"');
    }
    out.push(']');
    out
}

/// Render the `/v1/stale/{page}` body. Public so the end-to-end suite
/// can render the expected bytes straight from the batch-side API.
pub fn render_stale_response(
    artifacts: &ServeArtifacts,
    page_title: &str,
    window: DateRange,
    flags: &[Explanation],
) -> String {
    let cube = artifacts.data().cube;
    let mut out = format!(
        "{{\n  \"fingerprint\": {},\n  \"generation\": {},\n  \"page\": {},\n  \
         \"window\": {},\n  \"flags\": [",
        json::escape(&artifacts.fingerprint),
        json::escape(&artifacts.generation),
        json::escape(page_title),
        render_range(window),
    );
    for (i, flag) in flags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"entity\": {}, \"property\": {}, \"reasons\": [",
            json::escape(cube.entity_name(flag.field.entity)),
            json::escape(cube.property_name(flag.field.property)),
        ));
        for (j, reason) in flag.reasons.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            out.push_str(&match reason {
                Reason::CorrelatedPartnerChanged { partner, days } => format!(
                    "{{\"kind\": \"correlated_partner_changed\", \"partner\": {}, \
                     \"days\": {}}}",
                    json::escape(cube.property_name(partner.property)),
                    render_days(days),
                ),
                Reason::RuleFired {
                    trigger,
                    days,
                    confidence,
                    validation_precision,
                } => format!(
                    "{{\"kind\": \"rule_fired\", \"trigger\": {}, \"days\": {}, \
                     \"confidence\": {}, \"validation_precision\": {}}}",
                    json::escape(cube.property_name(trigger.property)),
                    render_days(days),
                    json::number(*confidence),
                    match validation_precision {
                        Some(p) => json::number(*p),
                        None => "null".to_string(),
                    },
                ),
                Reason::AnnualRecurrence { hits, observable } => format!(
                    "{{\"kind\": \"annual_recurrence\", \"hits\": {hits}, \
                     \"observable\": {observable}}}"
                ),
            });
        }
        if !flag.reasons.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]}");
    }
    if !flags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render the `/v1/score` body by membership lookup in `sets`. Public
/// so the end-to-end suite can render the expected bytes from the batch
/// prediction sets and compare byte-for-byte with the served response.
pub fn render_score_response(
    artifacts: &ServeArtifacts,
    sets: &PredictedSets,
    granularity: u32,
    queries: &[ScoreQuery],
) -> Result<String, String> {
    let scorer = artifacts.scorer();
    let mut out = format!(
        "{{\n  \"generation\": {},\n  \"granularity\": {granularity},\n  \
         \"num_windows\": {},\n  \"results\": [",
        json::escape(&artifacts.generation),
        sets.or.num_windows(),
    );
    for (i, query) in queries.iter().enumerate() {
        let score = scorer
            .score_triple(sets, query)
            .map_err(|e| format!("triple {i}: {e}"))?;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"entity\": {}, \"property\": {}, \"window\": {}, \
             \"window_start\": \"{}\", \"field_correlations\": {}, \
             \"association_rules\": {}, \"mean_baseline\": {}, \
             \"threshold_baseline\": {}, \"and_ensemble\": {}, \"or_ensemble\": {}}}",
            json::escape(&query.entity),
            json::escape(&query.property),
            query.window,
            score.window_start,
            score.field_correlations,
            score.association_rules,
            score.mean_baseline,
            score.threshold_baseline,
            score.and_ensemble,
            score.or_ensemble,
        ));
    }
    if !queries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;
    use std::io::BufReader;
    use wikistale_core::checkpoint::CheckpointManifest;
    use wikistale_core::experiment::ExperimentConfig;
    use wikistale_core::filters::FilterPipeline;
    use wikistale_synth::{generate, SynthConfig};
    use wikistale_wikicube::binio;

    fn test_app() -> App {
        let dir = std::env::temp_dir().join(format!(
            "wikistale-serve-routes-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let bytes = binio::encode(&filtered);
        binio::write_bytes_atomic(&dir.join("filter.wcube"), &bytes).unwrap();
        let mut manifest = CheckpointManifest::new("routesfp");
        manifest.record_stage("filter", "filter.wcube", &bytes);
        manifest.save(&dir).unwrap();
        let artifacts = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        App::new(Arc::new(artifacts), 256, MetricsFormat::Json)
    }

    fn get(app: &App, target: &str) -> Response {
        let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n");
        let req = parse_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        app.handle(&req)
    }

    fn post(app: &App, target: &str, body: &str) -> Response {
        let raw = format!(
            "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        app.handle(&req)
    }

    #[test]
    fn healthz_reports_generation() {
        let app = test_app();
        let resp = get(&app, "/healthz");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        json::validate(&body).unwrap();
        assert!(body.contains("routesfp"));
        assert!(body.contains(&app.artifacts().generation));
    }

    #[test]
    fn unknown_routes_and_methods() {
        let app = test_app();
        assert_eq!(get(&app, "/nope").status, 404);
        assert_eq!(get(&app, "/v1/score").status, 405);
        assert_eq!(post(&app, "/healthz", "").status, 405);
        assert_eq!(post(&app, "/v1/stale/x", "").status, 405);
    }

    #[test]
    fn stale_route_serves_and_caches() {
        let app = test_app();
        let registry = MetricsRegistry::global();
        let hits_before = registry.counter("serve/cache/hit").get();
        // Pick a real page title.
        let title = app
            .artifacts()
            .data()
            .cube
            .page_title(wikistale_wikicube::PageId(0))
            .to_string();
        let encoded = title.replace(' ', "%20");
        let first = get(&app, &format!("/v1/stale/{encoded}?window=7"));
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        let body = String::from_utf8(first.body.clone()).unwrap();
        json::validate(&body).unwrap();
        assert!(body.contains(&format!("\"page\": {}", json::escape(&title))));
        // Second identical request: cache hit, identical bytes.
        let second = get(&app, &format!("/v1/stale/{encoded}?window=7"));
        assert_eq!(second.body, first.body);
        assert!(registry.counter("serve/cache/hit").get() > hits_before);
        // Unknown page is a 404, not a panic.
        assert_eq!(get(&app, "/v1/stale/No%20Such%20Page").status, 404);
        // Bad parameters are 400s.
        assert_eq!(get(&app, "/v1/stale/x?at=not-a-date").status, 400);
        // Signed date components are a 400, not silently accepted
        // (Date::from_str used to tolerate `+2019-+06-+01`).
        assert_eq!(get(&app, "/v1/stale/x?at=%2B2019-%2B06-%2B01").status, 400);
        assert_eq!(get(&app, "/v1/stale/x?window=0").status, 400);
        assert_eq!(get(&app, "/v1/stale/x?window=9999").status, 400);
    }

    #[test]
    fn score_route_matches_batch_membership() {
        let app = test_app();
        let sets = app.sets_for(7);
        let index = app.artifacts().data().index;
        let cube = app.artifacts().data().cube;
        // Use the first OR positive and one certain negative.
        let &(pos, w) = sets.or.items().first().expect("OR positives exist");
        let field = index.field(pos as usize);
        let entity = cube.entity_name(field.entity);
        let property = cube.property_name(field.property);
        let body = format!(
            "{{\"granularity\": 7, \"triples\": [\
             {{\"entity\": {}, \"property\": {}, \"window\": {w}}}]}}",
            json::escape(entity),
            json::escape(property),
        );
        let resp = post(&app, "/v1/score", &body);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let text = String::from_utf8(resp.body).unwrap();
        json::validate(&text).unwrap();
        assert!(text.contains("\"or_ensemble\": true"));
        // The response must equal the directly rendered batch bytes.
        let expected = render_score_response(
            app.artifacts(),
            &sets,
            7,
            &[ScoreQuery {
                entity: entity.to_string(),
                property: property.to_string(),
                window: w,
            }],
        )
        .unwrap();
        assert_eq!(text, expected);
    }

    #[test]
    fn score_route_rejects_bad_bodies() {
        let app = test_app();
        assert_eq!(post(&app, "/v1/score", "not json").status, 400);
        assert_eq!(post(&app, "/v1/score", "{}").status, 400);
        assert_eq!(
            post(&app, "/v1/score", "{\"granularity\": 3, \"triples\": []}").status,
            400,
            "non-paper granularity rejected"
        );
        assert_eq!(
            post(&app, "/v1/score", "{\"granularity\": 7, \"triples\": [{}]}").status,
            400
        );
        let unknown = post(
            &app,
            "/v1/score",
            "{\"granularity\": 7, \"triples\": [\
             {\"entity\": \"ghost\", \"property\": \"ghost\", \"window\": 0}]}",
        );
        assert_eq!(unknown.status, 400);
        assert!(String::from_utf8_lossy(&unknown.body).contains("unknown entity"));
    }

    #[test]
    fn metrics_route_renders_both_formats() {
        let app = test_app();
        MetricsRegistry::global()
            .counter("serve/test_marker")
            .incr();
        let as_json = get(&app, "/metrics");
        assert_eq!(as_json.status, 200);
        json::validate(&String::from_utf8(as_json.body).unwrap()).unwrap();
        let as_table = get(&app, "/metrics?format=table");
        assert_eq!(as_table.status, 200);
        assert_eq!(as_table.content_type, "text/plain; charset=utf-8");
        assert_eq!(get(&app, "/metrics?format=xml").status, 400);
    }
}
