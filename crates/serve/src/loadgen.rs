//! Deterministic loopback load harness.
//!
//! Drives a running server with a seeded request mix — roughly 50%
//! `/v1/stale`, 30% `/v1/score`, 20% `/healthz` — built from the *real*
//! page titles and tracked fields of the served corpus, so every request
//! exercises the hot path rather than a 404 branch. The plan is a pure
//! function of `(artifacts, seed, work_ms)`: two runs with the same seed
//! issue byte-identical requests in the same per-connection order, which
//! is what makes the committed `BENCH_serve.json` numbers reproducible.
//!
//! Connections are the unit of concurrency: `connections` client
//! threads each send `requests` sequential one-shot requests (connect,
//! send, read to EOF — the server always closes). Latency is measured
//! per request and percentiles are exact (sorted raw samples, no
//! histogram approximation — the harness is offline, it can afford it).
//! `work_ms > 0` attaches `delay_ms` to the `/healthz` requests in the
//! mix, inflating service time to push the server into admission
//! shedding — the knob behind the non-zero 503 row in the bench table.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use crate::artifacts::ServeArtifacts;
use wikistale_obs::json;

/// Load run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads (floored at 1).
    pub connections: usize,
    /// Sequential requests per connection (floored at 1).
    pub requests: usize,
    /// Mix seed; same seed, same request plan.
    pub seed: u64,
    /// `delay_ms` attached to healthz requests (0 = none) to inflate
    /// service time and induce shedding.
    pub work_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            connections: 8,
            requests: 50,
            seed: 42,
            work_ms: 0,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued.
    pub total: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 503 admission sheds.
    pub shed_503: u64,
    /// 504 deadline misses.
    pub deadline_504: u64,
    /// Everything else: other statuses, connect/read failures.
    pub errors: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub wall_ms: u64,
    /// Completed requests per second.
    pub rps: f64,
    /// Exact latency percentiles over all requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest request, milliseconds.
    pub max_ms: f64,
    /// `shed_503 / total`.
    pub shed_rate: f64,
}

impl LoadReport {
    /// Render as a stable-keyed JSON object (the `BENCH_serve.json`
    /// payload, modulo the config echo the CLI adds).
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"total\": {},\n  \"ok\": {},\n  \"shed_503\": {},\n  \
             \"deadline_504\": {},\n  \"errors\": {},\n  \"wall_ms\": {},\n  \
             \"rps\": {},\n  \"p50_ms\": {},\n  \"p95_ms\": {},\n  \
             \"p99_ms\": {},\n  \"max_ms\": {},\n  \"shed_rate\": {}\n}}\n",
            self.total,
            self.ok,
            self.shed_503,
            self.deadline_504,
            self.errors,
            self.wall_ms,
            json::number(self.rps),
            json::number(self.p50_ms),
            json::number(self.p95_ms),
            json::number(self.p99_ms),
            json::number(self.max_ms),
            json::number(self.shed_rate),
        )
    }
}

/// xorshift64 — tiny, seedable, good enough for a request mix.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, stream: u64) -> Rng {
        // Split streams far apart; xorshift needs a nonzero state.
        Rng((seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Percent-encode a path segment (everything but unreserved bytes).
pub(crate) fn encode_segment(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for b in text.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The raw request bytes one connection will send, in order. Pure in
/// `(artifacts, seed, stream, work_ms, n)`.
fn plan_connection(
    artifacts: &ServeArtifacts,
    seed: u64,
    stream: u64,
    work_ms: u64,
    n: usize,
) -> Vec<Vec<u8>> {
    let data = artifacts.data();
    let cube = data.cube;
    let index = data.index;
    let num_pages = cube.num_pages() as u64;
    let num_fields = index.num_fields() as u64;
    let num_windows = u64::from(artifacts.eval_range.len_days() / 7).max(1);
    let mut rng = Rng::new(seed, stream);
    let mut plan = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.next() % 10;
        let raw = if roll < 5 && num_pages > 0 {
            let page = wikistale_wikicube::PageId((rng.next() % num_pages) as u32);
            let title = encode_segment(cube.page_title(page));
            let window = if rng.next().is_multiple_of(2) { 7 } else { 30 };
            format!(
                "GET /v1/stale/{title}?window={window} HTTP/1.1\r\n\
                 Host: loadgen\r\nConnection: close\r\n\r\n"
            )
        } else if roll < 8 && num_fields > 0 {
            let mut triples = String::new();
            for i in 0..1 + (rng.next() % 3) {
                if i > 0 {
                    triples.push_str(", ");
                }
                let field = index.field((rng.next() % num_fields) as usize);
                triples.push_str(&format!(
                    "{{\"entity\": {}, \"property\": {}, \"window\": {}}}",
                    json::escape(cube.entity_name(field.entity)),
                    json::escape(cube.property_name(field.property)),
                    rng.next() % num_windows,
                ));
            }
            let body = format!("{{\"granularity\": 7, \"triples\": [{triples}]}}");
            format!(
                "POST /v1/score HTTP/1.1\r\nHost: loadgen\r\n\
                 Content-Type: application/json\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
        } else {
            let delay = if work_ms > 0 {
                format!("?delay_ms={work_ms}")
            } else {
                String::new()
            };
            format!("GET /healthz{delay} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")
        };
        plan.push(raw.into_bytes());
    }
    plan
}

/// One request: connect, send, read to EOF, classify. Returns
/// `(status, latency_micros)`; status 0 means a transport error.
fn issue(addr: SocketAddr, raw: &[u8]) -> (u16, u64) {
    let started = Instant::now();
    let status = (|| -> std::io::Result<u16> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(raw)?;
        let mut response = Vec::new();
        stream.read_to_end(&mut response)?;
        let text = String::from_utf8_lossy(&response);
        Ok(text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0))
    })()
    .unwrap_or(0);
    (status, started.elapsed().as_micros() as u64)
}

/// Exact percentile over sorted `samples` (micros → ms).
fn percentile_ms(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1_000.0
}

/// Run the full load plan against `addr` and summarize.
pub fn run(addr: SocketAddr, artifacts: &ServeArtifacts, config: &LoadConfig) -> LoadReport {
    let connections = config.connections.max(1);
    let requests = config.requests.max(1);
    let started = Instant::now();
    let mut per_thread: Vec<(u64, u64, u64, u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|stream| {
                let plan = plan_connection(
                    artifacts,
                    config.seed,
                    stream as u64,
                    config.work_ms,
                    requests,
                );
                scope.spawn(move || {
                    let (mut ok, mut shed, mut late, mut errors) = (0u64, 0u64, 0u64, 0u64);
                    let mut latencies = Vec::with_capacity(plan.len());
                    for raw in &plan {
                        let (status, micros) = issue(addr, raw);
                        latencies.push(micros);
                        match status {
                            200..=299 => ok += 1,
                            503 => shed += 1,
                            504 => late += 1,
                            _ => errors += 1,
                        }
                    }
                    (ok, shed, late, errors, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // A panicked client thread loses its latency samples; its
                // whole plan is charged to the error bucket instead of
                // taking the harness (and the report) down with it.
                h.join()
                    .unwrap_or_else(|_| (0, 0, 0, requests as u64, Vec::new()))
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies = Vec::with_capacity(connections * requests);
    let (mut ok, mut shed, mut late, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for (o, s, l, e, mut lats) in per_thread.drain(..) {
        ok += o;
        shed += s;
        late += l;
        errors += e;
        latencies.append(&mut lats);
    }
    latencies.sort_unstable();
    let total = (connections * requests) as u64;
    let wall_secs = wall.as_secs_f64().max(1e-9);
    LoadReport {
        total,
        ok,
        shed_503: shed,
        deadline_504: late,
        errors,
        wall_ms: wall.as_millis() as u64,
        rps: total as f64 / wall_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p95_ms: percentile_ms(&latencies, 0.95),
        p99_ms: percentile_ms(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0) as f64 / 1_000.0,
        shed_rate: shed as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::MetricsFormat;
    use crate::server::{Server, ServerConfig};
    use crate::testutil;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn plan_is_deterministic_in_the_seed() {
        let artifacts = testutil::tiny_artifacts();
        let a = plan_connection(&artifacts, 7, 0, 0, 20);
        let b = plan_connection(&artifacts, 7, 0, 0, 20);
        assert_eq!(a, b, "same seed, same plan");
        let c = plan_connection(&artifacts, 8, 0, 0, 20);
        assert_ne!(a, c, "different seed, different plan");
        let d = plan_connection(&artifacts, 7, 1, 0, 20);
        assert_ne!(a, d, "different stream, different plan");
        // The mix holds all three request kinds over a long plan.
        let long: Vec<String> = plan_connection(&artifacts, 7, 0, 25, 100)
            .into_iter()
            .map(|raw| String::from_utf8(raw).unwrap())
            .collect();
        assert!(long.iter().any(|r| r.starts_with("GET /v1/stale/")));
        assert!(long.iter().any(|r| r.starts_with("POST /v1/score")));
        assert!(long
            .iter()
            .any(|r| r.starts_with("GET /healthz?delay_ms=25")));
    }

    #[test]
    fn report_renders_valid_json() {
        let report = LoadReport {
            total: 10,
            ok: 8,
            shed_503: 1,
            deadline_504: 0,
            errors: 1,
            wall_ms: 123,
            rps: 81.3,
            p50_ms: 1.5,
            p95_ms: 4.0,
            p99_ms: 9.25,
            max_ms: 12.0,
            shed_rate: 0.1,
        };
        let rendered = report.render_json();
        wikistale_obs::json::validate(&rendered).unwrap();
        assert!(rendered.contains("\"shed_503\": 1"));
    }

    #[test]
    fn drives_a_live_server_without_errors() {
        let artifacts = std::sync::Arc::new(testutil::tiny_artifacts());
        let server = Server::new(std::sync::Arc::clone(&artifacts), ServerConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server.spawn(listener).unwrap();
        let report = run(
            handle.addr(),
            &artifacts,
            &LoadConfig {
                connections: 4,
                requests: 8,
                seed: 1,
                work_ms: 0,
            },
        );
        handle.stop().unwrap();
        assert_eq!(report.total, 32);
        assert_eq!(
            report.ok + report.shed_503 + report.deadline_504 + report.errors,
            32
        );
        assert_eq!(report.errors, 0, "no transport/4xx errors expected");
        assert!(report.ok > 0);
        assert!(report.p50_ms <= report.p95_ms);
        assert!(report.p95_ms <= report.p99_ms);
        assert!(report.p99_ms <= report.max_ms);
    }

    #[test]
    fn induces_shedding_at_queue_limit_one() {
        let artifacts = std::sync::Arc::new(testutil::tiny_artifacts());
        let server = Server::new(
            std::sync::Arc::clone(&artifacts),
            ServerConfig {
                threads: 1,
                queue_limit: 1,
                deadline: Duration::from_millis(5_000),
                cache_entries: 0,
                metrics_format: MetricsFormat::Json,
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server.spawn(listener).unwrap();
        let report = run(
            handle.addr(),
            &artifacts,
            &LoadConfig {
                connections: 6,
                requests: 6,
                seed: 3,
                work_ms: 40,
            },
        );
        handle.stop().unwrap();
        assert!(
            report.shed_503 > 0,
            "expected 503 sheds at queue-limit 1, got report {report:?}"
        );
        assert!(report.shed_rate > 0.0);
    }
}
