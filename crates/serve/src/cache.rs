//! Sharded LRU cache for rendered per-page prediction responses.
//!
//! Keys are `"<generation>|<request key>"` strings where the generation
//! is derived from the checkpoint config fingerprint plus the artifact
//! checksum (see [`crate::artifacts`]): restarting the server on a
//! re-trained artifact set changes the generation, so every key from the
//! old model misses naturally — cache invalidation by construction, no
//! epoch bookkeeping.
//!
//! Sharding (FNV-1a of the key picks one of [`SHARDS`] independent
//! `Mutex<Shard>`s) keeps pool workers from serializing on one lock.
//! Each shard runs true LRU on its own slice of the capacity: hits
//! re-queue the key, inserts evict the shard's least-recent entry once
//! the shard is full. Hits and misses are counted under
//! `serve/cache/hit` and `serve/cache/miss`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};
use wikistale_obs::MetricsRegistry;

/// Number of independent shards.
pub const SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    map: HashMap<String, Arc<Vec<u8>>>,
    // Most-recent at the back. May hold stale duplicates for re-queued
    // keys; `map` membership is authoritative and eviction skips keys
    // whose queue entry is outdated.
    order: VecDeque<String>,
}

/// A sharded, bounded LRU mapping request keys to rendered response
/// bodies.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ResponseCache {
    /// A cache holding roughly `total_entries` across all shards
    /// (rounded up to at least one per shard). `total_entries == 0`
    /// disables caching: every lookup misses and nothing is stored.
    pub fn new(total_entries: usize) -> ResponseCache {
        let per_shard_capacity = if total_entries == 0 {
            0
        } else {
            total_entries.div_ceil(SHARDS)
        };
        ResponseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Look `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let metrics = MetricsRegistry::global();
        let mut shard = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match shard.map.get(key).cloned() {
            Some(body) => {
                shard.order.push_back(key.to_string());
                compact_if_bloated(&mut shard, self.per_shard_capacity);
                metrics.counter("serve/cache/hit").incr();
                Some(body)
            }
            None => {
                metrics.counter("serve/cache/miss").incr();
                None
            }
        }
    }

    /// Insert `body` under `key`, evicting the shard's least-recently
    /// used entries when over capacity.
    pub fn insert(&self, key: &str, body: Arc<Vec<u8>>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.map.insert(key.to_string(), body);
        shard.order.push_back(key.to_string());
        while shard.map.len() > self.per_shard_capacity {
            let Some(candidate) = shard.order.pop_front() else {
                break;
            };
            // A key re-queued since this entry was pushed is still
            // recent — only evict when this is its newest queue entry.
            if shard.order.iter().any(|k| k == &candidate) {
                continue;
            }
            shard.map.remove(&candidate);
            MetricsRegistry::global()
                .counter("serve/cache/evicted")
                .incr();
        }
        compact_if_bloated(&mut shard, self.per_shard_capacity);
    }

    /// Recency-queue entries across all shards (test hook: bounded by
    /// compaction even under a hit-heavy workload).
    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).order.len())
            .sum()
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hits re-queue keys without removing the old queue entry, so the
/// queue can outgrow the map under a hit-heavy workload. Once it passes
/// a small multiple of the capacity, rebuild it with one entry per live
/// key (newest wins) — amortized O(1) per operation.
fn compact_if_bloated(shard: &mut Shard, capacity: usize) {
    if shard.order.len() <= capacity.saturating_mul(8).max(64) {
        return;
    }
    let mut seen = std::collections::HashSet::with_capacity(shard.map.len());
    let mut kept = VecDeque::with_capacity(shard.map.len());
    for key in std::mem::take(&mut shard.order).into_iter().rev() {
        if shard.map.contains_key(&key) && seen.insert(key.clone()) {
            kept.push_front(key);
        }
    }
    shard.order = kept;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<Vec<u8>> {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn hit_miss_and_storage() {
        let cache = ResponseCache::new(64);
        assert!(cache.get("gen1|/v1/stale/A").is_none());
        cache.insert("gen1|/v1/stale/A", body("flags"));
        assert_eq!(
            cache.get("gen1|/v1/stale/A").as_deref(),
            Some(&b"flags".to_vec())
        );
        // A new generation misses on the same logical request.
        assert!(cache.get("gen2|/v1/stale/A").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.insert("k", body("v"));
        assert!(cache.get("k").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let cache = ResponseCache::new(SHARDS); // one entry per shard
                                                // Find two keys landing in the same shard.
        let keys: Vec<String> = (0..1000).map(|i| format!("key-{i}")).collect();
        let first = &keys[0];
        let same_shard = keys[1..]
            .iter()
            .find(|k| {
                std::ptr::eq(
                    cache.shard_of(k) as *const _,
                    cache.shard_of(first) as *const _,
                )
            })
            .expect("some key shares a shard");
        cache.insert(first, body("a"));
        cache.insert(same_shard, body("b"));
        // The shard holds one entry: the older key must be gone.
        assert!(cache.get(first).is_none());
        assert!(cache.get(same_shard).is_some());
    }

    #[test]
    fn recent_hit_survives_eviction() {
        let cache = ResponseCache::new(SHARDS * 2); // two entries per shard
                                                    // Three keys in one shard; touching the first should evict the
                                                    // second instead.
        let keys: Vec<String> = (0..2000).map(|i| format!("k{i}")).collect();
        let shard0 = cache.shard_of(&keys[0]) as *const _;
        let mut in_shard: Vec<&String> = keys
            .iter()
            .filter(|k| std::ptr::eq(cache.shard_of(k) as *const _, shard0))
            .collect();
        in_shard.truncate(3);
        assert_eq!(in_shard.len(), 3, "not enough colliding keys");
        cache.insert(in_shard[0], body("0"));
        cache.insert(in_shard[1], body("1"));
        assert!(cache.get(in_shard[0]).is_some()); // refresh recency
        cache.insert(in_shard[2], body("2"));
        assert!(
            cache.get(in_shard[0]).is_some(),
            "recently hit entry evicted"
        );
        assert!(cache.get(in_shard[1]).is_none(), "LRU entry survived");
        assert!(cache.get(in_shard[2]).is_some());
    }

    #[test]
    fn recency_queue_stays_bounded_under_hits() {
        let cache = ResponseCache::new(16);
        cache.insert("hot", body("v"));
        for _ in 0..10_000 {
            assert!(cache.get("hot").is_some());
        }
        assert!(
            cache.order_len() < 1_000,
            "queue grew to {} entries",
            cache.order_len()
        );
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ResponseCache::new(128));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500 {
                        let key = format!("g|{}", (t * 31 + i) % 64);
                        if cache.get(&key).is_none() {
                            cache.insert(&key, body(&key));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 128 + SHARDS);
    }
}
