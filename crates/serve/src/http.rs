//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Deliberately tiny: exactly what the staleness query surface needs and
//! nothing more. Requests are parsed from a `BufRead` (request line,
//! headers, optional `Content-Length` body); responses always carry
//! `Content-Length` and `Connection: close` — one request per
//! connection, so a slow keep-alive client can never pin a pool worker.
//! Path segments and query values are percent-decoded so page titles
//! with spaces round-trip (`/v1/stale/FC%20Example`).

use std::io::{self, BufRead, Write};

/// Largest accepted request body; larger posts are rejected with 413.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request line / header line.
const MAX_LINE_BYTES: usize = 16 * 1024;

/// A parsed request: method, percent-decoded path segments, query
/// parameters, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected upstream).
    pub method: String,
    /// The raw path portion of the request target (undecoded, no query).
    pub raw_path: String,
    /// Percent-decoded path split at `/` (no empty leading segment).
    pub segments: Vec<String>,
    /// Percent-decoded `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Every variant maps to a 4xx
/// response — parse trouble is the client's fault, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The connection closed or timed out mid-request.
    ConnectionClosed,
    /// Malformed request line or header.
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Method other than GET/POST.
    MethodNotAllowed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed mid-request"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            ParseError::MethodNotAllowed(m) => write!(f, "method {m} not allowed"),
        }
    }
}

/// Read one line terminated by `\n`, stripping the trailing `\r\n`/`\n`.
fn read_line(reader: &mut impl BufRead) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ParseError::ConnectionClosed);
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(ParseError::Malformed("header line too long".into()));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ParseError::ConnectionClosed),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 header".into()))
}

/// Percent-decode a path or query component. Invalid escapes are kept
/// literally (a stale-data service should answer, not nitpick); `+` is
/// decoded to space in query values per form encoding.
pub fn percent_decode(text: &str, plus_as_space: bool) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // A valid escape is exactly two hex digits. Checking both
                // bytes explicitly matters: `from_str_radix` accepts a
                // leading sign, which would decode `%+f` as 0x0F.
                let hex = bytes
                    .get(i + 1..i + 3)
                    .filter(|h| h.iter().all(u8::is_ascii_hexdigit));
                match hex.and_then(|h| u8::from_str_radix(&String::from_utf8_lossy(h), 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse one request from `reader`.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("request line has no target".into()))?
        .to_string();
    if !matches!(method.as_str(), "GET" | "POST") {
        return Err(ParseError::MethodNotAllowed(method));
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!(
                "header without colon: {line:?}"
            )));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| ParseError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|_| ParseError::ConnectionClosed)?;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let segments = raw_path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect();
    let query = raw_query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        raw_path,
        segments,
        query,
        body,
    })
}

/// A response ready to serialize: status, extra headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present Content-* / Connection.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\": {}}}\n", wikistale_obs::json::escape(message)),
        )
    }

    /// The shed response: 503 with a `Retry-After` hint.
    pub fn shed() -> Response {
        let mut resp = Response::error(503, "server overloaded, retry shortly");
        resp.headers.push(("Retry-After".into(), "1".into()));
        resp
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize onto `writer`. The header set is deterministic (no Date
    /// header) so identical queries produce byte-identical responses —
    /// the serving leg of the differential contract depends on it.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Map a parse failure to the response the client should see; `None`
/// when the connection died and nothing can be written back.
pub fn parse_error_response(e: &ParseError) -> Option<Response> {
    match e {
        ParseError::ConnectionClosed => None,
        ParseError::Malformed(why) => Some(Response::error(400, why)),
        ParseError::BodyTooLarge(_) => Some(Response::error(413, &e.to_string())),
        ParseError::MethodNotAllowed(_) => Some(Response::error(405, &e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get_with_query_and_escapes() {
        let req =
            parse(b"GET /v1/stale/FC%20Example?at=2019-06-01&window=7 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments, ["v1", "stale", "FC Example"]);
        assert_eq!(req.query_param("at"), Some("2019-06-01"));
        assert_eq!(req.query_param("window"), Some("7"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(b"POST /v1/score HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_bad_requests_precisely() {
        assert!(matches!(
            parse(b"DELETE /x HTTP/1.1\r\n\r\n"),
            Err(ParseError::MethodNotAllowed(_))
        ));
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::BodyTooLarge(_))
        ));
        // Truncated body: content-length promises more than the stream has.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(ParseError::ConnectionClosed)
        ));
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("FC%20Example", false), "FC Example");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("%zz", false), "%zz");
        assert_eq!(percent_decode("%C3%A9", false), "é");
    }

    #[test]
    fn percent_decoding_rejects_signed_escapes() {
        // `u8::from_str_radix` accepts a leading sign, so `%+f` used to
        // decode as 0x0F and `%-1`-style escapes as the wrong byte; a
        // valid escape is exactly two hex digits, anything else stays
        // literal.
        assert_eq!(percent_decode("%+f", false), "%+f");
        assert_eq!(percent_decode("%+f", true), "% f"); // + still form-decodes
        assert_eq!(percent_decode("%-1", false), "%-1");
        assert_eq!(percent_decode("%2", false), "%2"); // truncated escape
        assert_eq!(percent_decode("%%41", false), "%A"); // literal %, then %41
    }

    #[test]
    fn responses_serialize_deterministically() {
        let resp = Response::json(200, "{}").with_header("X-Fingerprint", "abc");
        let mut a = Vec::new();
        let mut b = Vec::new();
        resp.write_to(&mut a).unwrap();
        resp.write_to(&mut b).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Fingerprint: abc\r\n"));
        assert!(!text.contains("Date:"), "Date header breaks determinism");
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let resp = Response::shed();
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
    }

    #[test]
    fn parse_error_responses_map_to_4xx() {
        assert!(parse_error_response(&ParseError::ConnectionClosed).is_none());
        assert_eq!(
            parse_error_response(&ParseError::Malformed("x".into())).map(|r| r.status),
            Some(400)
        );
        assert_eq!(
            parse_error_response(&ParseError::MethodNotAllowed("PUT".into())).map(|r| r.status),
            Some(405)
        );
        assert_eq!(
            parse_error_response(&ParseError::BodyTooLarge(9)).map(|r| r.status),
            Some(413)
        );
    }

    /// Encode → decode must round-trip any title, including multi-byte
    /// UTF-8 and the reserved characters `%`, `+`, and `/`. The encoder
    /// escapes everything but unreserved bytes, so both decode modes
    /// (plus-as-space on and off) must recover the original.
    #[test]
    fn prop_percent_encode_decode_round_trips_titles() {
        use proptest::prelude::*;

        const POOL: &[char] = &[
            'a',
            'Z',
            '0',
            '9',
            '%',
            '+',
            '/',
            ' ',
            '-',
            '_',
            '.',
            '~',
            '&',
            '=',
            '?',
            '#',
            '\u{e9}',
            '\u{df}',
            '\u{441}',
            '\u{65e5}',
            '\u{672c}',
            '\u{1f600}',
        ];
        let title = proptest::collection::vec(0usize..POOL.len(), 0..24)
            .prop_map(|ix| ix.into_iter().map(|i| POOL[i]).collect::<String>());
        for case in 0..256 {
            let mut rng = TestRng::for_case("percent_round_trip", case);
            let t = title.generate(&mut rng);
            let encoded = crate::loadgen::encode_segment(&t);
            assert_eq!(percent_decode(&encoded, false), t, "path mode: {t:?}");
            assert_eq!(percent_decode(&encoded, true), t, "query mode: {t:?}");
        }
    }
}
