//! The accept loop: bounded admission, per-request deadlines, graceful
//! drain.
//!
//! One connection is one job on a [`ServicePool`]: the accept thread
//! never parses or renders, it only hands the socket to the pool. When
//! the pool's bounded queue is full, the accept thread itself writes a
//! `503` + `Retry-After` and closes — load-shedding costs one syscall,
//! not a worker. Every admitted request carries the wall-clock instant
//! it was accepted; a request that misses its deadline (stuck in the
//! queue, or slow to compute) is answered `504` instead of a late
//! result, so a draining or overloaded server fails crisply.
//!
//! Shutdown is cooperative: the accept loop polls a flag (set by
//! [`ServerHandle::stop`] or, in the CLI, by a SIGINT/SIGTERM handler),
//! stops accepting, then drops the pool — which drains queued and
//! in-flight jobs to completion before the listener closes.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::artifacts::ServeArtifacts;
use crate::http::{parse_error_response, parse_request, Response};
use crate::routes::{App, MetricsFormat};
use wikistale_exec::service::{ServicePool, SubmitError};
use wikistale_obs::MetricsRegistry;

/// How the server is run: pool size, admission limit, deadline, cache.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests (floored at 1).
    pub threads: usize,
    /// Admission limit: connections queued beyond the workers before
    /// the accept thread starts shedding 503s (floored at 1).
    pub queue_limit: usize,
    /// Per-request deadline, accept to response. Requests that exceed
    /// it are answered 504.
    pub deadline: Duration,
    /// Total rendered-response cache entries (0 disables).
    pub cache_entries: usize,
    /// Default `/metrics` rendering.
    pub metrics_format: MetricsFormat,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 4,
            queue_limit: 64,
            deadline: Duration::from_millis(2_000),
            cache_entries: 4_096,
            metrics_format: MetricsFormat::Json,
        }
    }
}

/// Accept-loop poll interval while idle (also the shutdown-detection
/// latency bound).
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Process-wide SIGINT/SIGTERM → drain, with zero dependencies: a raw
/// `signal(2)` registration flipping one static flag the accept loop
/// polls. Nothing async-signal-unsafe happens in the handler.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Route SIGINT (2) and SIGTERM (15) to a graceful drain. No-op on
    /// non-Unix targets.
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            signal(2, on_signal as extern "C" fn(i32) as usize);
            signal(15, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a shutdown signal has arrived since process start.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// A running (or runnable) server over one artifact generation.
pub struct Server {
    app: Arc<App>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// A server over `artifacts` with `config`. The artifacts are
    /// shared (`Arc`) so a self-hosting load generator can draw its
    /// request mix from the same loaded generation.
    pub fn new(artifacts: Arc<ServeArtifacts>, config: ServerConfig) -> Server {
        let app = Arc::new(App::new(
            artifacts,
            config.cache_entries,
            config.metrics_format,
        ));
        Server {
            app,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The application layer (route dispatch without sockets).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// A handle that, once stored to `true`, stops the accept loop at
    /// its next poll. Wire this to a signal handler for SIGTERM/SIGINT
    /// drain.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve `listener` until the shutdown flag is set, then drain.
    ///
    /// Blocks the calling thread. Returns once every admitted request
    /// has been answered.
    pub fn run(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let metrics = MetricsRegistry::global();
        let pool = ServicePool::new(
            "serve",
            self.config.threads.max(1),
            self.config.queue_limit.max(1),
        );
        while !self.shutdown.load(Ordering::SeqCst) && !signals::requested() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    metrics.counter("serve/accepted").incr();
                    // Admission check before submitting: this thread is
                    // the only submitter, and workers only *shrink* the
                    // queue, so the check cannot race into over-admission.
                    // Shedding happens right here on the accept thread —
                    // one bounded write, no worker involved.
                    if pool.queue_depth() >= pool.queue_limit() {
                        metrics.counter("serve/shed").incr();
                        shed_connection(stream);
                        continue;
                    }
                    let accepted_at = Instant::now();
                    let app = Arc::clone(&self.app);
                    let deadline = self.config.deadline;
                    if let Err(SubmitError::QueueFull { .. } | SubmitError::ShuttingDown) = pool
                        .try_submit(move || handle_connection(&app, stream, accepted_at, deadline))
                    {
                        // Unreachable given the pre-check, but never
                        // silently drop an admitted connection's count.
                        metrics.counter("serve/shed").incr();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(IDLE_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    metrics.counter("serve/accept_errors").incr();
                    std::thread::sleep(IDLE_POLL);
                }
            }
        }
        // Drain: stop accepting, finish queued + in-flight jobs.
        pool.shutdown();
        Ok(())
    }

    /// Run on a background thread; the returned handle stops and joins.
    pub fn spawn(self, listener: TcpListener) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let shutdown = self.shutdown_flag();
        let thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || self.run(listener))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// A background server; dropping it (or calling [`ServerHandle::stop`])
/// requests shutdown and waits for the drain to finish.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with `127.0.0.1:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown, drain, and join the accept thread.
    pub fn stop(mut self) -> io::Result<()> {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(thread) => match thread.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("serve accept thread panicked")),
            },
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop_inner();
    }
}

/// Parse, dispatch, respond — the whole life of one admitted
/// connection, on a pool worker.
fn handle_connection(app: &App, mut stream: TcpStream, accepted_at: Instant, deadline: Duration) {
    let metrics = MetricsRegistry::global();
    let remaining = deadline.saturating_sub(accepted_at.elapsed());
    if remaining.is_zero() {
        // Starved in the queue past the deadline: don't even parse.
        metrics.counter("serve/deadline_exceeded").incr();
        write_response(&mut stream, &deadline_response(deadline));
        return;
    }
    // Socket timeouts bound reads/writes by the remaining budget so a
    // stalled client cannot pin a worker past the deadline.
    let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(deadline.max(Duration::from_millis(1))));
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            metrics.counter("serve/io_errors").incr();
            return;
        }
    });
    let response = match parse_request(&mut reader) {
        Ok(request) => {
            let response = app.handle(&request);
            metrics
                .histogram("serve/latency")
                .record(accepted_at.elapsed());
            if accepted_at.elapsed() >= deadline {
                // Never deliver a late result: the client contract is
                // "an answer within the deadline, or a 504".
                metrics.counter("serve/deadline_exceeded").incr();
                deadline_response(deadline)
            } else {
                response
            }
        }
        Err(parse_error) => match parse_error_response(&parse_error) {
            Some(response) => response,
            None => return, // connection closed before a request
        },
    };
    write_response(&mut stream, &response);
}

/// Answer an over-admission connection with `503` + `Retry-After` on
/// the accept thread itself — one bounded write, no worker involved.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    if Response::shed().write_to(&mut stream).is_ok() {
        graceful_close(&mut stream);
    }
}

/// Half-close and drain until the client hangs up (bounded): closing a
/// socket with pending inbound bytes makes the kernel RST the
/// connection, which would discard the just-written response out of the
/// client's receive buffer. Relevant whenever the request was not fully
/// read — shed 503s, queue-starved 504s, parse-error 4xx.
fn graceful_close(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                if drained >= 64 * 1024 {
                    break;
                }
            }
        }
    }
}

fn deadline_response(deadline: Duration) -> Response {
    Response::error(
        504,
        &format!("deadline of {}ms exceeded", deadline.as_millis()),
    )
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    if response.write_to(stream).is_err() {
        MetricsRegistry::global().counter("serve/io_errors").incr();
    } else {
        graceful_close(stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{body_of, http_get, http_post, tiny_artifacts};
    use std::net::TcpListener;

    fn spawn(config: ServerConfig) -> ServerHandle {
        let server = Server::new(Arc::new(tiny_artifacts()), config);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        server.spawn(listener).unwrap()
    }

    #[test]
    fn serves_routes_over_tcp() {
        let handle = spawn(ServerConfig::default());
        let addr = handle.addr();
        let (status, text) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"status\": \"ok\""));
        assert!(text.contains("Connection: close"));
        let (status, _) = http_get(addr, "/no/such/route");
        assert_eq!(status, 404);
        let (status, text) = http_post(addr, "/v1/score", "{\"granularity\": 7, \"triples\": []}");
        assert_eq!(status, 200, "{text}");
        wikistale_obs::json::validate(body_of(&text)).unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn sheds_503_with_retry_after_when_queue_is_full() {
        let handle = spawn(ServerConfig {
            threads: 1,
            queue_limit: 1,
            deadline: Duration::from_millis(5_000),
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        // Occupy the single worker, then the single queue slot, then
        // burst: the burst must see 503s written by the accept thread.
        let results: Vec<(u16, String)> = std::thread::scope(|scope| {
            let blocker = scope.spawn(move || http_get(addr, "/healthz?delay_ms=600"));
            std::thread::sleep(Duration::from_millis(150));
            let burst: Vec<_> = (0..6)
                .map(|_| scope.spawn(move || http_get(addr, "/healthz")))
                .collect();
            let mut all: Vec<(u16, String)> =
                burst.into_iter().map(|h| h.join().unwrap()).collect();
            all.push(blocker.join().unwrap());
            all
        });
        let sheds: Vec<&(u16, String)> = results.iter().filter(|(s, _)| *s == 503).collect();
        assert!(!sheds.is_empty(), "no 503s: {results:?}");
        assert!(
            sheds
                .iter()
                .all(|(_, text)| text.contains("Retry-After: 1")),
            "503 without Retry-After"
        );
        assert!(
            results.iter().any(|(s, _)| *s == 200),
            "everything shed: {results:?}"
        );
        handle.stop().unwrap();
    }

    #[test]
    fn late_requests_get_504_not_late_results() {
        let handle = spawn(ServerConfig {
            threads: 1,
            deadline: Duration::from_millis(100),
            ..ServerConfig::default()
        });
        let (status, text) = http_get(handle.addr(), "/healthz?delay_ms=400");
        assert_eq!(status, 504, "{text}");
        assert!(text.contains("deadline"));
        handle.stop().unwrap();
    }

    #[test]
    fn graceful_drain_completes_in_flight_requests() {
        let handle = spawn(ServerConfig {
            threads: 1,
            deadline: Duration::from_millis(5_000),
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        let in_flight = std::thread::spawn(move || http_get(addr, "/healthz?delay_ms=500"));
        std::thread::sleep(Duration::from_millis(120));
        // Stop while the request is mid-sleep on the worker: stop() must
        // block until the response has been written.
        handle.stop().unwrap();
        let (status, text) = in_flight.join().unwrap();
        assert_eq!(
            status, 200,
            "in-flight request dropped during drain: {text}"
        );
        assert!(TcpStream::connect(addr).is_err(), "listener still open");
    }
}
