//! # wikistale-wikitext
//!
//! Ingestion path from raw Wikipedia data to the change cube: a wikitext
//! infobox parser, a MediaWiki XML export reader/writer, and a revision
//! differ that turns page histories into change-cube tuples.
//!
//! The EDBT 2023 paper consumes a pre-extracted infobox history (Bleifuß
//! et al., ICDE 2021). That extraction pipeline is not public, so this
//! crate provides the equivalent: feed it a MediaWiki XML export (the
//! format of `dumps.wikimedia.org`) and it produces the
//! [`wikistale_wikicube::ChangeCube`] the predictors train on.
//!
//! * [`infobox`] — parse `{{Infobox …}}` templates out of wikitext
//!   (balanced-brace aware) and render them back,
//! * [`xml`] — a minimal, dependency-free reader/writer for the
//!   `<mediawiki><page><revision>` export schema,
//! * [`diff`] — snapshot differencing: consecutive revisions of a page
//!   become create/update/delete changes per infobox field,
//! * [`stream`] / [`quarantine`] — incremental dump reading with an
//!   optional recovery mode that quarantines malformed pages under a
//!   configurable error budget instead of aborting.
//!
//! ## Example
//!
//! ```
//! use wikistale_wikitext::{diff::build_cube, xml::parse_export};
//!
//! let dump = r#"<mediawiki>
//!   <page><title>Premier League</title>
//!     <revision><timestamp>2019-05-11T10:00:00Z</timestamp>
//!       <text>{{Infobox football league | champions = Chelsea }}</text>
//!     </revision>
//!     <revision><timestamp>2019-05-12T18:00:00Z</timestamp>
//!       <text>{{Infobox football league | champions = Manchester City }}</text>
//!     </revision>
//!   </page>
//! </mediawiki>"#;
//! let pages = parse_export(dump).unwrap();
//! let cube = build_cube(&pages);
//! // One creation (first sighting) and one update.
//! assert_eq!(cube.num_changes(), 2);
//! ```

pub mod diff;
pub mod export;
pub mod infobox;
pub mod quarantine;
pub mod stream;
pub mod xml;

pub use diff::build_cube;
pub use export::cube_to_dump;
pub use infobox::{extract_infoboxes, render_infobox, Infobox};
pub use quarantine::{ErrorBudget, QuarantineEntry, QuarantineReport};
pub use stream::{PageStream, StreamError};
pub use xml::{
    parse_export, parse_export_lossy, render_export, PageDump, ParseLoss, Revision, XmlError,
};
