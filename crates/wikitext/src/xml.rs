//! Minimal reader/writer for the MediaWiki XML export schema.
//!
//! Wikipedia dumps (`dumps.wikimedia.org`) are `<mediawiki>` documents
//! containing `<page>` elements with `<title>` and a series of
//! `<revision>` elements, each carrying a `<timestamp>` (ISO 8601) and the
//! full page `<text>`. This module parses exactly that structure — it is
//! not a general XML parser, but it handles the entity escaping and the
//! attribute-carrying `<text …>` tags found in real dumps, and it never
//! panics on malformed input.

use std::fmt;
use wikistale_wikicube::Date;

/// One revision of a page: the day it was saved and its full wikitext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revision {
    /// Day of the revision (the change cube's time resolution).
    pub date: Date,
    /// Full page wikitext at this revision.
    pub text: String,
}

/// One page with its revision history in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDump {
    /// Page title.
    pub title: String,
    /// Revisions sorted by date (the parser sorts them).
    pub revisions: Vec<Revision>,
}

/// Errors from [`parse_export`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A `<page>` had no `<title>`.
    MissingTitle,
    /// A `<revision>` had no `<timestamp>`.
    MissingTimestamp,
    /// A timestamp was not ISO 8601 (`YYYY-MM-DDThh:mm:ssZ`).
    BadTimestamp(String),
    /// An opened element was never closed.
    UnclosedElement(&'static str),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::MissingTitle => f.write_str("page without <title>"),
            XmlError::MissingTimestamp => f.write_str("revision without <timestamp>"),
            XmlError::BadTimestamp(t) => write!(f, "unparseable timestamp {t:?}"),
            XmlError::UnclosedElement(e) => write!(f, "unclosed <{e}> element"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Parse a MediaWiki XML export into page histories. Revisions of each
/// page are sorted by date.
pub fn parse_export(xml: &str) -> Result<Vec<PageDump>, XmlError> {
    let mut pages = Vec::new();
    let mut rest = xml;
    while let Some((page_body, after)) = take_element(rest, "page")? {
        rest = after;
        let title = match take_element(page_body, "title")? {
            Some((t, _)) => unescape(t.trim()),
            None => return Err(XmlError::MissingTitle),
        };
        let mut revisions = Vec::new();
        let mut rev_rest = page_body;
        while let Some((rev_body, after_rev)) = take_element(rev_rest, "revision")? {
            rev_rest = after_rev;
            let ts = match take_element(rev_body, "timestamp")? {
                Some((t, _)) => t.trim().to_owned(),
                None => return Err(XmlError::MissingTimestamp),
            };
            let date = parse_timestamp(&ts)?;
            let text = match take_element(rev_body, "text")? {
                Some((t, _)) => unescape(t),
                None => String::new(),
            };
            revisions.push(Revision { date, text });
        }
        revisions.sort_by_key(|r| r.date);
        pages.push(PageDump { title, revisions });
    }
    Ok(pages)
}

/// One loss recorded by [`parse_export_lossy`]: what was skipped and
/// why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLoss {
    /// Zero-based index of the page (in scan order) the loss belongs to.
    pub page_index: usize,
    /// Title of the affected page, when one could be extracted.
    pub title: Option<String>,
    /// Whether a whole page (vs. a single revision) was dropped.
    pub whole_page: bool,
    /// The parse error that caused the skip.
    pub error: XmlError,
}

/// Parse a MediaWiki XML export in recovery mode: malformed revisions
/// are dropped from their page, pages without a recoverable structure
/// are dropped entirely, and every skip is reported in the loss list —
/// parsing itself never fails and never panics.
///
/// On well-formed input this returns exactly what [`parse_export`]
/// returns, with an empty loss list.
pub fn parse_export_lossy(xml: &str) -> (Vec<PageDump>, Vec<ParseLoss>) {
    let mut pages = Vec::new();
    let mut losses = Vec::new();
    let mut rest = xml;
    let mut index = 0usize;
    loop {
        match take_element(rest, "page") {
            Ok(None) => break,
            Err(e) => {
                // An unclosed <page> has no recoverable boundary; record
                // the remainder as one loss and stop scanning.
                losses.push(ParseLoss {
                    page_index: index,
                    title: title_of(rest),
                    whole_page: true,
                    error: e,
                });
                break;
            }
            Ok(Some((page_body, after))) => {
                rest = after;
                lossy_page(page_body, index, &mut pages, &mut losses);
                index += 1;
            }
        }
    }
    (pages, losses)
}

/// Best-effort title extraction from a (possibly malformed) page body.
fn title_of(body: &str) -> Option<String> {
    match take_element(body, "title") {
        Ok(Some((t, _))) => Some(unescape(t.trim())),
        _ => None,
    }
}

/// Parse one page body in recovery mode, appending the surviving page
/// (if any) to `pages` and every skip to `losses`.
fn lossy_page(
    page_body: &str,
    index: usize,
    pages: &mut Vec<PageDump>,
    losses: &mut Vec<ParseLoss>,
) {
    let title = match title_of(page_body) {
        Some(t) => t,
        None => {
            losses.push(ParseLoss {
                page_index: index,
                title: None,
                whole_page: true,
                error: XmlError::MissingTitle,
            });
            return;
        }
    };
    let mut revisions = Vec::new();
    let mut rev_rest = page_body;
    loop {
        match take_element(rev_rest, "revision") {
            Ok(None) => break,
            Err(e) => {
                // Unclosed <revision>: the rest of the page body has no
                // revision boundary; keep what parsed so far.
                losses.push(ParseLoss {
                    page_index: index,
                    title: Some(title.clone()),
                    whole_page: false,
                    error: e,
                });
                break;
            }
            Ok(Some((rev_body, after_rev))) => {
                rev_rest = after_rev;
                match lossy_revision(rev_body) {
                    Ok(rev) => revisions.push(rev),
                    Err(e) => losses.push(ParseLoss {
                        page_index: index,
                        title: Some(title.clone()),
                        whole_page: false,
                        error: e,
                    }),
                }
            }
        }
    }
    revisions.sort_by_key(|r| r.date);
    pages.push(PageDump { title, revisions });
}

fn lossy_revision(rev_body: &str) -> Result<Revision, XmlError> {
    let ts = match take_element(rev_body, "timestamp")? {
        Some((t, _)) => t.trim().to_owned(),
        None => return Err(XmlError::MissingTimestamp),
    };
    let date = parse_timestamp(&ts)?;
    let text = match take_element(rev_body, "text")? {
        Some((t, _)) => unescape(t),
        None => String::new(),
    };
    Ok(Revision { date, text })
}

/// Render page histories back into a MediaWiki XML export.
///
/// `parse_export(&render_export(&pages))` reproduces `pages` (modulo
/// revision ordering, which the parser normalizes).
pub fn render_export(pages: &[PageDump]) -> String {
    let mut out = String::with_capacity(256 * pages.len());
    out.push_str("<mediawiki xmlns=\"http://www.mediawiki.org/xml/export-0.11/\">\n");
    for page in pages {
        out.push_str("  <page>\n    <title>");
        out.push_str(&escape(&page.title));
        out.push_str("</title>\n");
        for rev in &page.revisions {
            out.push_str("    <revision>\n      <timestamp>");
            out.push_str(&rev.date.to_string());
            out.push_str("T00:00:00Z</timestamp>\n      <text xml:space=\"preserve\">");
            out.push_str(&escape(&rev.text));
            out.push_str("</text>\n    </revision>\n");
        }
        out.push_str("  </page>\n");
    }
    out.push_str("</mediawiki>\n");
    out
}

/// Find the next `<name …>…</name>` element in `input`; returns the inner
/// body and the remainder after the close tag. Self-closing elements
/// (`<name/>`) yield an empty body.
fn take_element<'a>(
    input: &'a str,
    name: &'static str,
) -> Result<Option<(&'a str, &'a str)>, XmlError> {
    let open = format!("<{name}");
    let mut search = input;
    loop {
        let Some(start) = search.find(&open) else {
            return Ok(None);
        };
        // The match must be a whole tag name: `<text` must not match
        // `<textarea>`.
        let after_name = &search[start + open.len()..];
        match after_name.as_bytes().first() {
            Some(b'>') | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'/') => {
                let tag_close = after_name
                    .find('>')
                    .ok_or(XmlError::UnclosedElement(name))?;
                if after_name.as_bytes()[..tag_close].ends_with(b"/") {
                    // Self-closing.
                    let rest = &after_name[tag_close + 1..];
                    return Ok(Some((&rest[..0], rest)));
                }
                let body_start = start + open.len() + tag_close + 1;
                let close = format!("</{name}>");
                let body = &search[body_start..];
                let end = body.find(&close).ok_or(XmlError::UnclosedElement(name))?;
                let rest = &body[end + close.len()..];
                return Ok(Some((&body[..end], rest)));
            }
            _ => {
                search = &search[start + open.len()..];
            }
        }
    }
}

fn parse_timestamp(ts: &str) -> Result<Date, XmlError> {
    ts.get(..10)
        .and_then(|day| day.parse::<Date>().ok())
        .ok_or_else(|| XmlError::BadTimestamp(ts.to_owned()))
}

/// Decode the five XML entities MediaWiki exports use.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let replaced = [
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&quot;", "\""),
            ("&apos;", "'"),
            ("&#039;", "'"),
            ("&amp;", "&"),
        ]
        .iter()
        .find(|(entity, _)| rest.starts_with(entity));
        match replaced {
            Some((entity, ch)) => {
                out.push_str(ch);
                rest = &rest[entity.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Encode the XML-significant characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SAMPLE: &str = r#"<mediawiki xmlns="http://www.mediawiki.org/xml/export-0.11/">
  <page>
    <title>London</title>
    <ns>0</ns>
    <revision>
      <id>2</id>
      <timestamp>2019-03-02T08:00:00Z</timestamp>
      <text bytes="52" xml:space="preserve">{{Infobox settlement | population_est = 9,000,000}}</text>
    </revision>
    <revision>
      <id>1</id>
      <timestamp>2018-01-01T12:30:00Z</timestamp>
      <text xml:space="preserve">{{Infobox settlement | population_est = 8,900,000}}</text>
    </revision>
  </page>
  <page>
    <title>A &amp; B</title>
    <revision>
      <timestamp>2019-01-01T00:00:00Z</timestamp>
      <text>no box &lt;here&gt;</text>
    </revision>
  </page>
</mediawiki>"#;

    #[test]
    fn parses_pages_revisions_and_sorts_by_date() {
        let pages = parse_export(SAMPLE).unwrap();
        assert_eq!(pages.len(), 2);
        let london = &pages[0];
        assert_eq!(london.title, "London");
        assert_eq!(london.revisions.len(), 2);
        // Sorted by date despite reversed input order.
        assert_eq!(london.revisions[0].date.to_string(), "2018-01-01");
        assert_eq!(london.revisions[1].date.to_string(), "2019-03-02");
        assert!(london.revisions[1].text.contains("9,000,000"));
    }

    #[test]
    fn unescapes_entities() {
        let pages = parse_export(SAMPLE).unwrap();
        assert_eq!(pages[1].title, "A & B");
        assert_eq!(pages[1].revisions[0].text, "no box <here>");
    }

    #[test]
    fn text_attributes_are_tolerated() {
        // <text bytes=… xml:space=…> must not confuse the parser.
        let pages = parse_export(SAMPLE).unwrap();
        assert!(pages[0].revisions[1].text.starts_with("{{Infobox"));
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            parse_export("<page><revision><timestamp>x</timestamp></revision></page>"),
            Err(XmlError::MissingTitle)
        );
        assert_eq!(
            parse_export("<page><title>T</title><revision></revision></page>"),
            Err(XmlError::MissingTimestamp)
        );
        assert!(matches!(
            parse_export(
                "<page><title>T</title><revision><timestamp>junk</timestamp></revision></page>"
            ),
            Err(XmlError::BadTimestamp(_))
        ));
        assert_eq!(
            parse_export("<page><title>T</title>"),
            Err(XmlError::UnclosedElement("page"))
        );
        assert_eq!(parse_export(""), Ok(vec![]));
    }

    #[test]
    fn self_closing_text() {
        let pages = parse_export(
            "<page><title>T</title><revision><timestamp>2019-01-01T00:00:00Z</timestamp><text/></revision></page>",
        )
        .unwrap();
        assert_eq!(pages[0].revisions[0].text, "");
    }

    #[test]
    fn render_parse_round_trip() {
        let pages = vec![
            PageDump {
                title: "Foo & <Bar>".to_owned(),
                revisions: vec![
                    Revision {
                        date: Date::from_ymd(2018, 1, 1).unwrap(),
                        text: "{{Infobox x | a = \"1\" & <b>}}".to_owned(),
                    },
                    Revision {
                        date: Date::from_ymd(2018, 5, 1).unwrap(),
                        text: "{{Infobox x | a = 2}}".to_owned(),
                    },
                ],
            },
            PageDump {
                title: "Empty".to_owned(),
                revisions: vec![],
            },
        ];
        let xml = render_export(&pages);
        let parsed = parse_export(&xml).unwrap();
        assert_eq!(parsed, pages);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_round_trip(
            pages in proptest::collection::vec(
                ("[a-zA-Z0-9 &<>\"']{1,20}",
                 proptest::collection::vec((0i32..20000, ".{0,50}"), 0..4)),
                0..4),
        ) {
            let pages: Vec<PageDump> = pages
                .into_iter()
                .map(|(title, revs)| {
                    let mut revisions: Vec<Revision> = revs
                        .into_iter()
                        .map(|(d, text)| Revision {
                            date: Date::EPOCH + d,
                            text,
                        })
                        .collect();
                    revisions.sort_by_key(|r| r.date);
                    PageDump { title: title.trim().to_owned(), revisions }
                })
                .filter(|p| !p.title.is_empty())
                .collect();
            let parsed = parse_export(&render_export(&pages)).unwrap();
            prop_assert_eq!(parsed, pages);
        }

        #[test]
        fn prop_never_panics(xml in ".{0,200}") {
            let _ = parse_export(&xml);
        }

        #[test]
        fn prop_lossy_never_panics_and_matches_strict_when_clean(xml in ".{0,200}") {
            let (pages, losses) = parse_export_lossy(&xml);
            if let Ok(strict) = parse_export(&xml) {
                if losses.is_empty() {
                    prop_assert_eq!(pages, strict);
                }
            }
        }
    }

    #[test]
    fn lossy_equals_strict_on_wellformed_input() {
        let (pages, losses) = parse_export_lossy(SAMPLE);
        assert!(losses.is_empty(), "{losses:?}");
        assert_eq!(pages, parse_export(SAMPLE).unwrap());
    }

    #[test]
    fn lossy_skips_bad_revision_keeps_page() {
        let xml = "<page><title>T</title>\
            <revision><timestamp>junk</timestamp><text>a</text></revision>\
            <revision><timestamp>2019-01-02T00:00:00Z</timestamp><text>b</text></revision>\
            <revision></revision>\
            </page>";
        let (pages, losses) = parse_export_lossy(xml);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].revisions.len(), 1);
        assert_eq!(pages[0].revisions[0].text, "b");
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| !l.whole_page));
        assert!(losses.iter().all(|l| l.title.as_deref() == Some("T")));
        assert!(matches!(losses[0].error, XmlError::BadTimestamp(_)));
        assert!(matches!(losses[1].error, XmlError::MissingTimestamp));
    }

    #[test]
    fn lossy_drops_titleless_page_keeps_neighbors() {
        let xml = "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp></revision></page>\
            <page><title>Good</title>\
            <revision><timestamp>2019-01-01T00:00:00Z</timestamp><text>x</text></revision></page>";
        let (pages, losses) = parse_export_lossy(xml);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].title, "Good");
        assert_eq!(losses.len(), 1);
        assert!(losses[0].whole_page);
        assert_eq!(losses[0].page_index, 0);
        assert_eq!(losses[0].error, XmlError::MissingTitle);
    }

    #[test]
    fn lossy_unclosed_page_records_loss_and_stops() {
        let xml = "<page><title>A</title>\
            <revision><timestamp>2019-01-01T00:00:00Z</timestamp></revision></page>\
            <page><title>B</title>";
        let (pages, losses) = parse_export_lossy(xml);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].title, "A");
        assert_eq!(losses.len(), 1);
        assert!(losses[0].whole_page);
        assert_eq!(losses[0].title.as_deref(), Some("B"));
        assert_eq!(losses[0].error, XmlError::UnclosedElement("page"));
    }

    #[test]
    fn lossy_unclosed_revision_keeps_earlier_revisions() {
        let xml = "<page><title>T</title>\
            <revision><timestamp>2019-01-01T00:00:00Z</timestamp><text>keep</text></revision>\
            <revision><timestamp>2019-01-02T00:00:00Z</timestamp>";
        // The outer <page> is unclosed, so the whole page is a loss.
        let (pages, losses) = parse_export_lossy(xml);
        assert!(pages.is_empty());
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].title.as_deref(), Some("T"));
    }
}
