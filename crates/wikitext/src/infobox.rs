//! Parsing and rendering of `{{Infobox …}}` templates in wikitext.
//!
//! The parser is deliberately pragmatic: it understands what it needs to
//! extract key–value pairs reliably from real pages — balanced template
//! braces (values may contain nested `{{cite …}}` templates), wiki links
//! (`[[target|label]]`, whose pipes must not split parameters), and HTML
//! comments — without attempting full wikitext semantics (no template
//! expansion, no parser functions).

/// One infobox instance: its template name and its parameters in source
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infobox {
    /// Template name as written, whitespace-normalized (e.g.
    /// `Infobox settlement`).
    pub template: String,
    /// Named parameters `(key, value)` in source order; values keep their
    /// inner wikitext verbatim (trimmed).
    pub params: Vec<(String, String)>,
}

impl Infobox {
    /// The value of parameter `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Extract every infobox template from `text`, in document order.
///
/// A template counts as an infobox when its name starts with `infobox`
/// (ASCII case-insensitive), matching Wikipedia's naming convention.
pub fn extract_infoboxes(text: &str) -> Vec<Infobox> {
    let text = strip_comments(text);
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'{' && bytes[i + 1] == b'{' {
            if let Some(end) = find_template_end(bytes, i) {
                let inner = &text[i + 2..end - 2];
                if let Some(infobox) = parse_template(inner) {
                    out.push(infobox);
                }
                // Skip the whole template: nested infoboxes are not
                // extracted separately (they belong to the outer box).
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Render an infobox back to wikitext in the multi-line style common on
/// Wikipedia. `extract_infoboxes(&render_infobox(b))[0] == *b` for any
/// parseable box.
pub fn render_infobox(infobox: &Infobox) -> String {
    let mut out = String::with_capacity(64 + infobox.params.len() * 24);
    out.push_str("{{");
    out.push_str(&infobox.template);
    for (k, v) in &infobox.params {
        out.push_str("\n| ");
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(v);
    }
    out.push_str("\n}}");
    out
}

/// Remove `<!-- … -->` comments (unterminated comments run to the end, as
/// in MediaWiki).
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("<!--") {
        out.push_str(&rest[..start]);
        match rest[start + 4..].find("-->") {
            Some(end) => rest = &rest[start + 4 + end + 3..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// Given `bytes[start..]` beginning with `{{`, find the index one past the
/// matching `}}`, honoring nesting.
fn find_template_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = start;
    while i + 1 < bytes.len() {
        if bytes[i] == b'{' && bytes[i + 1] == b'{' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'}' && bytes[i + 1] == b'}' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return Some(i);
            }
        } else {
            i += 1;
        }
    }
    None
}

/// Parse the inside of a `{{ … }}` template; `None` when it is not an
/// infobox.
fn parse_template(inner: &str) -> Option<Infobox> {
    let parts = split_top_level(inner);
    let mut parts = parts.into_iter();
    let name = normalize_ws(parts.next()?);
    if !name.to_ascii_lowercase().starts_with("infobox") {
        return None;
    }
    let mut params = Vec::new();
    for part in parts {
        // Positional parameters (no top-level `=`) are not used by
        // infoboxes; skip them rather than invent keys.
        if let Some(eq) = find_top_level_eq(part) {
            let key = normalize_ws(&part[..eq]);
            let value = part[eq + 1..].trim().to_owned();
            if !key.is_empty() {
                params.push((key, value));
            }
        }
    }
    Some(Infobox {
        template: name,
        params,
    })
}

/// Split template content on `|` at nesting depth zero with respect to
/// `{{ }}` and `[[ ]]`.
fn split_top_level(inner: &str) -> Vec<&str> {
    let bytes = inner.as_bytes();
    let mut parts = Vec::new();
    let mut template_depth = 0usize;
    let mut link_depth = 0usize;
    let mut last = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if i + 1 < bytes.len() && bytes[i + 1] == b'{' => {
                template_depth += 1;
                i += 2;
            }
            b'}' if i + 1 < bytes.len() && bytes[i + 1] == b'}' => {
                template_depth = template_depth.saturating_sub(1);
                i += 2;
            }
            b'[' if i + 1 < bytes.len() && bytes[i + 1] == b'[' => {
                link_depth += 1;
                i += 2;
            }
            b']' if i + 1 < bytes.len() && bytes[i + 1] == b']' => {
                link_depth = link_depth.saturating_sub(1);
                i += 2;
            }
            b'|' if template_depth == 0 && link_depth == 0 => {
                parts.push(&inner[last..i]);
                i += 1;
                last = i;
            }
            _ => i += 1,
        }
    }
    parts.push(&inner[last..]);
    parts
}

/// Index of the first `=` outside nested templates and links, if any.
fn find_top_level_eq(part: &str) -> Option<usize> {
    let bytes = part.as_bytes();
    let mut template_depth = 0usize;
    let mut link_depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if i + 1 < bytes.len() && bytes[i + 1] == b'{' => {
                template_depth += 1;
                i += 2;
            }
            b'}' if i + 1 < bytes.len() && bytes[i + 1] == b'}' => {
                template_depth = template_depth.saturating_sub(1);
                i += 2;
            }
            b'[' if i + 1 < bytes.len() && bytes[i + 1] == b'[' => {
                link_depth += 1;
                i += 2;
            }
            b']' if i + 1 < bytes.len() && bytes[i + 1] == b']' => {
                link_depth = link_depth.saturating_sub(1);
                i += 2;
            }
            b'=' if template_depth == 0 && link_depth == 0 => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Collapse internal whitespace runs to single spaces and trim.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Canonical identity of a template name: lower-cased, with underscores
/// (MediaWiki's title-internal spaces) folded to spaces and whitespace
/// runs collapsed. `Infobox_Settlement`, `infobox settlement` and
/// `Infobox  settlement` all denote the same template; the revision
/// differ keys infobox identity on this form so renames of pure casing or
/// spelling do not fragment change histories.
pub fn canonical_template_name(name: &str) -> String {
    normalize_ws(&name.replace('_', " ")).to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_simple_infobox() {
        let text = r#"
Some article text.
{{Infobox settlement
| name = London
| population_est = 8,961,989
| pop_est_as_of = mid-2018
}}
More text."#;
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes.len(), 1);
        let b = &boxes[0];
        assert_eq!(b.template, "Infobox settlement");
        assert_eq!(b.get("name"), Some("London"));
        assert_eq!(b.get("population_est"), Some("8,961,989"));
        assert_eq!(b.get("pop_est_as_of"), Some("mid-2018"));
        assert_eq!(b.get("missing"), None);
    }

    #[test]
    fn ignores_non_infobox_templates() {
        let boxes = extract_infoboxes("{{cite web | url = x}} {{Navbox | a = b}}");
        assert!(boxes.is_empty());
    }

    #[test]
    fn nested_templates_stay_inside_values() {
        let text =
            "{{Infobox person | birth_date = {{birth date|1961|8|4}} | name = Barack Obama}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].get("birth_date"), Some("{{birth date|1961|8|4}}"));
        assert_eq!(boxes[0].get("name"), Some("Barack Obama"));
    }

    #[test]
    fn links_with_pipes_do_not_split_params() {
        let text = "{{Infobox club | ground = [[Wembley Stadium|Wembley]] | capacity = 90,000}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes[0].get("ground"), Some("[[Wembley Stadium|Wembley]]"));
        assert_eq!(boxes[0].get("capacity"), Some("90,000"));
    }

    #[test]
    fn equals_inside_nested_structures_is_not_a_separator() {
        let text = "{{Infobox x | url = {{URL|https://e.org?a=1}} | next = [[A=B|label]] }}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes[0].get("url"), Some("{{URL|https://e.org?a=1}}"));
        assert_eq!(boxes[0].get("next"), Some("[[A=B|label]]"));
    }

    #[test]
    fn value_with_equals_keeps_remainder() {
        let text = "{{Infobox x | formula = E = mc^2}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes[0].get("formula"), Some("E = mc^2"));
    }

    #[test]
    fn multiple_infoboxes_in_document_order() {
        let text = "{{Infobox a | k = 1}} text {{Infobox b | k = 2}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes.len(), 2);
        assert_eq!(boxes[0].template, "Infobox a");
        assert_eq!(boxes[1].template, "Infobox b");
    }

    #[test]
    fn comments_are_stripped() {
        let text = "{{Infobox x | a = 1 <!-- needs update --> | b <!-- ignore me --> = 2}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes[0].get("a"), Some("1"));
        assert_eq!(boxes[0].get("b"), Some("2"));
        // Unterminated comment swallows the rest (MediaWiki behaviour).
        assert!(extract_infoboxes("<!-- {{Infobox x | a = 1}}").is_empty());
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        assert!(extract_infoboxes("{{Infobox broken | a = 1").is_empty());
        assert!(extract_infoboxes("}} {{").is_empty());
        assert!(extract_infoboxes("{{}}").is_empty());
    }

    #[test]
    fn positional_params_are_skipped() {
        let text = "{{Infobox x | positional | named = 1}}";
        let boxes = extract_infoboxes(text);
        assert_eq!(boxes[0].params, vec![("named".to_owned(), "1".to_owned())]);
    }

    #[test]
    fn case_insensitive_template_match() {
        let boxes = extract_infoboxes("{{infobox lowercase | a = 1}}");
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].template, "infobox lowercase");
    }

    #[test]
    fn canonical_template_names() {
        assert_eq!(
            canonical_template_name("Infobox_Settlement"),
            "infobox settlement"
        );
        assert_eq!(
            canonical_template_name("infobox  settlement"),
            "infobox settlement"
        );
        assert_eq!(
            canonical_template_name(" Infobox settlement "),
            "infobox settlement"
        );
        assert_eq!(canonical_template_name("Infobox boxer"), "infobox boxer");
    }

    #[test]
    fn render_round_trip() {
        let infobox = Infobox {
            template: "Infobox football club".to_owned(),
            params: vec![
                ("clubname".to_owned(), "FC Example".to_owned()),
                ("ground".to_owned(), "[[Big Arena|Arena]]".to_owned()),
                ("founded".to_owned(), "{{start date|1901}}".to_owned()),
            ],
        };
        let rendered = render_infobox(&infobox);
        let parsed = extract_infoboxes(&rendered);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], infobox);
    }

    proptest! {
        #[test]
        fn prop_render_parse_round_trip(
            template_suffix in "[a-z ]{1,12}",
            params in proptest::collection::vec(
                ("[a-z_]{1,10}", "[a-zA-Z0-9 ,.']{0,20}"), 0..8),
        ) {
            // Deduplicate keys (get() returns the first match only) and
            // drop values that would trim differently.
            let mut seen = std::collections::HashSet::new();
            let params: Vec<(String, String)> = params
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .map(|(k, v)| (k, v.trim().to_owned()))
                .collect();
            let infobox = Infobox {
                template: format!("Infobox {}", template_suffix.trim()),
                params,
            };
            let parsed = extract_infoboxes(&render_infobox(&infobox));
            prop_assert_eq!(parsed.len(), 1);
            prop_assert_eq!(&parsed[0].params, &infobox.params);
        }

        #[test]
        fn prop_never_panics_on_garbage(text in ".{0,300}") {
            let _ = extract_infoboxes(&text);
        }
    }
}
