//! Quarantine bookkeeping for lossy ingest.
//!
//! At full-history scale (the paper processed 283 M raw changes over 15
//! years of dumps), malformed pages are the norm, not the exception. In
//! recovery mode the ingest pipeline skips what it cannot parse instead
//! of aborting; every skip is recorded here so the loss is *visible*:
//! which page, where in the byte stream, and why.
//!
//! An [`ErrorBudget`] bounds how lossy a run may get: once the
//! quarantined fraction of pages exceeds the budget (after a minimum
//! sample so one bad page out of two does not trip it), the stream
//! aborts with a summary instead of silently discarding ever more data.

use std::fmt;

/// Cap on retained per-page detail; beyond it only counters grow (a
/// pathological dump must not turn the report itself into a memory
/// hazard).
pub const MAX_DETAILED_ENTRIES: usize = 1_000;

/// One quarantined span of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Title of the affected page, when one could be extracted.
    pub title: Option<String>,
    /// Byte offset of the skipped span in the input stream.
    pub byte_offset: u64,
    /// Length of the skipped span in bytes.
    pub byte_len: usize,
    /// Human-readable cause.
    pub error: String,
}

/// Structured record of everything a lossy ingest skipped.
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    /// Pages parsed successfully (possibly minus skipped revisions).
    pub pages_ok: usize,
    /// Pages skipped entirely.
    pub pages_quarantined: usize,
    /// Revisions dropped from otherwise-parseable pages.
    pub revisions_skipped: usize,
    /// Total bytes in quarantined page spans.
    pub bytes_quarantined: u64,
    /// Entries beyond [`MAX_DETAILED_ENTRIES`] counted but not retained.
    pub entries_dropped: usize,
    entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// Fresh, empty report.
    pub fn new() -> QuarantineReport {
        QuarantineReport::default()
    }

    /// Record one successfully parsed page.
    pub fn record_page_ok(&mut self) {
        self.pages_ok += 1;
    }

    /// Record a whole skipped page.
    pub fn record_page_quarantined(&mut self, entry: QuarantineEntry) {
        self.pages_quarantined += 1;
        self.bytes_quarantined += entry.byte_len as u64;
        self.push_entry(entry);
    }

    /// Record a revision dropped from a page that otherwise parsed.
    pub fn record_revision_skipped(&mut self, entry: QuarantineEntry) {
        self.revisions_skipped += 1;
        self.push_entry(entry);
    }

    fn push_entry(&mut self, entry: QuarantineEntry) {
        if self.entries.len() < MAX_DETAILED_ENTRIES {
            self.entries.push(entry);
        } else {
            self.entries_dropped += 1;
        }
    }

    /// Detailed entries, oldest first (capped at
    /// [`MAX_DETAILED_ENTRIES`]).
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Pages seen so far, parsed or not.
    pub fn pages_seen(&self) -> usize {
        self.pages_ok + self.pages_quarantined
    }

    /// Fraction of pages quarantined (0 when nothing was seen).
    pub fn quarantined_fraction(&self) -> f64 {
        let seen = self.pages_seen();
        if seen == 0 {
            0.0
        } else {
            self.pages_quarantined as f64 / seen as f64
        }
    }

    /// Whether anything at all was skipped.
    pub fn is_clean(&self) -> bool {
        self.pages_quarantined == 0 && self.revisions_skipped == 0
    }

    /// One-line summary for logs and stderr.
    pub fn summary(&self) -> String {
        format!(
            "quarantine: {} of {} pages skipped ({:.3} %), {} revisions dropped, {} bytes quarantined",
            self.pages_quarantined,
            self.pages_seen(),
            100.0 * self.quarantined_fraction(),
            self.revisions_skipped,
            self.bytes_quarantined,
        )
    }

    /// Render the full report as JSON (machine-readable quarantine
    /// format; see DESIGN.md "Failure model & recovery").
    pub fn render_json(&self) -> String {
        use wikistale_obs::json::escape;
        let mut out = String::with_capacity(256 + self.entries.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"pages_ok\": {},\n", self.pages_ok));
        out.push_str(&format!(
            "  \"pages_quarantined\": {},\n",
            self.pages_quarantined
        ));
        out.push_str(&format!(
            "  \"revisions_skipped\": {},\n",
            self.revisions_skipped
        ));
        out.push_str(&format!(
            "  \"bytes_quarantined\": {},\n",
            self.bytes_quarantined
        ));
        out.push_str(&format!(
            "  \"quarantined_fraction\": {},\n",
            wikistale_obs::json::number(self.quarantined_fraction())
        ));
        out.push_str(&format!(
            "  \"entries_dropped\": {},\n",
            self.entries_dropped
        ));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"title\": ");
            match &e.title {
                Some(t) => out.push_str(&escape(t)),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ", \"byte_offset\": {}, \"byte_len\": {}, \"error\": {}}}",
                e.byte_offset,
                e.byte_len,
                escape(&e.error)
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for e in &self.entries {
            writeln!(
                f,
                "  {} @ byte {} (+{}): {}",
                e.title.as_deref().unwrap_or("<unknown page>"),
                e.byte_offset,
                e.byte_len,
                e.error
            )?;
        }
        if self.entries_dropped > 0 {
            writeln!(f, "  … and {} more entries", self.entries_dropped)?;
        }
        Ok(())
    }
}

/// Limit on the tolerable quarantined-page fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Maximum tolerated fraction of quarantined pages, in `[0, 1]`.
    pub max_fraction: f64,
    /// Pages that must be seen before the budget is enforced, so a bad
    /// first page of a tiny sample does not read as 100 % loss.
    pub min_pages: usize,
}

impl ErrorBudget {
    /// Budget of `max_fraction` (e.g. `0.005` for 0.5 %) with the
    /// default 20-page enforcement threshold.
    pub fn fraction(max_fraction: f64) -> ErrorBudget {
        ErrorBudget {
            max_fraction,
            min_pages: 20,
        }
    }

    /// Whether `report` has exceeded this budget.
    pub fn exceeded(&self, report: &QuarantineReport) -> bool {
        report.pages_seen() >= self.min_pages && report.quarantined_fraction() > self.max_fraction
    }

    /// Whether `report` exceeds this budget at end of input. The
    /// `min_pages` floor exists to avoid judging a small mid-stream
    /// sample; once the input is exhausted the population is complete,
    /// so any over-budget loss counts — even when every bad page fell
    /// below the floor.
    pub fn exceeded_at_end(&self, report: &QuarantineReport) -> bool {
        report.pages_quarantined > 0 && report.quarantined_fraction() > self.max_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(title: Option<&str>, offset: u64, len: usize, error: &str) -> QuarantineEntry {
        QuarantineEntry {
            title: title.map(str::to_owned),
            byte_offset: offset,
            byte_len: len,
            error: error.to_owned(),
        }
    }

    #[test]
    fn counters_and_fraction() {
        let mut r = QuarantineReport::new();
        assert!(r.is_clean());
        assert_eq!(r.quarantined_fraction(), 0.0);
        for _ in 0..3 {
            r.record_page_ok();
        }
        r.record_page_quarantined(entry(Some("Bad"), 100, 50, "no <title>"));
        assert_eq!(r.pages_seen(), 4);
        assert!((r.quarantined_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.bytes_quarantined, 50);
        assert!(!r.is_clean());
        r.record_revision_skipped(entry(Some("Ok"), 200, 10, "bad timestamp"));
        assert_eq!(r.revisions_skipped, 1);
        assert_eq!(r.entries().len(), 2);
    }

    #[test]
    fn detail_is_capped_but_counters_grow() {
        let mut r = QuarantineReport::new();
        for i in 0..(MAX_DETAILED_ENTRIES + 7) {
            r.record_page_quarantined(entry(None, i as u64, 1, "x"));
        }
        assert_eq!(r.entries().len(), MAX_DETAILED_ENTRIES);
        assert_eq!(r.entries_dropped, 7);
        assert_eq!(r.pages_quarantined, MAX_DETAILED_ENTRIES + 7);
        assert!(r.to_string().contains("more entries"));
    }

    #[test]
    fn json_is_wellformed_and_navigable() {
        let mut r = QuarantineReport::new();
        r.record_page_ok();
        r.record_page_quarantined(entry(Some("A \"quoted\" title"), 42, 13, "err: <x>"));
        let json = r.render_json();
        let v = wikistale_obs::json::parse(&json).expect("valid json");
        assert_eq!(v.get("pages_ok").and_then(|x| x.as_f64()), Some(1.0));
        assert_eq!(
            v.get("pages_quarantined").and_then(|x| x.as_f64()),
            Some(1.0)
        );
        // Empty report renders valid JSON too.
        wikistale_obs::json::parse(&QuarantineReport::new().render_json()).expect("valid json");
    }

    #[test]
    fn budget_enforced_only_after_min_pages() {
        let budget = ErrorBudget::fraction(0.05);
        let mut r = QuarantineReport::new();
        r.record_page_quarantined(entry(None, 0, 1, "x"));
        // 100 % loss, but only one page seen — not yet enforced.
        assert!(!budget.exceeded(&r));
        for _ in 0..19 {
            r.record_page_ok();
        }
        // 1/20 = 5 % == budget: not exceeded (strictly greater trips).
        assert!(!budget.exceeded(&r));
        r.record_page_quarantined(entry(None, 1, 1, "x"));
        assert!(budget.exceeded(&r));
        // A zero budget means any quarantined page (past min_pages) aborts.
        assert!(ErrorBudget::fraction(0.0).exceeded(&r));
    }

    #[test]
    fn end_of_input_check_ignores_the_floor() {
        let budget = ErrorBudget::fraction(0.05);
        let mut r = QuarantineReport::new();
        r.record_page_ok();
        // Clean-so-far reports never exceed, even with zero pages.
        assert!(!budget.exceeded_at_end(&r));
        r.record_page_quarantined(entry(None, 0, 1, "x"));
        // 1/2 = 50 % > 5 %: below the floor mid-stream, terminal at EOF.
        assert!(!budget.exceeded(&r));
        assert!(budget.exceeded_at_end(&r));
        // Within budget at EOF is fine: 1/21 ≈ 4.8 % ≤ 5 %.
        for _ in 0..19 {
            r.record_page_ok();
        }
        assert!(!budget.exceeded_at_end(&r));
    }
}
