//! Revision differencing: page histories → change-cube tuples.
//!
//! For every page, consecutive revision snapshots are compared infobox by
//! infobox and parameter by parameter:
//!
//! * a parameter appearing for the first time (or a whole new infobox)
//!   emits a **create**,
//! * a parameter whose value differs from the previous snapshot emits an
//!   **update**,
//! * a missing parameter (or a removed infobox) emits a **delete**.
//!
//! Infobox *identity* across revisions follows Bleifuß et al. (ICDE 2021)
//! in spirit, simplified to the stable case: boxes are matched by template
//! name and occurrence index within the page. Entity names are
//! `title § template #k` so a page hosting several infoboxes (the paper's
//! Beale-family example) yields distinct entities on one page.

use crate::infobox::{canonical_template_name, extract_infoboxes};
use crate::xml::PageDump;
use wikistale_wikicube::{ChangeCube, ChangeCubeBuilder, ChangeKind, FxHashMap};

/// Diff all pages' revision histories into a change cube.
pub fn build_cube(pages: &[PageDump]) -> ChangeCube {
    let mut acc = CubeAccumulator::new();
    for page in pages {
        acc.add_page(page);
    }
    acc.finish()
}

/// Incremental cube construction for streamed dumps: feed pages one at a
/// time (e.g. from [`crate::stream::PageStream`]) without materializing
/// the whole dump.
#[derive(Debug, Default)]
pub struct CubeAccumulator {
    builder: ChangeCubeBuilder,
    pages_seen: usize,
}

impl CubeAccumulator {
    /// Start an empty accumulator.
    pub fn new() -> CubeAccumulator {
        CubeAccumulator::default()
    }

    /// Diff one page's revisions into the cube under construction.
    pub fn add_page(&mut self, page: &PageDump) -> &mut Self {
        diff_page(&mut self.builder, page);
        self.pages_seen += 1;
        self
    }

    /// Pages processed so far.
    pub fn pages_seen(&self) -> usize {
        self.pages_seen
    }

    /// Changes accumulated so far.
    pub fn num_changes(&self) -> usize {
        self.builder.num_changes()
    }

    /// Finalize into a canonical cube.
    pub fn finish(self) -> ChangeCube {
        self.builder.finish()
    }
}

/// Whether `title` is a main-namespace (article) page. Real dumps include
/// Talk:, User:, Template:, … pages; infobox *instances* live on articles,
/// so ingestion normally skips the rest (MediaWiki namespace prefixes are
/// reserved and cannot start an article title).
pub fn is_article_title(title: &str) -> bool {
    const NAMESPACE_PREFIXES: [&str; 14] = [
        "Talk:",
        "User:",
        "User talk:",
        "Wikipedia:",
        "Wikipedia talk:",
        "File:",
        "File talk:",
        "MediaWiki:",
        "Template:",
        "Template talk:",
        "Help:",
        "Category:",
        "Portal:",
        "Draft:",
    ];
    !NAMESPACE_PREFIXES
        .iter()
        .any(|prefix| title.starts_with(prefix))
}

/// Key identifying one infobox within a page across revisions.
type BoxKey = (String, usize); // (template, occurrence index)

fn diff_page(builder: &mut ChangeCubeBuilder, page: &PageDump) {
    // Snapshots keep parameters in source order so interning — and hence
    // the produced cube — is deterministic for a given input.
    let mut prev: Vec<(BoxKey, Vec<(String, String)>)> = Vec::new();
    for rev in &page.revisions {
        let mut current: Vec<(BoxKey, Vec<(String, String)>)> = Vec::new();
        let mut occurrence: FxHashMap<String, usize> = FxHashMap::default();
        for infobox in extract_infoboxes(&rev.text) {
            // Identity is the canonical template name, so casing or
            // underscore variations across revisions do not fragment a
            // field's history into several entities.
            let template = canonical_template_name(&infobox.template);
            let idx = occurrence.entry(template.clone()).or_insert(0);
            let key = (template, *idx);
            *idx += 1;
            current.push((key, infobox.params));
        }

        let lookup = |snapshot: &[(BoxKey, Vec<(String, String)>)], key: &BoxKey| {
            snapshot.iter().position(|(k, _)| k == key)
        };

        // Creates, updates, and per-parameter deletes.
        for (key, params) in &current {
            let entity = builder.entity(&entity_name(&page.title, key), &key.0, &page.title);
            let old = lookup(&prev, key).map(|i| &prev[i].1);
            for (param, value) in params {
                let property = builder.property(param);
                let old_value =
                    old.and_then(|o| o.iter().find(|(k, _)| k == param).map(|(_, v)| v.as_str()));
                match old_value {
                    None => {
                        builder.change(rev.date, entity, property, value, ChangeKind::Create);
                    }
                    Some(old_value) if old_value != value => {
                        builder.change(rev.date, entity, property, value, ChangeKind::Update);
                    }
                    Some(_) => {}
                }
            }
            if let Some(old) = old {
                for (param, _) in old {
                    if !params.iter().any(|(k, _)| k == param) {
                        let property = builder.property(param);
                        builder.change(rev.date, entity, property, "", ChangeKind::Delete);
                    }
                }
            }
        }

        // Whole infoboxes that disappeared.
        for (key, old_params) in &prev {
            if lookup(&current, key).is_none() {
                let entity = builder.entity(&entity_name(&page.title, key), &key.0, &page.title);
                for (param, _) in old_params {
                    let property = builder.property(param);
                    builder.change(rev.date, entity, property, "", ChangeKind::Delete);
                }
            }
        }

        prev = current;
    }
}

fn entity_name(title: &str, key: &BoxKey) -> String {
    if key.1 == 0 {
        format!("{title} § {}", key.0)
    } else {
        format!("{title} § {} #{}", key.0, key.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::Revision;
    use wikistale_wikicube::Date;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn page(title: &str, revs: Vec<(i32, &str)>) -> PageDump {
        PageDump {
            title: title.to_owned(),
            revisions: revs
                .into_iter()
                .map(|(d, text)| Revision {
                    date: day(d),
                    text: text.to_owned(),
                })
                .collect(),
        }
    }

    #[test]
    fn first_revision_creates_all_fields() {
        let cube = build_cube(&[page(
            "London",
            vec![(0, "{{Infobox settlement | population = 8 | mayor = K}}")],
        )]);
        assert_eq!(cube.num_changes(), 2);
        assert!(cube
            .iter_changes()
            .all(|c| c.kind == ChangeKind::Create && c.day == day(0)));
        let entity = cube.entity_id("London § infobox settlement").unwrap();
        assert_eq!(
            cube.template_name(cube.template_of(entity)),
            "infobox settlement"
        );
        assert_eq!(cube.page_title(cube.page_of(entity)), "London");
    }

    #[test]
    fn value_change_is_an_update() {
        let cube = build_cube(&[page(
            "London",
            vec![
                (0, "{{Infobox settlement | population = 8}}"),
                (5, "{{Infobox settlement | population = 9}}"),
                (9, "{{Infobox settlement | population = 9}}"), // no-op revision
            ],
        )]);
        let kinds: Vec<ChangeKind> = cube.iter_changes().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ChangeKind::Create, ChangeKind::Update]);
        let update = cube.change_at(1);
        assert_eq!(update.day, day(5));
        assert_eq!(cube.value_text(update.value), "9");
    }

    #[test]
    fn removed_parameter_is_a_delete() {
        let cube = build_cube(&[page(
            "London",
            vec![
                (0, "{{Infobox settlement | population = 8 | mayor = K}}"),
                (3, "{{Infobox settlement | population = 8}}"),
            ],
        )]);
        let deletes: Vec<_> = cube
            .iter_changes()
            .filter(|c| c.kind == ChangeKind::Delete)
            .collect();
        assert_eq!(deletes.len(), 1);
        assert_eq!(cube.property_name(deletes[0].property), "mayor");
        assert_eq!(deletes[0].day, day(3));
    }

    #[test]
    fn removed_infobox_deletes_every_field() {
        let cube = build_cube(&[page(
            "London",
            vec![
                (0, "{{Infobox settlement | a = 1 | b = 2}}"),
                (4, "plain text, box removed"),
            ],
        )]);
        let deletes = cube
            .iter_changes()
            .filter(|c| c.kind == ChangeKind::Delete)
            .count();
        assert_eq!(deletes, 2);
    }

    #[test]
    fn readded_parameter_is_a_create_again() {
        let cube = build_cube(&[page(
            "P",
            vec![
                (0, "{{Infobox x | a = 1}}"),
                (1, "{{Infobox x }}"),
                (2, "{{Infobox x | a = 2}}"),
            ],
        )]);
        let kinds: Vec<ChangeKind> = cube.iter_changes().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![ChangeKind::Create, ChangeKind::Delete, ChangeKind::Create]
        );
    }

    #[test]
    fn multiple_infoboxes_on_one_page_are_distinct_entities() {
        // The Beale-family pattern: several character infoboxes on one
        // page; fields of both belong to the same page for the
        // field-correlation search.
        let text0 = "{{Infobox character | sisters = 2}} {{Infobox character | daughters = 2}}";
        let text1 = "{{Infobox character | sisters = 3}} {{Infobox character | daughters = 3}}";
        let cube = build_cube(&[page("Beale family", vec![(0, text0), (7, text1)])]);
        assert_eq!(cube.num_entities(), 2);
        assert_eq!(cube.num_pages(), 1);
        let e0 = cube.entity_id("Beale family § infobox character").unwrap();
        let e1 = cube
            .entity_id("Beale family § infobox character #1")
            .unwrap();
        assert_eq!(cube.page_of(e0), cube.page_of(e1));
        let updates = cube
            .iter_changes()
            .filter(|c| c.kind == ChangeKind::Update)
            .count();
        assert_eq!(updates, 2);
    }

    #[test]
    fn pages_without_infoboxes_produce_nothing() {
        let cube = build_cube(&[page("Plain", vec![(0, "just text"), (1, "more text")])]);
        assert_eq!(cube.num_changes(), 0);
    }

    #[test]
    fn template_name_variants_share_one_entity() {
        // Casing and underscore drift across revisions must not fragment
        // the history.
        let cube = build_cube(&[page(
            "London",
            vec![
                (0, "{{Infobox settlement | population = 8}}"),
                (5, "{{infobox_Settlement | population = 9}}"),
                (9, "{{Infobox  settlement | population = 10}}"),
            ],
        )]);
        assert_eq!(cube.num_entities(), 1);
        let kinds: Vec<ChangeKind> = cube.iter_changes().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![ChangeKind::Create, ChangeKind::Update, ChangeKind::Update]
        );
    }

    #[test]
    fn article_title_detection() {
        assert!(is_article_title("London"));
        assert!(is_article_title("Premier League"));
        assert!(is_article_title("Filey")); // no false positive on "File"
        assert!(!is_article_title("Talk:London"));
        assert!(!is_article_title("User talk:Example"));
        assert!(!is_article_title("Template:Infobox settlement"));
        assert!(!is_article_title("Category:Cities"));
    }

    #[test]
    fn same_day_revisions_collapse_to_last_value() {
        // The diff emits one change per revision, but cube canonicalization
        // keeps only the day's final write per field (last value wins).
        let cube = build_cube(&[page(
            "P",
            vec![
                (0, "{{Infobox x | a = 1}}"),
                (0, "{{Infobox x | a = 2}}"),
                (0, "{{Infobox x | a = 3}}"),
            ],
        )]);
        assert_eq!(cube.num_changes(), 1);
        let c = cube.change_at(0);
        assert_eq!(c.day, day(0));
        assert_eq!(cube.value_text(c.value), "3");
    }
}
