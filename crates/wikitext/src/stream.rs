//! Streaming access to large MediaWiki exports.
//!
//! Full-history dumps of the English Wikipedia run to terabytes; loading
//! them into one string is not an option. [`PageStream`] reads a dump
//! incrementally from any [`BufRead`], yielding one parsed [`PageDump`] at
//! a time with memory bounded by the largest single page element.
//!
//! ```no_run
//! use std::io::BufReader;
//! use wikistale_wikitext::stream::PageStream;
//!
//! let file = std::fs::File::open("pages-meta-history.xml").unwrap();
//! for page in PageStream::new(BufReader::new(file)) {
//!     let page = page.unwrap();
//!     println!("{}: {} revisions", page.title, page.revisions.len());
//! }
//! ```

use crate::xml::{parse_export, PageDump, XmlError};
use std::io::BufRead;

/// Errors from streaming: either transport or markup.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A page element could not be parsed.
    Xml(XmlError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::Xml(e) => write!(f, "xml error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// An iterator of pages read incrementally from a dump.
pub struct PageStream<R: BufRead> {
    reader: R,
    buffer: String,
    done: bool,
}

impl<R: BufRead> PageStream<R> {
    /// Stream pages from `reader`.
    pub fn new(reader: R) -> PageStream<R> {
        PageStream {
            reader,
            buffer: String::new(),
            done: false,
        }
    }

    /// Read lines until the buffer holds at least one complete
    /// `<page>…</page>` element; returns the element's body (including its
    /// tags) or `None` at end of input.
    fn next_page_text(&mut self) -> Result<Option<String>, StreamError> {
        loop {
            if let Some(start) = self.buffer.find("<page") {
                if let Some(end_rel) = self.buffer[start..].find("</page>") {
                    let end = start + end_rel + "</page>".len();
                    let page_text = self.buffer[start..end].to_owned();
                    self.buffer.drain(..end);
                    return Ok(Some(page_text));
                }
            } else {
                // No page start in the buffer: only keep a tail that could
                // hold a split "<page" token, discard the rest.
                let keep_from = self.buffer.len().saturating_sub(8);
                self.buffer.drain(..keep_from);
            }
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).map_err(StreamError::Io)?;
            if n == 0 {
                return Ok(None);
            }
            self.buffer.push_str(&line);
        }
    }
}

impl<R: BufRead> Iterator for PageStream<R> {
    type Item = Result<PageDump, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_page_text() {
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Ok(Some(text)) => match parse_export(&text) {
                Ok(mut pages) if pages.len() == 1 => Some(Ok(pages.remove(0))),
                Ok(_) => {
                    self.done = true;
                    Some(Err(StreamError::Xml(XmlError::UnclosedElement("page"))))
                }
                Err(e) => {
                    self.done = true;
                    Some(Err(StreamError::Xml(e)))
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::render_export;
    use crate::xml::Revision;
    use std::io::BufReader;
    use wikistale_wikicube::Date;

    fn dump(n_pages: usize) -> String {
        let pages: Vec<PageDump> = (0..n_pages)
            .map(|i| PageDump {
                title: format!("Page {i}"),
                revisions: vec![Revision {
                    date: Date::EPOCH + i as i32,
                    text: format!("{{{{Infobox x | field = {i}}}}}"),
                }],
            })
            .collect();
        render_export(&pages)
    }

    #[test]
    fn streams_every_page_in_order() {
        let xml = dump(25);
        let pages: Result<Vec<PageDump>, _> =
            PageStream::new(BufReader::new(xml.as_bytes())).collect();
        let pages = pages.unwrap();
        assert_eq!(pages.len(), 25);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.title, format!("Page {i}"));
            assert_eq!(p.revisions.len(), 1);
        }
    }

    #[test]
    fn streaming_matches_batch_parsing() {
        let xml = dump(7);
        let batch = crate::xml::parse_export(&xml).unwrap();
        let streamed: Vec<PageDump> = PageStream::new(BufReader::new(xml.as_bytes()))
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn tiny_read_chunks_still_work() {
        // A 1-byte BufReader capacity forces the tail-keeping logic.
        let xml = dump(3);
        let reader = BufReader::with_capacity(1, xml.as_bytes());
        let pages: Vec<PageDump> = PageStream::new(reader).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 3);
    }

    #[test]
    fn empty_and_pageless_inputs() {
        assert_eq!(PageStream::new(BufReader::new(&b""[..])).count(), 0);
        let no_pages = b"<mediawiki></mediawiki>";
        assert_eq!(PageStream::new(BufReader::new(&no_pages[..])).count(), 0);
    }

    #[test]
    fn malformed_page_surfaces_an_error() {
        let bad = "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp></revision></page>";
        let results: Vec<_> = PageStream::new(BufReader::new(bad.as_bytes())).collect();
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0],
            Err(StreamError::Xml(XmlError::MissingTitle))
        ));
    }

    #[test]
    fn stops_after_error() {
        let bad = "<page><revision></revision></page><page><title>T</title></page>";
        let mut stream = PageStream::new(BufReader::new(bad.as_bytes()));
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none());
    }
}
