//! Streaming access to large MediaWiki exports.
//!
//! Full-history dumps of the English Wikipedia run to terabytes; loading
//! them into one string is not an option. [`PageStream`] reads a dump
//! incrementally from any [`BufRead`], yielding one parsed [`PageDump`] at
//! a time with memory bounded by the largest single page element.
//!
//! ```no_run
//! use std::io::BufReader;
//! use wikistale_wikitext::stream::PageStream;
//!
//! let file = std::fs::File::open("pages-meta-history.xml").unwrap();
//! for page in PageStream::new(BufReader::new(file)) {
//!     let page = page.unwrap();
//!     println!("{}: {} revisions", page.title, page.revisions.len());
//! }
//! ```
//!
//! # Recovery mode
//!
//! Real dumps are messy: truncated downloads, malformed markup,
//! adversarially broken revisions. [`PageStream::lossy`] keeps going
//! where the strict stream would abort — a malformed page or revision is
//! *quarantined* (recorded with its title, byte offset, span, and error
//! in a [`QuarantineReport`]) and the stream moves on to the next page.
//! An optional [`ErrorBudget`] bounds the loss: once the quarantined
//! fraction exceeds the budget the stream yields
//! [`StreamError::BudgetExceeded`] and stops, so a catastrophically
//! corrupt input cannot silently degrade into an empty cube.

use crate::quarantine::{ErrorBudget, QuarantineEntry, QuarantineReport};
use crate::xml::{parse_export, parse_export_lossy, PageDump, XmlError};
use std::io::BufRead;

/// Errors from streaming: transport, markup, or an exhausted error
/// budget.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A page element could not be parsed (strict mode only — recovery
    /// mode quarantines instead).
    Xml(XmlError),
    /// Recovery mode quarantined more pages than the budget tolerates.
    BudgetExceeded {
        /// Pages quarantined so far.
        quarantined: usize,
        /// Pages seen so far.
        seen: usize,
        /// The configured maximum quarantined fraction.
        max_fraction: f64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::Xml(e) => write!(f, "xml error: {e}"),
            StreamError::BudgetExceeded {
                quarantined,
                seen,
                max_fraction,
            } => write!(
                f,
                "error budget exceeded: {quarantined} of {seen} pages quarantined \
                 ({:.3} % > {:.3} % budget)",
                100.0 * *quarantined as f64 / (*seen).max(1) as f64,
                100.0 * max_fraction,
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Strict vs. recovering behavior of a [`PageStream`].
#[derive(Debug)]
enum Mode {
    /// First malformed page aborts the stream (the historical default).
    Strict,
    /// Malformed pages are quarantined and skipped, bounded by an
    /// optional error budget.
    Lossy { budget: Option<ErrorBudget> },
}

/// What [`PageStream::next_page_text`] found.
enum Scan {
    /// A complete `<page>…</page>` element and its stream byte offset.
    Page { offset: u64, text: String },
    /// End of input, possibly with an incomplete trailing page element.
    Eof { partial: Option<(u64, usize)> },
}

/// An iterator of pages read incrementally from a dump.
pub struct PageStream<R: BufRead> {
    reader: R,
    buffer: String,
    done: bool,
    /// Bytes drained from the front of `buffer` since the start of the
    /// input — the stream offset of `buffer[0]`.
    stream_pos: u64,
    mode: Mode,
    report: QuarantineReport,
}

impl<R: BufRead> PageStream<R> {
    /// Stream pages from `reader`, aborting on the first malformed page.
    pub fn new(reader: R) -> PageStream<R> {
        PageStream::with_mode(reader, Mode::Strict)
    }

    /// Stream pages in recovery mode with no error budget: every
    /// malformed page is quarantined and skipped.
    pub fn lossy(reader: R) -> PageStream<R> {
        PageStream::with_mode(reader, Mode::Lossy { budget: None })
    }

    /// Recovery mode bounded by `budget`: the stream aborts with
    /// [`StreamError::BudgetExceeded`] once the quarantined fraction of
    /// pages exceeds it.
    pub fn lossy_with_budget(reader: R, budget: ErrorBudget) -> PageStream<R> {
        PageStream::with_mode(
            reader,
            Mode::Lossy {
                budget: Some(budget),
            },
        )
    }

    fn with_mode(reader: R, mode: Mode) -> PageStream<R> {
        PageStream {
            reader,
            buffer: String::new(),
            done: false,
            stream_pos: 0,
            mode,
            report: QuarantineReport::new(),
        }
    }

    /// The quarantine report accumulated so far (complete once the
    /// iterator is exhausted). Strict streams keep an empty report.
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.report
    }

    /// Consume the stream, returning the final quarantine report.
    pub fn into_quarantine(self) -> QuarantineReport {
        self.report
    }

    /// Read lines until the buffer holds at least one complete
    /// `<page>…</page>` element; returns the element's body (including
    /// its tags) and stream offset, or end-of-input (noting an
    /// incomplete trailing page element — the signature of a truncated
    /// dump).
    fn next_page_text(&mut self) -> Result<Scan, StreamError> {
        loop {
            if let Some(start) = self.buffer.find("<page") {
                if let Some(end_rel) = self.buffer[start..].find("</page>") {
                    let end = start + end_rel + "</page>".len();
                    let offset = self.stream_pos + start as u64;
                    let page_text = self.buffer[start..end].to_owned();
                    self.buffer.drain(..end);
                    self.stream_pos += end as u64;
                    return Ok(Scan::Page {
                        offset,
                        text: page_text,
                    });
                }
            } else {
                // No page start in the buffer: only keep a tail that could
                // hold a split "<page" token, discard the rest.
                let keep_from = self.buffer.len().saturating_sub(8);
                self.buffer.drain(..keep_from);
                self.stream_pos += keep_from as u64;
            }
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).map_err(StreamError::Io)?;
            if n == 0 {
                // An opened-but-never-closed <page> at EOF is a truncated
                // dump, not a clean end.
                let partial = self
                    .buffer
                    .find("<page")
                    .map(|start| (self.stream_pos + start as u64, self.buffer.len() - start));
                return Ok(Scan::Eof { partial });
            }
            self.buffer.push_str(&line);
        }
    }

    /// Record a whole-page quarantine and check the budget; returns the
    /// terminal budget error if it is now exceeded.
    fn quarantine_page(&mut self, entry: QuarantineEntry) -> Option<StreamError> {
        self.report.record_page_quarantined(entry);
        wikistale_obs::MetricsRegistry::global()
            .counter("ingest/pages_quarantined")
            .incr();
        if let Mode::Lossy {
            budget: Some(budget),
        } = &self.mode
        {
            if budget.exceeded(&self.report) {
                return Some(StreamError::BudgetExceeded {
                    quarantined: self.report.pages_quarantined,
                    seen: self.report.pages_seen(),
                    max_fraction: budget.max_fraction,
                });
            }
        }
        None
    }

    /// Terminal budget check at end of input, where the `min_pages`
    /// floor no longer applies (the population is complete).
    fn final_budget_error(&self) -> Option<StreamError> {
        if let Mode::Lossy {
            budget: Some(budget),
        } = &self.mode
        {
            if budget.exceeded_at_end(&self.report) {
                return Some(StreamError::BudgetExceeded {
                    quarantined: self.report.pages_quarantined,
                    seen: self.report.pages_seen(),
                    max_fraction: budget.max_fraction,
                });
            }
        }
        None
    }
}

impl<R: BufRead> Iterator for PageStream<R> {
    type Item = Result<PageDump, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let obs = wikistale_obs::MetricsRegistry::global();
        loop {
            let scan = match self.next_page_text() {
                Err(e) => {
                    // Transport failures are never recoverable: without a
                    // working reader there is no next page to skip to.
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(scan) => scan,
            };
            let (offset, text) = match scan {
                Scan::Eof { partial } => {
                    self.done = true;
                    match (partial, &self.mode) {
                        (None, _) => return self.final_budget_error().map(Err),
                        (Some(_), Mode::Strict) => {
                            return Some(Err(StreamError::Xml(XmlError::UnclosedElement("page"))));
                        }
                        (Some((offset, len)), Mode::Lossy { .. }) => {
                            let title = crate::xml::parse_export_lossy(&self.buffer)
                                .1
                                .first()
                                .and_then(|l| l.title.clone());
                            let err = self.quarantine_page(QuarantineEntry {
                                title,
                                byte_offset: offset,
                                byte_len: len,
                                error: "truncated dump: <page> element unclosed at end of input"
                                    .to_owned(),
                            });
                            return err.or_else(|| self.final_budget_error()).map(Err);
                        }
                    }
                }
                Scan::Page { offset, text } => (offset, text),
            };

            match &self.mode {
                Mode::Strict => {
                    return match parse_export(&text) {
                        Ok(mut pages) if pages.len() == 1 => {
                            self.report.record_page_ok();
                            obs.counter("ingest/pages_ok").incr();
                            Some(Ok(pages.remove(0)))
                        }
                        Ok(_) => {
                            self.done = true;
                            Some(Err(StreamError::Xml(XmlError::UnclosedElement("page"))))
                        }
                        Err(e) => {
                            self.done = true;
                            Some(Err(StreamError::Xml(e)))
                        }
                    };
                }
                Mode::Lossy { .. } => {
                    let (mut pages, losses) = parse_export_lossy(&text);
                    if pages.len() == 1 {
                        let page = pages.remove(0);
                        for loss in &losses {
                            self.report.record_revision_skipped(QuarantineEntry {
                                title: Some(page.title.clone()),
                                byte_offset: offset,
                                byte_len: text.len(),
                                error: loss.error.to_string(),
                            });
                            obs.counter("ingest/revisions_skipped").incr();
                        }
                        self.report.record_page_ok();
                        obs.counter("ingest/pages_ok").incr();
                        return Some(Ok(page));
                    }
                    // No page survived: quarantine the whole span and
                    // move on (or stop, if the budget just ran out).
                    let error = losses
                        .first()
                        .map(|l| l.error.to_string())
                        .unwrap_or_else(|| "page yielded no parseable content".to_owned());
                    let title = losses.iter().find_map(|l| l.title.clone());
                    if let Some(err) = self.quarantine_page(QuarantineEntry {
                        title,
                        byte_offset: offset,
                        byte_len: text.len(),
                        error,
                    }) {
                        self.done = true;
                        return Some(Err(err));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::render_export;
    use crate::xml::Revision;
    use std::io::BufReader;
    use wikistale_wikicube::Date;

    fn dump(n_pages: usize) -> String {
        let pages: Vec<PageDump> = (0..n_pages)
            .map(|i| PageDump {
                title: format!("Page {i}"),
                revisions: vec![Revision {
                    date: Date::EPOCH + i as i32,
                    text: format!("{{{{Infobox x | field = {i}}}}}"),
                }],
            })
            .collect();
        render_export(&pages)
    }

    #[test]
    fn streams_every_page_in_order() {
        let xml = dump(25);
        let pages: Result<Vec<PageDump>, _> =
            PageStream::new(BufReader::new(xml.as_bytes())).collect();
        let pages = pages.unwrap();
        assert_eq!(pages.len(), 25);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.title, format!("Page {i}"));
            assert_eq!(p.revisions.len(), 1);
        }
    }

    #[test]
    fn streaming_matches_batch_parsing() {
        let xml = dump(7);
        let batch = crate::xml::parse_export(&xml).unwrap();
        let streamed: Vec<PageDump> = PageStream::new(BufReader::new(xml.as_bytes()))
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn tiny_read_chunks_still_work() {
        // A 1-byte BufReader capacity forces the tail-keeping logic.
        let xml = dump(3);
        let reader = BufReader::with_capacity(1, xml.as_bytes());
        let pages: Vec<PageDump> = PageStream::new(reader).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 3);
    }

    #[test]
    fn empty_and_pageless_inputs() {
        assert_eq!(PageStream::new(BufReader::new(&b""[..])).count(), 0);
        let no_pages = b"<mediawiki></mediawiki>";
        assert_eq!(PageStream::new(BufReader::new(&no_pages[..])).count(), 0);
    }

    #[test]
    fn malformed_page_surfaces_an_error() {
        let bad = "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp></revision></page>";
        let results: Vec<_> = PageStream::new(BufReader::new(bad.as_bytes())).collect();
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0],
            Err(StreamError::Xml(XmlError::MissingTitle))
        ));
    }

    #[test]
    fn stops_after_error() {
        let bad = "<page><revision></revision></page><page><title>T</title></page>";
        let mut stream = PageStream::new(BufReader::new(bad.as_bytes()));
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none());
    }

    #[test]
    fn strict_reports_truncated_trailing_page() {
        let truncated = "<page><title>A</title><revision>\
            <timestamp>2019-01-01T00:00:00Z</timestamp><text>x</text></revision></page>\
            <page><title>B</title><revision>";
        let results: Vec<_> = PageStream::new(BufReader::new(truncated.as_bytes())).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(StreamError::Xml(XmlError::UnclosedElement("page")))
        ));
    }

    #[test]
    fn lossy_skips_malformed_pages_and_reports_them() {
        let xml = "<page><title>Good 1</title><revision>\
            <timestamp>2019-01-01T00:00:00Z</timestamp><text>a</text></revision></page>\
            <page><revision><timestamp>2019-01-01T00:00:00Z</timestamp></revision></page>\
            <page><title>Good 2</title><revision>\
            <timestamp>2019-01-02T00:00:00Z</timestamp><text>b</text></revision></page>";
        let mut stream = PageStream::lossy(BufReader::new(xml.as_bytes()));
        let pages: Vec<PageDump> = (&mut stream).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].title, "Good 1");
        assert_eq!(pages[1].title, "Good 2");
        let report = stream.into_quarantine();
        assert_eq!(report.pages_ok, 2);
        assert_eq!(report.pages_quarantined, 1);
        assert_eq!(report.entries().len(), 1);
        assert!(report.entries()[0].error.contains("title"));
        assert!(report.entries()[0].byte_offset > 0);
    }

    #[test]
    fn lossy_drops_bad_revisions_but_keeps_page() {
        let xml = "<page><title>T</title>\
            <revision><timestamp>garbage</timestamp><text>skip</text></revision>\
            <revision><timestamp>2019-01-02T00:00:00Z</timestamp><text>keep</text></revision>\
            </page>";
        let mut stream = PageStream::lossy(BufReader::new(xml.as_bytes()));
        let pages: Vec<PageDump> = (&mut stream).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].revisions.len(), 1);
        assert_eq!(pages[0].revisions[0].text, "keep");
        let report = stream.into_quarantine();
        assert_eq!(report.pages_ok, 1);
        assert_eq!(report.pages_quarantined, 0);
        assert_eq!(report.revisions_skipped, 1);
        assert_eq!(report.entries()[0].title.as_deref(), Some("T"));
    }

    #[test]
    fn lossy_quarantines_truncated_trailing_page() {
        let truncated = "<page><title>A</title><revision>\
            <timestamp>2019-01-01T00:00:00Z</timestamp><text>x</text></revision></page>\
            <page><title>B</title><revision>";
        let mut stream = PageStream::lossy(BufReader::new(truncated.as_bytes()));
        let pages: Vec<PageDump> = (&mut stream).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 1);
        let report = stream.into_quarantine();
        assert_eq!(report.pages_quarantined, 1);
        assert!(report.entries()[0].error.contains("truncated"));
        assert_eq!(report.entries()[0].title.as_deref(), Some("B"));
    }

    #[test]
    fn lossy_on_clean_input_matches_strict() {
        let xml = dump(10);
        let strict: Vec<PageDump> = PageStream::new(BufReader::new(xml.as_bytes()))
            .map(|p| p.unwrap())
            .collect();
        let mut stream = PageStream::lossy(BufReader::new(xml.as_bytes()));
        let lossy: Vec<PageDump> = (&mut stream).map(|p| p.unwrap()).collect();
        assert_eq!(strict, lossy);
        assert!(stream.quarantine().is_clean());
        assert_eq!(stream.quarantine().pages_ok, 10);
    }

    #[test]
    fn error_budget_aborts_catastrophic_input() {
        // 30 pages, every one malformed: a 5 % budget with the default
        // 20-page threshold must abort as soon as enforcement kicks in.
        let mut xml = String::new();
        for i in 0..30 {
            xml.push_str(&format!(
                "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp>\
                 <text>missing title {i}</text></revision></page>"
            ));
        }
        let mut stream = PageStream::lossy_with_budget(
            BufReader::new(xml.as_bytes()),
            ErrorBudget::fraction(0.05),
        );
        let mut outcomes = Vec::new();
        for item in &mut stream {
            outcomes.push(item);
        }
        assert_eq!(outcomes.len(), 1, "only the terminal budget error");
        match &outcomes[0] {
            Err(StreamError::BudgetExceeded {
                quarantined, seen, ..
            }) => {
                assert_eq!(*quarantined, 20);
                assert_eq!(*seen, 20);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The report is still available for the post-mortem summary.
        assert_eq!(stream.quarantine().pages_quarantined, 20);
    }

    #[test]
    fn budget_is_enforced_at_end_of_input_despite_the_floor() {
        // Both bad pages fall below the 20-page enforcement floor, so
        // the stream never trips mid-flight — but 2/25 = 8 % > 0 %, and
        // at end of input the floor no longer applies.
        let mut xml = String::new();
        for i in 0..25 {
            if i == 3 || i == 9 {
                xml.push_str("<page><revision></revision></page>");
            } else {
                xml.push_str(&format!(
                    "<page><title>P{i}</title><revision>\
                     <timestamp>2019-01-01T00:00:00Z</timestamp><text>v</text></revision></page>"
                ));
            }
        }
        let mut stream = PageStream::lossy_with_budget(
            BufReader::new(xml.as_bytes()),
            ErrorBudget::fraction(0.0),
        );
        let outcomes: Vec<_> = (&mut stream).collect();
        assert_eq!(outcomes.len(), 24, "23 pages then the terminal error");
        assert!(outcomes[..23].iter().all(|o| o.is_ok()));
        match outcomes.last().unwrap() {
            Err(StreamError::BudgetExceeded {
                quarantined, seen, ..
            }) => {
                assert_eq!(*quarantined, 2);
                assert_eq!(*seen, 25);
            }
            other => panic!("expected terminal BudgetExceeded, got {other:?}"),
        }
        assert!(stream.next().is_none(), "the error is terminal");
    }

    #[test]
    fn generous_budget_survives_sparse_corruption() {
        let mut xml = String::new();
        for i in 0..40 {
            if i % 10 == 3 {
                xml.push_str("<page><revision></revision></page>");
            } else {
                xml.push_str(&format!(
                    "<page><title>P{i}</title><revision>\
                     <timestamp>2019-01-01T00:00:00Z</timestamp><text>v</text></revision></page>"
                ));
            }
        }
        let mut stream = PageStream::lossy_with_budget(
            BufReader::new(xml.as_bytes()),
            ErrorBudget::fraction(0.25),
        );
        let pages: Vec<PageDump> = (&mut stream).map(|p| p.unwrap()).collect();
        assert_eq!(pages.len(), 36);
        assert_eq!(stream.quarantine().pages_quarantined, 4);
    }
}
