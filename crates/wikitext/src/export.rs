//! The reverse of [`crate::diff`]: materialize a change cube back into
//! page revision histories.
//!
//! For every page, the cube's changes are replayed in day order; each day
//! with at least one change yields one revision whose text contains the
//! page's infoboxes in their state at the end of that day. Feeding the
//! result through [`crate::xml::render_export`] →
//! [`crate::xml::parse_export`] → [`crate::diff::build_cube`] reproduces
//! the day-deduplicated change history — the end-to-end correctness check
//! for the whole ingestion pipeline.

use crate::infobox::{render_infobox, Infobox};
use crate::xml::{PageDump, Revision};
use wikistale_wikicube::{ChangeCube, ChangeKind, EntityId, FxHashMap};

/// Materialize revision histories for every page of `cube`.
///
/// Changes must already be day-deduplicated if a lossless round trip is
/// desired: several same-day changes to one field collapse into one
/// revision that only keeps the last value.
pub fn cube_to_dump(cube: &ChangeCube) -> Vec<PageDump> {
    // Group changes by page, preserving the cube's (day, entity,
    // property) order.
    let mut per_page: Vec<Vec<usize>> = vec![Vec::new(); cube.num_pages()];
    for (i, c) in cube.iter_changes().enumerate() {
        per_page[cube.page_of(c.entity).index()].push(i);
    }

    let mut pages = Vec::new();
    for (page_idx, change_idxs) in per_page.into_iter().enumerate() {
        if change_idxs.is_empty() {
            continue;
        }
        let title = cube.page_title(wikistale_wikicube::PageId::from_index(page_idx));
        // Entities of this page in first-seen order for stable rendering.
        let mut entity_order: Vec<EntityId> = Vec::new();
        // Live state: entity → ordered (property name, value) list.
        let mut state: FxHashMap<EntityId, Vec<(String, String)>> = FxHashMap::default();
        let mut revisions = Vec::new();

        let mut i = 0;
        while i < change_idxs.len() {
            let day = cube.change_at(change_idxs[i]).day;
            while i < change_idxs.len() && cube.change_at(change_idxs[i]).day == day {
                let c = cube.change_at(change_idxs[i]);
                if !entity_order.contains(&c.entity) {
                    entity_order.push(c.entity);
                }
                let params = state.entry(c.entity).or_default();
                let prop = cube.property_name(c.property).to_owned();
                match c.kind {
                    ChangeKind::Create | ChangeKind::Update => {
                        let value = cube.value_text(c.value).to_owned();
                        match params.iter_mut().find(|(k, _)| *k == prop) {
                            Some(slot) => slot.1 = value,
                            None => params.push((prop, value)),
                        }
                    }
                    ChangeKind::Delete => {
                        params.retain(|(k, _)| *k != prop);
                    }
                }
                i += 1;
            }
            // One revision at the end of the day: all live infoboxes.
            let mut text = String::new();
            for &entity in &entity_order {
                let params = &state[&entity];
                if params.is_empty() {
                    continue;
                }
                if !text.is_empty() {
                    text.push_str("\n\n");
                }
                text.push_str(&render_infobox(&Infobox {
                    template: cube.template_name(cube.template_of(entity)).to_owned(),
                    params: params.clone(),
                }));
            }
            revisions.push(Revision { date: day, text });
        }
        pages.push(PageDump {
            title: title.to_owned(),
            revisions,
        });
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::build_cube;
    use crate::xml::{parse_export, render_export};
    use wikistale_wikicube::{ChangeCubeBuilder, Date};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn sample_cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let club = b.entity("FC § Infobox club", "Infobox club", "FC Example");
        let ground = b.property("ground");
        let capacity = b.property("capacity");
        b.change(day(0), club, ground, "Old Arena", ChangeKind::Create);
        b.change(day(0), club, capacity, "10,000", ChangeKind::Create);
        b.change(day(30), club, ground, "New Arena", ChangeKind::Update);
        b.change(day(60), club, capacity, "", ChangeKind::Delete);
        b.finish()
    }

    #[test]
    fn renders_one_revision_per_change_day() {
        let pages = cube_to_dump(&sample_cube());
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].revisions.len(), 3);
        assert!(pages[0].revisions[0].text.contains("Old Arena"));
        assert!(pages[0].revisions[1].text.contains("New Arena"));
        assert!(!pages[0].revisions[2].text.contains("capacity"));
    }

    #[test]
    fn full_round_trip_reproduces_changes() {
        let cube = sample_cube();
        let xml = render_export(&cube_to_dump(&cube));
        let rebuilt = build_cube(&parse_export(&xml).unwrap());
        assert_eq!(rebuilt.num_changes(), cube.num_changes());
        for (a, b) in rebuilt.iter_changes().zip(cube.iter_changes()) {
            assert_eq!(a.day, b.day);
            assert_eq!(a.kind, b.kind);
            assert_eq!(
                rebuilt.property_name(a.property),
                cube.property_name(b.property)
            );
        }
    }

    #[test]
    fn deleting_all_fields_removes_the_infobox() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("P § Infobox x", "Infobox x", "P");
        let p = b.property("a");
        b.change(day(0), e, p, "1", ChangeKind::Create);
        b.change(day(1), e, p, "", ChangeKind::Delete);
        let pages = cube_to_dump(&b.finish());
        assert_eq!(pages[0].revisions[1].text, "");
    }

    #[test]
    fn empty_cube_yields_no_pages() {
        assert!(cube_to_dump(&ChangeCubeBuilder::new().finish()).is_empty());
    }
}
