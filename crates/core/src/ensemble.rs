//! Predictor ensembles (§3.4).
//!
//! Both base predictors are tuned to roughly the same target precision, so
//! combining them by **disjunction** (the OR-ensemble) boosts recall while
//! keeping precision near that level — this is the paper's headline
//! predictor. **Conjunction** (the AND-ensemble) trades recall for even
//! higher precision.

use crate::predictions::PredictionSet;

/// Disjunction of positive predictions: flagged by either predictor.
pub fn or_ensemble(a: &PredictionSet, b: &PredictionSet) -> PredictionSet {
    a.union(b)
}

/// Conjunction of positive predictions: flagged by both predictors.
pub fn and_ensemble(a: &PredictionSet, b: &PredictionSet) -> PredictionSet {
    a.intersection(b)
}

/// Disjunction over any number of predictors (the §6 extension setting,
/// where more models join the ensemble). Panics on an empty slice.
pub fn or_all(sets: &[&PredictionSet]) -> PredictionSet {
    let (first, rest) = sets.split_first().expect("or_all needs ≥ 1 set");
    rest.iter().fold((*first).clone(), |acc, s| acc.union(s))
}

/// Conjunction over any number of predictors. Panics on an empty slice.
pub fn and_all(sets: &[&PredictionSet]) -> PredictionSet {
    let (first, rest) = sets.split_first().expect("and_all needs ≥ 1 set");
    rest.iter()
        .fold((*first).clone(), |acc, s| acc.intersection(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wikistale_wikicube::{Date, DateRange};

    fn set(items: &[(u32, u32)]) -> PredictionSet {
        PredictionSet::from_items(DateRange::with_len(Date::EPOCH, 52 * 7), 7, items.to_vec())
    }

    #[test]
    fn or_is_union_and_is_intersection() {
        let a = set(&[(0, 0), (1, 1)]);
        let b = set(&[(1, 1), (2, 2)]);
        assert_eq!(or_ensemble(&a, &b).items(), &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(and_ensemble(&a, &b).items(), &[(1, 1)]);
    }

    #[test]
    fn n_ary_ensembles() {
        let a = set(&[(0, 0), (1, 1), (3, 3)]);
        let b = set(&[(1, 1), (2, 2), (3, 3)]);
        let c = set(&[(3, 3), (4, 4), (1, 1)]);
        let or = or_all(&[&a, &b, &c]);
        assert_eq!(or.items(), &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        let and = and_all(&[&a, &b, &c]);
        assert_eq!(and.items(), &[(1, 1), (3, 3)]);
        // Single-set cases are identity.
        assert_eq!(or_all(&[&a]).items(), a.items());
        assert_eq!(and_all(&[&a]).items(), a.items());
        // Binary versions agree with the generic ones.
        assert_eq!(or_all(&[&a, &b]).items(), or_ensemble(&a, &b).items());
        assert_eq!(and_all(&[&a, &b]).items(), and_ensemble(&a, &b).items());
    }

    #[test]
    #[should_panic(expected = "needs ≥ 1 set")]
    fn empty_or_all_panics() {
        let _ = or_all(&[]);
    }

    proptest! {
        #[test]
        fn prop_ensemble_sandwich(
            xs in proptest::collection::vec((0u32..20, 0u32..52), 0..60),
            ys in proptest::collection::vec((0u32..20, 0u32..52), 0..60),
            truth in proptest::collection::vec((0u32..20, 0u32..52), 0..60),
        ) {
            // AND ⊆ {A, B} ⊆ OR, hence: AND has ≤ recall of either, OR has
            // ≥ recall of either; and every AND prediction appears in both.
            let a = set(&xs);
            let b = set(&ys);
            let t = set(&truth);
            let and = and_ensemble(&a, &b);
            let or = or_ensemble(&a, &b);
            for &(f, w) in and.items() {
                prop_assert!(a.contains(f, w) && b.contains(f, w));
            }
            for &(f, w) in a.items() {
                prop_assert!(or.contains(f, w));
            }
            let recall = |s: &PredictionSet| crate::eval::evaluate(s, &t).recall();
            prop_assert!(recall(&and) <= recall(&a) + 1e-12);
            prop_assert!(recall(&or) + 1e-12 >= recall(&b));
        }
    }
}
