//! Counter-anomaly detection on value histories.
//!
//! §5.4 of the paper tells the story of the Handball-Bundesliga's
//! `total goals`: editors kept incrementing a mistyped running total
//! (9,880 became 1,073 instead of 10,073) for weeks until a bulk
//! correction. The staleness predictors ignore values entirely, but the
//! change cube keeps them — so this module turns that §5.4 observation
//! into a detector: find fields whose values behave like monotone
//! counters, and flag the updates that break the monotone pattern
//! (sudden collapses and their later corrections).

use wikistale_wikicube::{ChangeCube, CubeIndex, Date, DateRange, FieldId};

/// Tuning knobs for [`find_counter_anomalies`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyParams {
    /// Minimum number of numeric updates for a field to be considered.
    pub min_points: usize,
    /// Minimum fraction of a field's update values that must parse as
    /// numbers.
    pub min_numeric_fraction: f64,
    /// Minimum fraction of numeric steps that must be non-decreasing for
    /// the field to count as a counter.
    pub min_monotone_fraction: f64,
    /// A decrease is anomalous when the value falls below this fraction of
    /// its predecessor (the paper's typo dropped to ~11 %).
    pub max_drop_ratio: f64,
}

impl Default for AnomalyParams {
    fn default() -> AnomalyParams {
        AnomalyParams {
            min_points: 6,
            min_numeric_fraction: 0.9,
            min_monotone_fraction: 0.8,
            max_drop_ratio: 0.5,
        }
    }
}

/// One suspicious update of a counter-like field.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterAnomaly {
    /// The affected field.
    pub field: FieldId,
    /// Day of the suspicious update.
    pub day: Date,
    /// The previous numeric value.
    pub previous: i64,
    /// The newly assigned numeric value.
    pub value: i64,
    /// What kind of break this is.
    pub kind: AnomalyKind,
}

/// The direction of the break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The counter collapsed (likely a truncation/typo such as
    /// 9,880 → 1,073).
    Collapse,
    /// The counter jumped upward far beyond its usual step right after a
    /// collapse — the likely bulk correction (6,197 → 16,227).
    Correction,
}

/// Parse an infobox numeric value: digits with optional thousands
/// separators (`,` or thin spaces) and surrounding whitespace.
pub fn parse_counter(value: &str) -> Option<i64> {
    let cleaned: String = value
        .trim()
        .chars()
        .filter(|c| !matches!(c, ',' | ' ' | '\u{2009}' | '\u{00a0}' | '_'))
        .collect();
    if cleaned.is_empty() || !cleaned.chars().all(|c| c.is_ascii_digit() || c == '-') {
        return None;
    }
    cleaned.parse().ok()
}

/// Scan every field of `cube` (via its `index`) for counter anomalies.
/// Returns anomalies sorted by `(day, field)`.
pub fn find_counter_anomalies(
    cube: &ChangeCube,
    index: &CubeIndex,
    params: &AnomalyParams,
) -> Vec<CounterAnomaly> {
    let mut anomalies = Vec::new();
    for pos in 0..index.num_fields() {
        let field = index.field(pos);
        let days = index.days(pos);
        if days.len() < params.min_points {
            continue;
        }
        // Collect the numeric (day, value) series from the change table.
        let mut series: Vec<(Date, i64)> = Vec::with_capacity(days.len());
        let mut non_numeric = 0usize;
        let (first, last) = match (days.first(), days.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => continue,
        };
        let span = DateRange::new(first, last + 1);
        for c in cube.changes_in(span) {
            if c.field() != field {
                continue;
            }
            match parse_counter(cube.value_text(c.value)) {
                Some(v) => series.push((c.day, v)),
                None => non_numeric += 1,
            }
        }
        let total = series.len() + non_numeric;
        if series.len() < params.min_points
            || (series.len() as f64 / total as f64) < params.min_numeric_fraction
        {
            continue;
        }
        // Counter check: most steps must be non-decreasing.
        let steps = series.len() - 1;
        let monotone = series.windows(2).filter(|w| w[1].1 >= w[0].1).count();
        if (monotone as f64 / steps as f64) < params.min_monotone_fraction {
            continue;
        }
        // Flag collapses, and the recovery jump right after a collapse.
        let mut collapsed = false;
        for w in series.windows(2) {
            let (prev, next) = (w[0], w[1]);
            if prev.1 > 0 && (next.1 as f64) < prev.1 as f64 * params.max_drop_ratio {
                anomalies.push(CounterAnomaly {
                    field,
                    day: next.0,
                    previous: prev.1,
                    value: next.1,
                    kind: AnomalyKind::Collapse,
                });
                collapsed = true;
            } else if collapsed
                && prev.1 > 0
                && next.1 as f64 > prev.1 as f64 / params.max_drop_ratio
            {
                anomalies.push(CounterAnomaly {
                    field,
                    day: next.0,
                    previous: prev.1,
                    value: next.1,
                    kind: AnomalyKind::Correction,
                });
                collapsed = false;
            }
        }
    }
    anomalies.sort_by_key(|a| (a.day, a.field));
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    #[test]
    fn parses_wiki_style_numbers() {
        assert_eq!(parse_counter("9,880"), Some(9_880));
        assert_eq!(parse_counter(" 16 227 "), Some(16_227));
        assert_eq!(parse_counter("1\u{00a0}073"), Some(1_073));
        assert_eq!(parse_counter("12_500"), Some(12_500));
        assert_eq!(parse_counter("-3"), Some(-3));
        assert_eq!(parse_counter("mid-2018"), None);
        assert_eq!(parse_counter(""), None);
        assert_eq!(parse_counter("12 goals"), None);
    }

    /// The paper's §5.4 history: a healthy counter, the typo collapse, the
    /// continued incrementing of the wrong value, and the final bulk
    /// correction.
    fn handball_cube() -> (ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity(
            "HBL",
            "infobox football league season",
            "2018-19 Handball-Bundesliga",
        );
        let goals = b.property("total goals");
        let values = [
            "8,900", "9,200", "9,500", "9,880", // healthy growth
            "1,073", // the typo (should have been 10,073)
            "1,800", "3,000", "5,000", "6,197",  // incremented wrong value
            "16,227", // the correction
        ];
        for (i, v) in values.iter().enumerate() {
            b.change(day(i as i32 * 7), e, goals, v, ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    #[test]
    fn detects_the_papers_typo_and_correction() {
        let (cube, index) = handball_cube();
        let anomalies = find_counter_anomalies(&cube, &index, &AnomalyParams::default());
        assert_eq!(anomalies.len(), 2, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::Collapse);
        assert_eq!(anomalies[0].previous, 9_880);
        assert_eq!(anomalies[0].value, 1_073);
        assert_eq!(anomalies[1].kind, AnomalyKind::Correction);
        assert_eq!(anomalies[1].previous, 6_197);
        assert_eq!(anomalies[1].value, 16_227);
    }

    #[test]
    fn healthy_counters_and_non_counters_stay_silent() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let healthy = b.property("healthy");
        let text = b.property("text");
        let noisy = b.property("noisy");
        for i in 0..10 {
            b.change(
                day(i * 3),
                e,
                healthy,
                &format!("{}", 100 + i * 10),
                ChangeKind::Update,
            );
            b.change(
                day(i * 3),
                e,
                text,
                &format!("value {i}"),
                ChangeKind::Update,
            );
            // Oscillating numbers are not a counter (fails monotone check).
            b.change(
                day(i * 3),
                e,
                noisy,
                &format!("{}", if i % 2 == 0 { 10 } else { 1 }),
                ChangeKind::Update,
            );
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let anomalies = find_counter_anomalies(&cube, &index, &AnomalyParams::default());
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }

    #[test]
    fn short_histories_are_skipped() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        for (i, v) in ["100", "200", "5"].iter().enumerate() {
            b.change(day(i as i32), e, p, v, ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        assert!(find_counter_anomalies(&cube, &index, &AnomalyParams::default()).is_empty());
    }

    #[test]
    fn mixed_value_fields_need_numeric_majority() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        // Half text, half numbers — not a counter field.
        for i in 0..5 {
            b.change(
                day(i * 2),
                e,
                p,
                &format!("{}", 100 * (i + 1)),
                ChangeKind::Update,
            );
            b.change(day(i * 2 + 1), e, p, "unknown", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        assert!(find_counter_anomalies(&cube, &index, &AnomalyParams::default()).is_empty());
    }
}
