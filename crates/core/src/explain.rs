//! Human-readable explanations for predictions.
//!
//! A "key advantage" the paper claims for both models (§1): "they
//! inherently give an explanation for their prediction". This module turns
//! that claim into an API: given a flagged (field, window), it collects
//! *why* — which correlated partner fields changed (field correlations),
//! which template rule fired on which trigger change (association rules),
//! and how strong the rule is — ready to render in a Figure-1-style
//! banner ("'Matches played' changed two days ago and this value has not
//! been updated yet").

use crate::predictor::EvalData;
use crate::predictors::{AssociationRulePredictor, FieldCorrelation};
use wikistale_wikicube::{Date, DateRange, FieldId};

/// One reason a field was flagged.
#[derive(Debug, Clone, PartialEq)]
pub enum Reason {
    /// A correlated same-page field changed inside the window.
    CorrelatedPartnerChanged {
        /// The partner field.
        partner: FieldId,
        /// Days the partner changed inside the window.
        days: Vec<Date>,
    },
    /// A template-level rule fired: its left-hand property changed.
    RuleFired {
        /// The trigger field (same entity, the rule's LHS property).
        trigger: FieldId,
        /// Days the trigger changed inside the window.
        days: Vec<Date>,
        /// Mining confidence of the rule.
        confidence: f64,
        /// Observed precision of the rule on its validation slice, if it
        /// fired there.
        validation_precision: Option<f64>,
    },
    /// The field has changed in this calendar window in (nearly) every
    /// previous year but not this one ([`crate::predictors::SeasonalPredictor`]).
    AnnualRecurrence {
        /// Previous years with a change in the corresponding window.
        hits: u32,
        /// Previous years the field was observable.
        observable: u32,
    },
}

/// All reasons a field was flagged in one window.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The flagged field.
    pub field: FieldId,
    /// The window the prediction is for.
    pub window: DateRange,
    /// Every supporting reason, correlations first.
    pub reasons: Vec<Reason>,
}

impl Explanation {
    /// Render the explanation against a cube, one line per reason, in the
    /// spirit of the paper's Figure 1 mock-up.
    pub fn render(&self, data: &EvalData<'_>) -> String {
        let cube = data.cube;
        let mut out = format!(
            "{} · {} — this value might be out of date:\n",
            cube.page_title(cube.page_of(self.field.entity)),
            cube.property_name(self.field.property),
        );
        for reason in &self.reasons {
            match reason {
                Reason::CorrelatedPartnerChanged { partner, days } => {
                    out.push_str(&format!(
                        "  • correlated field {:?} changed on {}\n",
                        cube.property_name(partner.property),
                        render_days(days),
                    ));
                }
                Reason::AnnualRecurrence { hits, observable } => {
                    out.push_str(&format!(
                        "  • this value changed around this time of year in {hits} of the \
                         last {observable} years\n",
                    ));
                }
                Reason::RuleFired {
                    trigger,
                    days,
                    confidence,
                    validation_precision,
                } => {
                    out.push_str(&format!(
                        "  • {:?} changed on {} and implies a change here \
                         (template rule, confidence {:.0} %{})\n",
                        cube.property_name(trigger.property),
                        render_days(days),
                        100.0 * confidence,
                        match validation_precision {
                            Some(p) => format!(", validated at {:.0} %", 100.0 * p),
                            None => String::new(),
                        },
                    ));
                }
            }
        }
        out
    }
}

fn render_days(days: &[Date]) -> String {
    days.iter()
        .map(Date::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Explain why `field` is flagged for `window` by the given trained
/// predictors. Returns `None` when neither predictor supports the flag
/// (e.g. the pair was produced by a different model).
pub fn explain(
    data: &EvalData<'_>,
    field_corr: &FieldCorrelation,
    assoc: &AssociationRulePredictor,
    field: FieldId,
    window: DateRange,
) -> Option<Explanation> {
    let index = data.index;
    let pos = index.position(field)? as u32;
    let mut reasons = Vec::new();

    // Field-correlation reasons: partners that changed inside the window.
    for &partner_pos in field_corr.partners_of(pos) {
        let days: Vec<Date> = index.days(partner_pos as usize).iter_in(window).collect();
        if !days.is_empty() {
            reasons.push(Reason::CorrelatedPartnerChanged {
                partner: index.field(partner_pos as usize),
                days,
            });
        }
    }

    // Association-rule reasons: rules whose RHS is this property and whose
    // LHS changed on this entity inside the window.
    let template = data.cube.template_of(field.entity);
    for rule in assoc.rules() {
        if rule.template != template || rule.rhs != field.property {
            continue;
        }
        let trigger = FieldId::new(field.entity, rule.lhs);
        let Some(trigger_pos) = index.position(trigger) else {
            continue;
        };
        let days: Vec<Date> = index.days(trigger_pos).iter_in(window).collect();
        if !days.is_empty() {
            reasons.push(Reason::RuleFired {
                trigger,
                days,
                confidence: rule.confidence,
                validation_precision: rule.validation_precision,
            });
        }
    }

    (!reasons.is_empty()).then_some(Explanation {
        field,
        window,
        reasons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{AssocParams, FieldCorrelationParams};
    use wikistale_apriori::{AprioriParams, Support};
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    /// Home/away colors correlate per page; ko ⇒ wins is a template rule
    /// across ten boxers.
    fn setup() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let home = b.property("home_color");
        let away = b.property("away_color");
        let wins = b.property("wins");
        let ko = b.property("ko");
        let club = b.entity("Club", "infobox club", "FC Example");
        for k in 0..8 {
            b.change(day(k * 50), club, home, "h", ChangeKind::Update);
            b.change(day(k * 50), club, away, "a", ChangeKind::Update);
        }
        for e in 0..10 {
            let boxer = b.entity(&format!("boxer{e}"), "infobox boxer", &format!("Boxer {e}"));
            for fight in 0..20 {
                let d = fight * 18 + e;
                b.change(day(d), boxer, wins, "w", ChangeKind::Update);
                if fight % 2 == 0 {
                    b.change(day(d), boxer, ko, "k", ChangeKind::Update);
                }
            }
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    fn trained(
        data: &EvalData<'_>,
        range: DateRange,
    ) -> (FieldCorrelation, AssociationRulePredictor) {
        (
            FieldCorrelation::train(data, range, FieldCorrelationParams::default()),
            AssociationRulePredictor::train(
                data,
                range,
                AssocParams {
                    apriori: AprioriParams {
                        min_support: Support::Fraction(0.01),
                        min_confidence: 0.6,
                        max_itemset_size: 2,
                    },
                    ..AssocParams::default()
                },
            ),
        )
    }

    #[test]
    fn correlation_reason_names_the_partner() {
        let (cube, index) = setup();
        let data = EvalData::new(&cube, &index);
        let (fc, ar) = trained(&data, DateRange::with_len(Date::EPOCH, 400));
        let away = FieldId::new(
            cube.entity_id("Club").unwrap(),
            cube.property_id("away_color").unwrap(),
        );
        // Home changed on day 350 (k = 7); the away field is explained by
        // that co-change window.
        let window = DateRange::new(day(348), day(355));
        let explanation = explain(&data, &fc, &ar, away, window).expect("explained");
        assert_eq!(explanation.reasons.len(), 1);
        match &explanation.reasons[0] {
            Reason::CorrelatedPartnerChanged { partner, days } => {
                assert_eq!(cube.property_name(partner.property), "home_color");
                assert_eq!(days, &[day(350)]);
            }
            other => panic!("unexpected reason {other:?}"),
        }
        let text = explanation.render(&data);
        assert!(text.contains("FC Example"));
        assert!(text.contains("home_color"));
        assert!(text.contains("might be out of date"));
    }

    #[test]
    fn rule_reason_reports_confidence() {
        let (cube, index) = setup();
        let data = EvalData::new(&cube, &index);
        let (fc, ar) = trained(&data, DateRange::with_len(Date::EPOCH, 300));
        // Boxer 0, fight 18 (day 324): ko fired; the wins field of that
        // entity is explained by the ko ⇒ wins rule.
        let wins = FieldId::new(
            cube.entity_id("boxer0").unwrap(),
            cube.property_id("wins").unwrap(),
        );
        let window = DateRange::new(day(322), day(329));
        let explanation = explain(&data, &fc, &ar, wins, window).expect("explained");
        let rule_reason = explanation
            .reasons
            .iter()
            .find(|r| matches!(r, Reason::RuleFired { .. }))
            .expect("rule reason present");
        match rule_reason {
            Reason::RuleFired {
                trigger,
                confidence,
                days,
                ..
            } => {
                assert_eq!(cube.property_name(trigger.property), "ko");
                assert!(*confidence > 0.9);
                assert_eq!(days, &[day(324)]);
            }
            _ => unreachable!(),
        }
        let text = explanation.render(&data);
        assert!(text.contains("template rule"));
    }

    #[test]
    fn unexplainable_predictions_return_none() {
        let (cube, index) = setup();
        let data = EvalData::new(&cube, &index);
        let (fc, ar) = trained(&data, DateRange::with_len(Date::EPOCH, 400));
        let home = FieldId::new(
            cube.entity_id("Club").unwrap(),
            cube.property_id("home_color").unwrap(),
        );
        // A window with no partner activity.
        assert!(explain(&data, &fc, &ar, home, DateRange::new(day(10), day(20))).is_none());
        // A field the index does not know.
        let ghost = FieldId::new(
            cube.entity_id("Club").unwrap(),
            cube.property_id("ko").unwrap(),
        );
        assert!(explain(&data, &fc, &ar, ghost, DateRange::new(day(0), day(400))).is_none());
    }
}
