//! Time-based train / validation / test splits (§5.1).
//!
//! All splits are along the time axis: the test set is the last 365 days
//! of the corpus, the validation set the 365 days before it, and the
//! training set everything before that. For the paper's corpus this means
//! a test year starting 2018-09-01, a validation year starting 2017-09-01,
//! and a training range ending there.

use wikistale_wikicube::{Date, DateRange};

/// The three evaluation ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalSplit {
    /// Training range (the earliest data up to the validation year).
    pub train: DateRange,
    /// Validation year (hyper-parameter tuning).
    pub validation: DateRange,
    /// Test year (final evaluation).
    pub test: DateRange,
}

impl EvalSplit {
    /// The paper's split of the real 2003–2019 corpus: test from
    /// 2018-09-01, validation the 365 days before, training from
    /// 2004-06-05.
    pub fn paper() -> EvalSplit {
        EvalSplit {
            train: DateRange::new(Date::TRAINING_START, Date::TEST_START - 365),
            validation: DateRange::with_len(Date::TEST_START - 365, 365),
            test: DateRange::with_len(Date::TEST_START, 365),
        }
    }

    /// Derive a split for an arbitrary corpus span: the last 365 days are
    /// the test year, the 365 before that validation, everything earlier
    /// training. Returns `None` if the span cannot accommodate two full
    /// years plus at least one training day.
    pub fn for_span(span: DateRange) -> Option<EvalSplit> {
        if span.len_days() < 2 * 365 + 1 {
            return None;
        }
        let test_start = span.end() - 365;
        let validation_start = test_start - 365;
        Some(EvalSplit {
            train: DateRange::new(span.start(), validation_start),
            validation: DateRange::with_len(validation_start, 365),
            test: DateRange::with_len(test_start, 365),
        })
    }

    /// Training plus validation — what the final models are trained on
    /// before being evaluated on the test year (§5.1: "trained on both
    /// training and validation set").
    pub fn train_and_validation(&self) -> DateRange {
        DateRange::new(self.train.start(), self.validation.end())
    }

    /// The 365 days immediately before `range` — the reference year the
    /// threshold baseline counts windows in.
    pub fn reference_year_before(range: DateRange) -> DateRange {
        DateRange::with_len(range.start() - 365, 365)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_matches_section_5_1() {
        let s = EvalSplit::paper();
        assert_eq!(s.test.start().to_string(), "2018-09-01");
        assert_eq!(s.test.len_days(), 365);
        assert_eq!(s.validation.len_days(), 365);
        assert_eq!(s.validation.end(), s.test.start());
        assert_eq!(s.train.start().to_string(), "2004-06-05");
        assert_eq!(s.train.end(), s.validation.start());
        // §5.1 reports 4,835 training days (inclusive-day counting; our
        // half-open range spans 4,836 day slots).
        assert_eq!(s.train.len_days(), 4_836);
    }

    #[test]
    fn for_span_splits_backwards_from_the_end() {
        let span = DateRange::with_len(Date::EPOCH, 3 * 365);
        let s = EvalSplit::for_span(span).unwrap();
        assert_eq!(s.test.end(), span.end());
        assert_eq!(s.test.len_days(), 365);
        assert_eq!(s.validation.end(), s.test.start());
        assert_eq!(s.train, DateRange::new(span.start(), s.validation.start()));
        assert_eq!(s.train.len_days(), 365);
    }

    #[test]
    fn for_span_requires_enough_history() {
        assert!(EvalSplit::for_span(DateRange::with_len(Date::EPOCH, 2 * 365)).is_none());
        assert!(EvalSplit::for_span(DateRange::with_len(Date::EPOCH, 2 * 365 + 1)).is_some());
    }

    #[test]
    fn train_and_validation_concatenates() {
        let s = EvalSplit::paper();
        let tv = s.train_and_validation();
        assert_eq!(tv.start(), s.train.start());
        assert_eq!(tv.end(), s.test.start());
    }

    #[test]
    fn reference_year() {
        let s = EvalSplit::paper();
        let r = EvalSplit::reference_year_before(s.test);
        assert_eq!(r, s.validation);
    }
}
