//! The predictor abstraction and the data it sees at prediction time.

use crate::predictions::PredictionSet;
use wikistale_wikicube::{ChangeCube, CubeIndex, DateRange};

/// The (filtered) data predictors run against: the cube for dimension
/// lookups and its index for field histories.
///
/// The index must have been built from the same cube snapshot.
#[derive(Clone, Copy)]
pub struct EvalData<'a> {
    /// The filtered change cube.
    pub cube: &'a ChangeCube,
    /// Index over the same cube.
    pub index: &'a CubeIndex,
}

impl<'a> EvalData<'a> {
    /// Bundle a cube with its index.
    pub fn new(cube: &'a ChangeCube, index: &'a CubeIndex) -> EvalData<'a> {
        EvalData { cube, index }
    }
}

/// A trained change predictor (§3): emits, for every complete tumbling
/// window of `range`, the set of fields it believes should change in that
/// window.
///
/// ## The masked-field protocol (§5.1)
///
/// When predicting field *f* in window *w*, an implementation may use
/// *f*'s changes **before** `w` starts and *other* fields' changes through
/// the **end** of `w` — never *f*'s own changes inside `w`. This simulates
/// the scenario where one edit to *f* was forgotten while related fields
/// were updated correctly. All built-in predictors satisfy this by
/// construction: the rule-based predictors only consult *other* fields
/// inside the window, and the baselines only consult *f*'s past.
pub trait ChangePredictor {
    /// Short display name ("Field correlations").
    fn name(&self) -> &'static str;

    /// Positive predictions for every complete `granularity`-day window of
    /// `range`.
    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, Date};

    /// A trivial predictor used to exercise the trait object surface.
    struct Always;

    impl ChangePredictor for Always {
        fn name(&self) -> &'static str {
            "always"
        }

        fn predict(
            &self,
            data: &EvalData<'_>,
            range: DateRange,
            granularity: u32,
        ) -> PredictionSet {
            let mut set = PredictionSet::new(range, granularity);
            for pos in 0..data.index.num_fields() as u32 {
                for w in 0..set.num_windows() {
                    set.insert(pos, w);
                }
            }
            set.seal();
            set
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(Date::EPOCH, e, p, "v", ChangeKind::Update);
        let cube = b.finish();
        let index = wikistale_wikicube::CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let predictor: Box<dyn ChangePredictor> = Box::new(Always);
        let set = predictor.predict(&data, DateRange::with_len(Date::EPOCH, 21), 7);
        assert_eq!(predictor.name(), "always");
        assert_eq!(set.len(), 3); // 1 field × 3 windows
    }
}
