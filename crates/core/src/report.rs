//! Plain-text rendering of experiment results: the Table 1 layout, the
//! Figure 3 histogram, and the Figure 4 series, next to the paper's
//! published numbers where available.

use crate::eval::EvalOutcome;
use crate::experiment::{GranularityResults, PaperResults};
use std::fmt::Write as _;

/// The paper's Table 1 (test-set precision %, recall %, #predictions) for
/// comparison columns: rows are (predictor, per-granularity `[P, R, #]`).
pub const PAPER_TABLE1: [(&str, [[f64; 3]; 4]); 6] = [
    (
        "Mean baseline",
        [
            [4.69, 1.86, 887_192.0],
            [13.22, 6.16, 891_206.0],
            [21.37, 12.12, 838_415.0],
            [51.47, 34.33, 521_777.0],
        ],
    ),
    (
        "Threshold baseline",
        [
            [0.00, 0.00, 0.0],
            [80.77, 0.06, 1_456.0],
            [60.47, 0.45, 11_016.0],
            [53.59, 57.24, 835_791.0],
        ],
    ),
    (
        "Field correlations",
        [
            [87.66, 5.19, 132_537.0],
            [88.74, 4.99, 107_715.0],
            [88.20, 3.96, 66_442.0],
            [90.55, 3.19, 27_599.0],
        ],
    ),
    (
        "Association rules",
        [
            [91.73, 5.63, 137_436.0],
            [93.30, 5.35, 109_890.0],
            [93.43, 4.60, 72_804.0],
            [95.52, 3.86, 31_594.0],
        ],
    ),
    (
        "AND-ensemble",
        [
            [96.08, 2.31, 53_803.0],
            [96.58, 2.16, 42_738.0],
            [96.68, 1.77, 27_129.0],
            [98.06, 1.46, 11_666.0],
        ],
    ),
    (
        "OR-ensemble",
        [
            [88.16, 8.51, 216_173.0],
            [89.69, 8.19, 174_829.0],
            [89.54, 6.79, 112_084.0],
            [92.02, 5.59, 47_513.0],
        ],
    ),
];

/// Total windows containing changes per granularity, as reported in §5.3.
pub const PAPER_TRUTH_TOTALS: [usize; 4] = [2_239_604, 1_914_466, 1_478_266, 782_304];

fn outcome_cells(o: &EvalOutcome) -> String {
    format!(
        "{:>6.2} {:>6.2} {:>9}",
        100.0 * o.precision(),
        100.0 * o.recall(),
        o.predictions
    )
}

/// Render the Table 1 equivalent for `results`, one block per granularity.
pub fn render_table1(results: &PaperResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — precision [%], recall [%], #predictions per predictor and window size"
    );
    for g in &results.per_granularity {
        let _ = writeln!(
            out,
            "\n== {}-day windows (windows with changes: {}) ==",
            g.granularity, g.truth_total
        );
        let _ = writeln!(out, "{:<22} {:>6} {:>6} {:>9}", "predictor", "P", "R", "#");
        for (name, outcome) in rows(g) {
            let _ = writeln!(out, "{name:<22} {}", outcome_cells(&outcome));
        }
    }
    out
}

/// Render measured-vs-paper for each granularity the paper reports.
pub fn render_table1_vs_paper(results: &PaperResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — ours vs paper (precision % / recall % / #predictions)"
    );
    for (gi, &g) in crate::GRANULARITIES.iter().enumerate() {
        let Some(r) = results.granularity(g) else {
            continue;
        };
        let _ = writeln!(
            out,
            "\n== {g}-day windows — truth: ours {} | paper {} ==",
            r.truth_total, PAPER_TRUTH_TOTALS[gi]
        );
        let _ = writeln!(
            out,
            "{:<22} {:>24} | {:>24}",
            "predictor", "ours (P R #)", "paper (P R #)"
        );
        for (row, (name, outcome)) in rows(r).into_iter().enumerate() {
            let paper = PAPER_TABLE1[row].1[gi];
            let _ = writeln!(
                out,
                "{name:<22} {} | {:>6.2} {:>6.2} {:>9}",
                outcome_cells(&outcome),
                paper[0],
                paper[1],
                paper[2] as u64
            );
        }
    }
    out
}

/// Render a GitHub-flavoured markdown version of Table 1, with 95 %
/// Wilson intervals on the measured precision — for pasting into reports
/// like `EXPERIMENTS.md`.
pub fn render_table1_markdown(results: &PaperResults) -> String {
    let mut out = String::new();
    for (gi, &g) in crate::GRANULARITIES.iter().enumerate() {
        let Some(r) = results.granularity(g) else {
            continue;
        };
        let _ = writeln!(out, "### {g}-day windows\n");
        let _ = writeln!(
            out,
            "| predictor | P [%] (95 % CI) | R [%] | # | paper P | paper R | paper # |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for (row, (name, o)) in rows(r).into_iter().enumerate() {
            let paper = PAPER_TABLE1[row].1[gi];
            let (lo, hi) = o.precision_ci95();
            let _ = writeln!(
                out,
                "| {name} | {:.2} ({:.1}–{:.1}) | {:.2} | {} | {:.2} | {:.2} | {} |",
                100.0 * o.precision(),
                100.0 * lo,
                100.0 * hi,
                100.0 * o.recall(),
                o.predictions,
                paper[0],
                paper[1],
                paper[2] as u64
            );
        }
        let _ = writeln!(out);
    }
    out
}

fn rows(g: &GranularityResults) -> [(&'static str, EvalOutcome); 6] {
    [
        ("Mean baseline", g.mean_baseline),
        ("Threshold baseline", g.threshold_baseline),
        ("Field correlations", g.field_correlations),
        ("Association rules", g.association_rules),
        ("AND-ensemble", g.and_ensemble),
        ("OR-ensemble", g.or_ensemble),
    ]
}

/// Render the Figure 3 histogram: how many templates discovered how many
/// association rules, on logarithmic buckets like the paper's x-axis.
pub fn render_figure3(results: &PaperResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — association rules per template ({} rules over {} templates, {} covered entities)",
        results.num_assoc_rules,
        results.rules_per_template.len(),
        results.covered_entities
    );
    // Log-spaced buckets 1, 2, 3‒4, 5‒8, ….
    let mut buckets: Vec<(String, usize)> = Vec::new();
    let mut lo = 1usize;
    let max = results
        .rules_per_template
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0);
    while lo <= max.max(1) {
        let hi = lo * 2 - 1;
        let count = results
            .rules_per_template
            .iter()
            .filter(|&&(_, n)| n >= lo && n <= hi)
            .count();
        let label = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}-{hi}")
        };
        buckets.push((label, count));
        lo *= 2;
    }
    for (label, count) in buckets {
        let _ = writeln!(
            out,
            "{label:>9} rules: {:<5} {}",
            count,
            "#".repeat(count.min(60))
        );
    }
    out
}

/// Render the Figure 4 series: weekly precision and recall of the four §3
/// predictors on 7-day windows.
pub fn render_figure4(results: &PaperResults) -> String {
    let mut out = String::new();
    let Some(seven) = results.granularity(7) else {
        return "Figure 4 — no 7-day evaluation present\n".to_owned();
    };
    let Some(series) = &seven.weekly_series else {
        return "Figure 4 — weekly series not collected\n".to_owned();
    };
    let names = ["FC", "AR", "AND", "OR"];
    let _ = writeln!(
        out,
        "Figure 4 — weekly precision/recall on 7-day windows (52 weeks)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>10} {:>10}   {:>9} {:>9} {:>9} {:>9}",
        "week", "P(FC)", "P(AR)", "P(AND)", "P(OR)", "R(FC)", "R(AR)", "R(AND)", "R(OR)"
    );
    for week in 0..series[0].len() {
        let _ = write!(out, "{week:>4}");
        for s in series.iter() {
            let _ = write!(out, " {:>10.2}", 100.0 * s[week].precision());
        }
        let _ = write!(out, "  ");
        for s in series.iter() {
            let _ = write!(out, " {:>9.2}", 100.0 * s[week].recall());
        }
        let _ = writeln!(out);
        let _ = names; // names documented in the header ordering
    }
    out
}

/// Render the §5.3.4 overlap analysis across granularities (paper: 37‒42 %
/// of predictions shared).
pub fn render_overlap(results: &PaperResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Overlap of FC and AR predictions (paper §5.3.4: 37‒42 % shared)"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "gran", "shared", "|FC|", "|AR|", "of FC %", "of AR %"
    );
    for g in &results.per_granularity {
        let o = g.fc_ar_overlap;
        let _ = writeln!(
            out,
            "{:>4}d {:>10} {:>10} {:>10} {:>10.1} {:>10.1}",
            g.granularity,
            o.shared,
            o.a_total,
            o.b_total,
            100.0 * o.of_a(),
            100.0 * o.of_b()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterPipeline;
    use crate::split::EvalSplit;
    use wikistale_synth::{generate, SynthConfig};

    fn results() -> PaperResults {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        crate::experiment::run_paper_evaluation(
            &filtered,
            &split,
            &crate::experiment::ExperimentConfig::default(),
        )
    }

    #[test]
    fn paper_constants_are_consistent() {
        // Spot-check against the published table.
        assert_eq!(PAPER_TABLE1[5].0, "OR-ensemble");
        assert!((PAPER_TABLE1[5].1[1][0] - 89.69).abs() < 1e-9);
        assert!((PAPER_TABLE1[5].1[1][1] - 8.19).abs() < 1e-9);
        assert_eq!(PAPER_TRUTH_TOTALS[1], 1_914_466);
    }

    #[test]
    fn renders_contain_all_sections() {
        let r = results();
        let t1 = render_table1(&r);
        assert!(t1.contains("7-day windows"));
        assert!(t1.contains("OR-ensemble"));
        let vs = render_table1_vs_paper(&r);
        assert!(vs.contains("paper"));
        assert!(vs.contains("89.69"));
        let md = render_table1_markdown(&r);
        assert!(md.contains("### 7-day windows"));
        assert!(md.contains("| OR-ensemble |"));
        assert!(md.contains("95 % CI"));
        // One header + six predictor rows per granularity block.
        assert_eq!(md.matches("| Mean baseline |").count(), 4);
        let f3 = render_figure3(&r);
        assert!(f3.contains("rules per template"));
        let f4 = render_figure4(&r);
        assert!(f4.lines().count() >= 54, "52 weeks + header");
        let ov = render_overlap(&r);
        assert!(ov.contains("of FC %"));
    }
}
