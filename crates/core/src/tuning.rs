//! Hyper-parameter grid searches (§5.2).
//!
//! Both searches score candidate configurations on the validation year
//! with models trained on the training range only, then pick the
//! configuration with the highest recall among those whose precision
//! clears the 85 % target — exactly the paper's selection rule.

use crate::eval::{evaluate, truth_set, EvalOutcome};
use crate::experiment::ExperimentConfig;
use crate::predictor::{ChangePredictor, EvalData};
use crate::predictors::{
    AssocParams, AssociationRulePredictor, FieldCorrelation, FieldCorrelationParams,
};
use crate::split::EvalSplit;
use wikistale_apriori::{AprioriParams, Support};
use wikistale_wikicube::{ChangeCube, CubeIndex};

/// One grid-search sample: a candidate configuration and its validation
/// outcome.
#[derive(Debug, Clone)]
pub struct GridPoint<P> {
    /// Candidate parameters.
    pub params: P,
    /// Validation-year outcome at the scoring granularity.
    pub outcome: EvalOutcome,
}

/// Result of a grid search: all sampled points plus the winner under the
/// paper's rule (max recall subject to precision ≥ target).
#[derive(Debug, Clone)]
pub struct GridSearch<P> {
    /// Every sampled point, in sweep order.
    pub points: Vec<GridPoint<P>>,
    /// Index of the selected point, if any candidate met the target.
    pub best: Option<usize>,
    /// The precision target used for selection.
    pub target_precision: f64,
}

impl<P> GridSearch<P> {
    fn select(points: Vec<GridPoint<P>>, target_precision: f64) -> GridSearch<P> {
        let best = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.outcome.precision() >= target_precision)
            .max_by(|(_, a), (_, b)| {
                a.outcome
                    .recall()
                    .partial_cmp(&b.outcome.recall())
                    .expect("recall is finite")
            })
            .map(|(i, _)| i);
        GridSearch {
            points,
            best,
            target_precision,
        }
    }

    /// The winning parameters, if any candidate met the target.
    pub fn best_params(&self) -> Option<&P> {
        self.best.map(|i| &self.points[i].params)
    }
}

/// The θ values the paper sweeps: 0.01 to 0.15.
pub fn paper_theta_grid() -> Vec<f64> {
    (1..=15).map(|i| i as f64 / 100.0).collect()
}

/// Sweep the field-correlation threshold θ (§5.2) and score each value on
/// the validation year at `granularity` days (the paper quotes the daily
/// numbers).
pub fn theta_grid_search(
    filtered: &ChangeCube,
    split: &EvalSplit,
    base: &FieldCorrelationParams,
    thetas: &[f64],
    granularity: u32,
) -> GridSearch<FieldCorrelationParams> {
    let index = CubeIndex::build(filtered);
    let data = EvalData::new(filtered, &index);
    let truth = truth_set(&index, split.validation, granularity);
    let points = thetas
        .iter()
        .map(|&theta| {
            let params = FieldCorrelationParams {
                theta,
                ..base.clone()
            };
            let fc = FieldCorrelation::train(&data, split.train, params.clone());
            let set = fc.predict(&data, split.validation, granularity);
            GridPoint {
                params,
                outcome: evaluate(&set, &truth),
            }
        })
        .collect();
    GridSearch::select(points, crate::TARGET_PRECISION)
}

/// The Apriori grid the `gridsearch` experiment sweeps by default:
/// min-support × min-confidence × validation fraction, centered on the
/// paper's optimum (0.25 %, 60 %, 10 %).
pub fn paper_apriori_grid() -> Vec<AssocParams> {
    let mut grid = Vec::new();
    for &support in &[0.001, 0.0025, 0.005, 0.01] {
        for &confidence in &[0.5, 0.6, 0.7, 0.8] {
            for &fraction in &[0.05, 0.10, 0.20] {
                grid.push(AssocParams {
                    apriori: AprioriParams {
                        min_support: Support::Fraction(support),
                        min_confidence: confidence,
                        max_itemset_size: 2,
                    },
                    validation_fraction: fraction,
                    min_rule_precision: 0.90,
                    keep_unvalidated_rules: false,
                });
            }
        }
    }
    grid
}

/// Sweep association-rule parameters (§5.2) on the validation year.
pub fn apriori_grid_search(
    filtered: &ChangeCube,
    split: &EvalSplit,
    candidates: Vec<AssocParams>,
    granularity: u32,
) -> GridSearch<AssocParams> {
    let index = CubeIndex::build(filtered);
    let data = EvalData::new(filtered, &index);
    let truth = truth_set(&index, split.validation, granularity);
    let points = candidates
        .into_iter()
        .map(|params| {
            let ar = AssociationRulePredictor::train(&data, split.train, params.clone());
            let set = ar.predict(&data, split.validation, granularity);
            GridPoint {
                params,
                outcome: evaluate(&set, &truth),
            }
        })
        .collect();
    GridSearch::select(points, crate::TARGET_PRECISION)
}

/// Convenience: an [`ExperimentConfig`] assembled from grid-search
/// winners, falling back to the paper defaults where a search found no
/// qualifying candidate.
pub fn config_from_searches(
    theta: &GridSearch<FieldCorrelationParams>,
    apriori: &GridSearch<AssocParams>,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::default();
    if let Some(p) = theta.best_params() {
        config.field_corr = p.clone();
    }
    if let Some(p) = apriori.best_params() {
        config.assoc = p.clone();
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterPipeline;
    use wikistale_synth::{generate, SynthConfig};

    fn filtered_tiny() -> (ChangeCube, EvalSplit) {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        (filtered, split)
    }

    #[test]
    fn paper_grids_have_expected_shape() {
        let thetas = paper_theta_grid();
        assert_eq!(thetas.len(), 15);
        assert!((thetas[0] - 0.01).abs() < 1e-12);
        assert!((thetas[14] - 0.15).abs() < 1e-12);
        assert_eq!(paper_apriori_grid().len(), 4 * 4 * 3);
    }

    #[test]
    fn theta_search_selects_qualifying_point() {
        let (filtered, split) = filtered_tiny();
        let search = theta_grid_search(
            &filtered,
            &split,
            &FieldCorrelationParams::default(),
            &[0.02, 0.1],
            7,
        );
        assert_eq!(search.points.len(), 2);
        if let Some(best) = search.best {
            let b = &search.points[best];
            assert!(b.outcome.precision() >= search.target_precision);
            // No qualifying point has strictly higher recall.
            for p in &search.points {
                if p.outcome.precision() >= search.target_precision {
                    assert!(p.outcome.recall() <= b.outcome.recall() + 1e-12);
                }
            }
        }
    }

    #[test]
    fn selection_rule_max_recall_under_target() {
        let mk = |precision: f64, recall: f64| {
            // Construct an outcome with the given rates over 1000 truths.
            let predictions = 1000usize;
            let tp = (precision * predictions as f64) as usize;
            let truth_total = (tp as f64 / recall.max(1e-9)) as usize;
            GridPoint {
                params: (),
                outcome: EvalOutcome {
                    predictions,
                    true_positives: tp,
                    truth_total,
                },
            }
        };
        let points = vec![
            mk(0.95, 0.02),
            mk(0.88, 0.05), // winner: qualifies, highest recall
            mk(0.70, 0.50), // disqualified by precision
        ];
        let search = GridSearch::select(points, 0.85);
        assert_eq!(search.best, Some(1));
        let none = GridSearch::select(vec![mk(0.5, 0.9)], 0.85);
        assert!(none.best.is_none());
        assert!(none.best_params().is_none());
    }
}
