//! Precision / recall evaluation of prediction sets (§5).

use crate::predictions::PredictionSet;
use wikistale_wikicube::{CubeIndex, DateRange};

/// Evaluation result of one predictor at one granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// Positive predictions (true + false positives — the paper's "#").
    pub predictions: usize,
    /// Predictions whose field indeed changed in the window.
    pub true_positives: usize,
    /// Total (field, window) pairs with a change — the recall denominator.
    pub truth_total: usize,
}

impl EvalOutcome {
    /// `TP / (TP + FP)`; 0 when nothing was predicted (a predictor that
    /// stays silent earns no precision).
    pub fn precision(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.predictions as f64
        }
    }

    /// `TP / truth`; 0 for an empty truth set.
    pub fn recall(&self) -> f64 {
        if self.truth_total == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.truth_total as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// 95 % Wilson score interval for the precision — how much the
    /// measured rate could move given the number of predictions it is
    /// based on. The paper quotes point estimates on ~10⁵ predictions
    /// where the interval is negligible; at laptop scale it is not, so
    /// honest comparisons should carry it.
    pub fn precision_ci95(&self) -> (f64, f64) {
        wilson_interval(self.true_positives, self.predictions)
    }
}

/// 95 % Wilson score interval for `successes` out of `trials`.
/// Returns `(0, 1)` for zero trials.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    const Z: f64 = 1.959_963_985; // 97.5th percentile of the normal
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = Z * Z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (Z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The ground-truth positive set: every (field, window) pair in which the
/// field actually changed.
///
/// This is what the paper measures against — note §5.4's caveat that a
/// *genuinely* forgotten update counts as a false positive here.
pub fn truth_set(index: &CubeIndex, range: DateRange, granularity: u32) -> PredictionSet {
    // Field chunks produce (field, window) items independently; the
    // chunk results are concatenated in chunk (= field) order and the
    // final sort+dedup in `from_items` canonicalizes, so the set is
    // byte-identical at any thread count.
    let probe = PredictionSet::new(range, granularity);
    let chunk_items =
        wikistale_exec::par_ranges("truth_fields", index.num_fields(), 4_096, |positions| {
            let mut items: Vec<(u32, u32)> = Vec::new();
            for pos in positions {
                for day in index.days(pos).iter_in(range) {
                    if let Some(window) = probe.window_of(day) {
                        items.push((pos as u32, window));
                    }
                }
            }
            items
        });
    PredictionSet::from_items(range, granularity, chunk_items.concat())
}

/// Score `predictions` against `truth`.
pub fn evaluate(predictions: &PredictionSet, truth: &PredictionSet) -> EvalOutcome {
    EvalOutcome {
        predictions: predictions.len(),
        true_positives: predictions.intersection_len(truth),
        truth_total: truth.len(),
    }
}

/// Per-window outcomes (Figure 4: precision and recall over the 52 weeks
/// of the test year at 7-day granularity).
pub fn per_window_series(predictions: &PredictionSet, truth: &PredictionSet) -> Vec<EvalOutcome> {
    assert_eq!(predictions.granularity(), truth.granularity());
    assert_eq!(predictions.range(), truth.range());
    let n = predictions.num_windows() as usize;
    let mut out = vec![
        EvalOutcome {
            predictions: 0,
            true_positives: 0,
            truth_total: 0,
        };
        n
    ];
    for &(_, w) in predictions.items() {
        out[w as usize].predictions += 1;
    }
    for &(_, w) in truth.items() {
        out[w as usize].truth_total += 1;
    }
    // True positives via one merge pass.
    let (mut i, mut j) = (0, 0);
    let (a, b) = (predictions.items(), truth.items());
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out[a[i].1 as usize].true_positives += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Overlap statistics between two predictors' positive sets (§5.3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// `|A ∩ B|`.
    pub shared: usize,
    /// `|A|`.
    pub a_total: usize,
    /// `|B|`.
    pub b_total: usize,
}

impl Overlap {
    /// Shared fraction of A's predictions.
    pub fn of_a(&self) -> f64 {
        if self.a_total == 0 {
            0.0
        } else {
            self.shared as f64 / self.a_total as f64
        }
    }

    /// Shared fraction of B's predictions.
    pub fn of_b(&self) -> f64 {
        if self.b_total == 0 {
            0.0
        } else {
            self.shared as f64 / self.b_total as f64
        }
    }
}

/// Compute prediction overlap between two predictors.
pub fn overlap(a: &PredictionSet, b: &PredictionSet) -> Overlap {
    Overlap {
        shared: a.intersection_len(b),
        a_total: a.len(),
        b_total: b.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, Date};

    fn range() -> DateRange {
        DateRange::with_len(Date::EPOCH, 28)
    }

    fn set(items: &[(u32, u32)]) -> PredictionSet {
        PredictionSet::from_items(range(), 7, items.to_vec())
    }

    #[test]
    fn outcome_math() {
        let o = EvalOutcome {
            predictions: 10,
            true_positives: 9,
            truth_total: 100,
        };
        assert!((o.precision() - 0.9).abs() < 1e-12);
        assert!((o.recall() - 0.09).abs() < 1e-12);
        assert!(o.f1() > 0.0);
        let silent = EvalOutcome {
            predictions: 0,
            true_positives: 0,
            truth_total: 5,
        };
        assert_eq!(silent.precision(), 0.0);
        assert_eq!(silent.recall(), 0.0);
        assert_eq!(silent.f1(), 0.0);
    }

    #[test]
    fn wilson_interval_behaviour() {
        // Degenerate cases.
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 10);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.35);
        let (lo, hi) = wilson_interval(10, 10);
        assert!(lo > 0.65 && lo < 1.0);
        assert_eq!(hi, 1.0);
        // Interval contains the point estimate and shrinks with n.
        let narrow = wilson_interval(900, 1000);
        let wide = wilson_interval(9, 10);
        assert!(narrow.0 <= 0.9 && 0.9 <= narrow.1);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
        // Known value: 85/100 → roughly [0.766, 0.907].
        let (lo, hi) = wilson_interval(85, 100);
        assert!((lo - 0.766).abs() < 0.01, "{lo}");
        assert!((hi - 0.907).abs() < 0.01, "{hi}");
        // Through the outcome accessor.
        let o = EvalOutcome {
            predictions: 100,
            true_positives: 85,
            truth_total: 1000,
        };
        assert_eq!(o.precision_ci95(), wilson_interval(85, 100));
    }

    #[test]
    fn truth_set_marks_changed_windows() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        let q = b.property("q");
        b.change(Date::EPOCH + 1, e, p, "a", ChangeKind::Update); // window 0
        b.change(Date::EPOCH + 8, e, p, "b", ChangeKind::Update); // window 1
        b.change(Date::EPOCH + 9, e, p, "c", ChangeKind::Update); // window 1 (dedup)
        b.change(Date::EPOCH + 27, e, q, "d", ChangeKind::Update); // window 3
        b.change(Date::EPOCH + 100, e, q, "e", ChangeKind::Update); // outside
        let cube = b.finish();
        let index = wikistale_wikicube::CubeIndex::build(&cube);
        let truth = truth_set(&index, range(), 7);
        assert_eq!(truth.len(), 3);
        // Field positions are (entity, property)-sorted: p=0, q=1.
        assert!(truth.contains(0, 0));
        assert!(truth.contains(0, 1));
        assert!(truth.contains(1, 3));
    }

    #[test]
    fn evaluate_counts() {
        let truth = set(&[(0, 0), (0, 1), (1, 2)]);
        let pred = set(&[(0, 0), (1, 2), (2, 3)]);
        let o = evaluate(&pred, &truth);
        assert_eq!(o.predictions, 3);
        assert_eq!(o.true_positives, 2);
        assert_eq!(o.truth_total, 3);
    }

    #[test]
    fn per_window_series_sums_to_totals() {
        let truth = set(&[(0, 0), (0, 1), (1, 1), (1, 3)]);
        let pred = set(&[(0, 0), (1, 1), (2, 1)]);
        let series = per_window_series(&pred, &truth);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].predictions, 1);
        assert_eq!(series[0].true_positives, 1);
        assert_eq!(series[1].predictions, 2);
        assert_eq!(series[1].true_positives, 1);
        assert_eq!(series[1].truth_total, 2);
        let total: usize = series.iter().map(|o| o.true_positives).sum();
        assert_eq!(total, evaluate(&pred, &truth).true_positives);
    }

    #[test]
    fn overlap_fractions() {
        let a = set(&[(0, 0), (1, 1), (2, 2)]);
        let b = set(&[(1, 1), (2, 2), (3, 3), (4, 0)]);
        let o = overlap(&a, &b);
        assert_eq!(o.shared, 2);
        assert!((o.of_a() - 2.0 / 3.0).abs() < 1e-12);
        assert!((o.of_b() - 0.5).abs() < 1e-12);
        let empty = overlap(&set(&[]), &set(&[]));
        assert_eq!(empty.of_a(), 0.0);
        assert_eq!(empty.of_b(), 0.0);
    }
}
