//! The noise-filter pipeline of §4.
//!
//! Before training, the paper removes data that carries no update signal:
//!
//! 1. changes directly reverted by Wikipedia bots (0.008 % of the raw
//!    corpus),
//! 2. same-day churn: all changes of one field on one day collapse into a
//!    single *representative* change — the mode of the day's values,
//!    most-recent value on ties (19.185 % of the raw corpus),
//! 3. creations and deletions, which the predictors do not model
//!    (61.373 %),
//! 4. changes of fields with fewer than five remaining changes
//!    (10.241 %),
//!
//! leaving 9.2 % of the raw changes. [`FilterPipeline::apply`] reproduces
//! the pipeline and reports per-stage removal counts so the `dataset_stats`
//! experiment can print them next to the paper's numbers.

use wikistale_wikicube::{Change, ChangeCube, ChangeKind, FieldId, FxHashMap};

/// Which filter stages to run. [`FilterPipeline::paper`] enables all four.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterPipeline {
    /// Drop changes flagged as bot-reverted.
    pub drop_bot_reverted: bool,
    /// Collapse each field's same-day changes into a representative.
    pub dedup_days: bool,
    /// Drop creations and deletions.
    pub drop_creations_deletions: bool,
    /// Drop fields with fewer than this many changes (`None` disables; the
    /// paper uses `Some(5)`).
    pub min_changes: Option<usize>,
}

impl FilterPipeline {
    /// The full pipeline of §4.
    pub fn paper() -> FilterPipeline {
        FilterPipeline {
            drop_bot_reverted: true,
            dedup_days: true,
            drop_creations_deletions: true,
            min_changes: Some(5),
        }
    }

    /// The §4 ablation: everything except the minimum-change filter (the
    /// paper notes the association rules reach similar precision without
    /// it).
    pub fn without_min_changes() -> FilterPipeline {
        FilterPipeline {
            min_changes: None,
            ..FilterPipeline::paper()
        }
    }

    /// Run the enabled stages in paper order, returning the filtered cube
    /// and the per-stage report.
    pub fn apply(&self, cube: &ChangeCube) -> (ChangeCube, FilterReport) {
        let obs = wikistale_obs::MetricsRegistry::global();
        let _span = obs.span("filter");
        let original = cube.num_changes();
        let mut report = FilterReport {
            original,
            stages: Vec::with_capacity(4),
        };
        let mut current = cube.clone();

        if self.drop_bot_reverted {
            let _s = obs.span("bot_reverted");
            let next = current.retain_changes(|c| !c.flags.is_bot_reverted());
            report.push_stage("bot-reverted", &current, &next);
            current = next;
        }
        if self.dedup_days {
            let _s = obs.span("dedup_days");
            let next = current
                .with_changes(dedup_days(current.iter_changes()))
                .expect("dedup preserves referential integrity");
            report.push_stage("same-day duplicates", &current, &next);
            current = next;
        }
        if self.drop_creations_deletions {
            let _s = obs.span("creations_deletions");
            let next = current.retain_changes(|c| c.kind == ChangeKind::Update);
            report.push_stage("creations & deletions", &current, &next);
            current = next;
        }
        if let Some(min) = self.min_changes {
            let _s = obs.span("min_changes");
            let mut counts: FxHashMap<FieldId, usize> = FxHashMap::default();
            for c in current.iter_changes() {
                *counts.entry(c.field()).or_insert(0) += 1;
            }
            let next = current.retain_changes(|c| counts[&c.field()] >= min);
            report.push_stage("fields with < min changes", &current, &next);
            current = next;
        }
        obs.counter("filter/removed")
            .add((original - current.num_changes()) as u64);
        obs.counter("filter/surviving")
            .add(current.num_changes() as u64);
        (current, report)
    }
}

impl Default for FilterPipeline {
    fn default() -> FilterPipeline {
        FilterPipeline::paper()
    }
}

/// Collapse each field's changes of one day into a representative change:
/// the mode of the day's values; ties keep the most recent value.
///
/// [`ChangeCube`] construction already canonicalizes same-day writes to
/// one slot (last value wins), so on cubes built by this workspace each
/// group has size one and the stage removes nothing; it remains as
/// defense in depth for change tables assembled outside the constructor
/// and to keep the report's stage list aligned with the paper's §4.
///
/// The input must be in canonical `(day, entity, property)` order (as
/// [`ChangeCube::iter_changes`] guarantees), which makes each (field, day)
/// group contiguous.
fn dedup_days(changes: impl IntoIterator<Item = Change>) -> Vec<Change> {
    let mut out = Vec::new();
    let mut group: Vec<Change> = Vec::new();
    for c in changes {
        if let Some(head) = group.first() {
            if (head.day, head.entity, head.property) != (c.day, c.entity, c.property) {
                out.push(representative(&group));
                group.clear();
            }
        }
        group.push(c);
    }
    if !group.is_empty() {
        out.push(representative(&group));
    }
    out
}

/// Pick the representative of one (field, day) group: the latest change
/// whose value is the (most recent on ties) mode of the group's values.
fn representative(group: &[Change]) -> Change {
    debug_assert!(!group.is_empty());
    if group.len() == 1 {
        return group[0];
    }
    // Group sizes are tiny (vandalism bursts); count by value id directly.
    let mut best = group[0];
    let mut best_count = 0usize;
    for (idx, c) in group.iter().enumerate() {
        let count = group.iter().filter(|o| o.value == c.value).count();
        // `>=` prefers later changes: most recent value wins ties, and the
        // latest occurrence of the winning value is kept.
        if count >= best_count {
            best = group[idx];
            best_count = count;
        }
    }
    best
}

/// One stage's effect inside a [`FilterReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterStage {
    /// Human-readable stage name.
    pub name: &'static str,
    /// Changes removed by this stage.
    pub removed: usize,
    /// Changes remaining after this stage.
    pub remaining: usize,
}

/// Per-stage accounting of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterReport {
    /// Changes before any filtering.
    pub original: usize,
    /// Stages in execution order.
    pub stages: Vec<FilterStage>,
}

impl FilterReport {
    fn push_stage(&mut self, name: &'static str, before: &ChangeCube, after: &ChangeCube) {
        self.stages.push(FilterStage {
            name,
            removed: before.num_changes() - after.num_changes(),
            remaining: after.num_changes(),
        });
    }

    /// Fraction of the *original* corpus a stage removed — the way the
    /// paper reports its percentages (they sum to 100 % − 9.2 %).
    pub fn removed_fraction_of_original(&self, stage: usize) -> f64 {
        if self.original == 0 {
            0.0
        } else {
            self.stages[stage].removed as f64 / self.original as f64
        }
    }

    /// Fraction of the original corpus that survived all stages.
    pub fn surviving_fraction(&self) -> f64 {
        if self.original == 0 {
            return 0.0;
        }
        let last = self.stages.last().map_or(self.original, |s| s.remaining);
        last as f64 / self.original as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeFlags, Date};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    #[test]
    fn bot_reverted_changes_are_dropped() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(day(1), e, p, "a", ChangeKind::Update);
        b.change_full(
            day(2),
            e,
            p,
            "b",
            ChangeKind::Update,
            ChangeFlags::BOT_REVERTED,
        );
        let pipeline = FilterPipeline {
            drop_bot_reverted: true,
            dedup_days: false,
            drop_creations_deletions: false,
            min_changes: None,
        };
        let (cube, report) = pipeline.apply(&b.finish());
        assert_eq!(cube.num_changes(), 1);
        assert_eq!(report.stages[0].removed, 1);
        assert_eq!(report.stages[0].name, "bot-reverted");
    }

    #[test]
    fn dedup_picks_mode_value() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        // Vandal value once, real value twice → mode is the real value.
        b.change(day(1), e, p, "vandal", ChangeKind::Update);
        b.change(day(1), e, p, "real", ChangeKind::Update);
        b.change(day(1), e, p, "real", ChangeKind::Update);
        let pipeline = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: true,
            drop_creations_deletions: false,
            min_changes: None,
        };
        let (cube, _) = pipeline.apply(&b.finish());
        assert_eq!(cube.num_changes(), 1);
        assert_eq!(cube.value_text(cube.change_at(0).value), "real");
    }

    #[test]
    fn dedup_tie_keeps_most_recent() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(day(1), e, p, "first", ChangeKind::Update);
        b.change(day(1), e, p, "second", ChangeKind::Update);
        let (cube, _) = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: true,
            drop_creations_deletions: false,
            min_changes: None,
        }
        .apply(&b.finish());
        assert_eq!(cube.num_changes(), 1);
        assert_eq!(cube.value_text(cube.change_at(0).value), "second");
    }

    #[test]
    fn dedup_is_per_field_and_per_day() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        let q = b.property("q");
        b.change(day(1), e, p, "a", ChangeKind::Update);
        b.change(day(1), e, q, "b", ChangeKind::Update); // other field
        b.change(day(2), e, p, "c", ChangeKind::Update); // other day
        let (cube, report) = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: true,
            drop_creations_deletions: false,
            min_changes: None,
        }
        .apply(&b.finish());
        assert_eq!(cube.num_changes(), 3);
        assert_eq!(report.stages[0].removed, 0);
    }

    #[test]
    fn creations_and_deletions_dropped() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(day(0), e, p, "a", ChangeKind::Create);
        b.change(day(1), e, p, "b", ChangeKind::Update);
        b.change(day(2), e, p, "", ChangeKind::Delete);
        let (cube, report) = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: false,
            drop_creations_deletions: true,
            min_changes: None,
        }
        .apply(&b.finish());
        assert_eq!(cube.num_changes(), 1);
        assert_eq!(cube.change_at(0).kind, ChangeKind::Update);
        assert_eq!(report.stages[0].removed, 2);
    }

    #[test]
    fn min_changes_drops_sparse_fields() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let busy = b.property("busy");
        let quiet = b.property("quiet");
        for d in 0..5 {
            b.change(day(d), e, busy, "v", ChangeKind::Update);
        }
        for d in 0..4 {
            b.change(day(d), e, quiet, "v", ChangeKind::Update);
        }
        let (cube, report) = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: false,
            drop_creations_deletions: false,
            min_changes: Some(5),
        }
        .apply(&b.finish());
        assert_eq!(cube.num_changes(), 5);
        assert_eq!(report.stages[0].removed, 4);
        assert!(cube
            .iter_changes()
            .all(|c| cube.property_name(c.property) == "busy"));
    }

    #[test]
    fn full_pipeline_reports_all_stages_and_fractions() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(day(0), e, p, "init", ChangeKind::Create);
        for d in 1..=6 {
            b.change(day(d), e, p, &format!("v{d}"), ChangeKind::Update);
        }
        // Same-day duplicate: collapsed by cube canonicalization before the
        // pipeline ever sees it, so it does not count toward `original`.
        b.change(day(6), e, p, "v6-later", ChangeKind::Update);
        b.change_full(
            day(7),
            e,
            p,
            "x",
            ChangeKind::Update,
            ChangeFlags::BOT_REVERTED,
        );
        let (cube, report) = FilterPipeline::paper().apply(&b.finish());
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.original, 8);
        // bot (1) and create (1) removed; 6 updates ≥ 5 survive.
        assert_eq!(cube.num_changes(), 6);
        let total_removed: usize = report.stages.iter().map(|s| s.removed).sum();
        assert_eq!(total_removed + cube.num_changes(), report.original);
        let frac_sum: f64 = (0..4)
            .map(|i| report.removed_fraction_of_original(i))
            .sum::<f64>()
            + report.surviving_fraction();
        assert!((frac_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_preserves_sort_order_for_downstream_filters() {
        // After dedup the cube must still be canonically ordered so a
        // second application is a no-op (idempotence).
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        for d in 0..3 {
            b.change(day(d), e, p, "a", ChangeKind::Update);
            b.change(day(d), e, p, "b", ChangeKind::Update);
        }
        let pipeline = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: true,
            drop_creations_deletions: false,
            min_changes: None,
        };
        let (once, _) = pipeline.apply(&b.finish());
        let (twice, report) = pipeline.apply(&once);
        assert_eq!(once.changes_vec(), twice.changes_vec());
        assert_eq!(report.stages[0].removed, 0);
    }

    #[test]
    fn empty_cube_passes_through() {
        let (cube, report) = FilterPipeline::paper().apply(&ChangeCubeBuilder::new().finish());
        assert_eq!(cube.num_changes(), 0);
        assert_eq!(report.surviving_fraction(), 0.0);
    }
}
