//! The prediction-set representation shared by all predictors.
//!
//! A prediction is a pair *(field, window)*: "field `f` should change
//! within tumbling window `w`". For one evaluation range and granularity
//! the windows are dense indices `0..num_windows`, and fields are the
//! dense positions of a [`wikistale_wikicube::CubeIndex`], so a whole
//! prediction set is a sorted, deduplicated `Vec<(u32, u32)>` — set
//! algebra (the ensembles of §3.4 and the precision/recall counts of §5)
//! becomes linear merges.

use wikistale_wikicube::{Date, DateRange};

/// A set of positive *(field position, window index)* predictions for one
/// evaluation range and granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictionSet {
    range: DateRange,
    granularity: u32,
    num_windows: u32,
    items: Vec<(u32, u32)>,
}

impl PredictionSet {
    /// Create an empty set for `range` split into `granularity`-day
    /// tumbling windows (incomplete trailing windows are disregarded,
    /// §5.1).
    pub fn new(range: DateRange, granularity: u32) -> PredictionSet {
        assert!(granularity > 0, "granularity must be positive");
        PredictionSet {
            range,
            granularity,
            num_windows: range.len_days() / granularity,
            items: Vec::new(),
        }
    }

    /// Build from an unsorted, possibly duplicated item list.
    pub fn from_items(
        range: DateRange,
        granularity: u32,
        mut items: Vec<(u32, u32)>,
    ) -> PredictionSet {
        let mut set = PredictionSet::new(range, granularity);
        items.sort_unstable();
        items.dedup();
        debug_assert!(items.iter().all(|&(_, w)| w < set.num_windows));
        set.items = items;
        set
    }

    /// The evaluation range the windows tile.
    pub fn range(&self) -> DateRange {
        self.range
    }

    /// Window size in days.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Number of complete tumbling windows.
    pub fn num_windows(&self) -> u32 {
        self.num_windows
    }

    /// The window index containing `day`, if the day falls into a complete
    /// window of the range.
    pub fn window_of(&self, day: Date) -> Option<u32> {
        if day < self.range.start() {
            return None;
        }
        let idx = (day - self.range.start()) as u32 / self.granularity;
        (idx < self.num_windows).then_some(idx)
    }

    /// The day range of window `idx`.
    pub fn window_range(&self, idx: u32) -> DateRange {
        assert!(idx < self.num_windows, "window {idx} out of range");
        DateRange::with_len(
            self.range
                .start()
                .plus_days((idx * self.granularity) as i32),
            self.granularity,
        )
    }

    /// Record a positive prediction for `day`'s window (ignored when the
    /// day falls outside every complete window). Call [`Self::seal`] after
    /// the last insertion.
    pub fn insert_day(&mut self, field_pos: u32, day: Date) {
        if let Some(w) = self.window_of(day) {
            self.items.push((field_pos, w));
        }
    }

    /// Record a positive prediction for an explicit window index.
    pub fn insert(&mut self, field_pos: u32, window: u32) {
        debug_assert!(window < self.num_windows);
        self.items.push((field_pos, window));
    }

    /// Sort and deduplicate after a batch of insertions.
    pub fn seal(&mut self) {
        self.items.sort_unstable();
        self.items.dedup();
    }

    /// Number of positive predictions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no prediction was made.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted, deduplicated items.
    pub fn items(&self) -> &[(u32, u32)] {
        &self.items
    }

    /// Whether `(field_pos, window)` is predicted positive.
    pub fn contains(&self, field_pos: u32, window: u32) -> bool {
        self.items.binary_search(&(field_pos, window)).is_ok()
    }

    /// Set union (the OR-ensemble primitive). Panics if the sets tile
    /// different ranges or granularities.
    pub fn union(&self, other: &PredictionSet) -> PredictionSet {
        self.assert_compatible(other);
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        merge(&self.items, &other.items, &mut items, MergeKind::Union);
        PredictionSet { items, ..*self }
    }

    /// Set intersection (the AND-ensemble primitive).
    pub fn intersection(&self, other: &PredictionSet) -> PredictionSet {
        self.assert_compatible(other);
        let mut items = Vec::new();
        merge(
            &self.items,
            &other.items,
            &mut items,
            MergeKind::Intersection,
        );
        PredictionSet { items, ..*self }
    }

    /// Number of items both sets share (used by the §5.3.4 overlap
    /// analysis) without materializing the intersection.
    pub fn intersection_len(&self, other: &PredictionSet) -> usize {
        self.assert_compatible(other);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    fn assert_compatible(&self, other: &PredictionSet) {
        assert_eq!(self.range, other.range, "prediction ranges differ");
        assert_eq!(
            self.granularity, other.granularity,
            "prediction granularities differ"
        );
    }
}

enum MergeKind {
    Union,
    Intersection,
}

fn merge(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>, kind: MergeKind) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                if matches!(kind, MergeKind::Union) {
                    out.push(a[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if matches!(kind, MergeKind::Union) {
                    out.push(b[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    if matches!(kind, MergeKind::Union) {
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn range() -> DateRange {
        DateRange::with_len(Date::TEST_START, 365)
    }

    fn set(items: &[(u32, u32)]) -> PredictionSet {
        PredictionSet::from_items(range(), 7, items.to_vec())
    }

    #[test]
    fn window_counts_match_paper() {
        assert_eq!(PredictionSet::new(range(), 1).num_windows(), 365);
        assert_eq!(PredictionSet::new(range(), 7).num_windows(), 52);
        assert_eq!(PredictionSet::new(range(), 30).num_windows(), 12);
        assert_eq!(PredictionSet::new(range(), 365).num_windows(), 1);
    }

    #[test]
    fn window_of_day() {
        let s = PredictionSet::new(range(), 7);
        assert_eq!(s.window_of(Date::TEST_START), Some(0));
        assert_eq!(s.window_of(Date::TEST_START + 6), Some(0));
        assert_eq!(s.window_of(Date::TEST_START + 7), Some(1));
        // Day 364 falls in the disregarded 53rd week.
        assert_eq!(s.window_of(Date::TEST_START + 364), None);
        assert_eq!(s.window_of(Date::TEST_START - 1), None);
    }

    #[test]
    fn window_range_round_trips() {
        let s = PredictionSet::new(range(), 30);
        for idx in 0..s.num_windows() {
            let w = s.window_range(idx);
            assert_eq!(s.window_of(w.start()), Some(idx));
            assert_eq!(s.window_of(w.end() - 1), Some(idx));
        }
    }

    #[test]
    fn insert_day_ignores_out_of_window_days() {
        let mut s = PredictionSet::new(range(), 7);
        s.insert_day(0, Date::TEST_START + 364); // disregarded tail
        s.insert_day(0, Date::TEST_START + 3);
        s.insert_day(0, Date::TEST_START + 3); // duplicate
        s.seal();
        assert_eq!(s.items(), &[(0, 0)]);
        assert!(s.contains(0, 0));
        assert!(!s.contains(0, 1));
    }

    #[test]
    fn union_and_intersection() {
        let a = set(&[(0, 0), (1, 1), (2, 2)]);
        let b = set(&[(1, 1), (2, 3), (4, 0)]);
        let or = a.union(&b);
        assert_eq!(or.items(), &[(0, 0), (1, 1), (2, 2), (2, 3), (4, 0)]);
        let and = a.intersection(&b);
        assert_eq!(and.items(), &[(1, 1)]);
        assert_eq!(a.intersection_len(&b), 1);
        assert!(set(&[]).union(&set(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "granularities differ")]
    fn incompatible_sets_panic() {
        let a = PredictionSet::new(range(), 7);
        let b = PredictionSet::new(range(), 30);
        let _ = a.union(&b);
    }

    proptest! {
        #[test]
        fn prop_set_algebra(
            xs in proptest::collection::vec((0u32..30, 0u32..52), 0..80),
            ys in proptest::collection::vec((0u32..30, 0u32..52), 0..80),
        ) {
            use std::collections::BTreeSet;
            let a = set(&xs);
            let b = set(&ys);
            let sa: BTreeSet<(u32, u32)> = xs.iter().copied().collect();
            let sb: BTreeSet<(u32, u32)> = ys.iter().copied().collect();
            let union: Vec<(u32, u32)> = sa.union(&sb).copied().collect();
            let inter: Vec<(u32, u32)> = sa.intersection(&sb).copied().collect();
            let u = a.union(&b);
            let n = a.intersection(&b);
            prop_assert_eq!(u.items(), union.as_slice());
            prop_assert_eq!(n.items(), inter.as_slice());
            prop_assert_eq!(a.intersection_len(&b), inter.len());
            // AND ⊆ A ⊆ OR invariant.
            prop_assert!(a.intersection(&b).len() <= a.len());
            prop_assert!(a.len() <= a.union(&b).len());
        }
    }
}
