//! SVG rendering of the paper's figures.
//!
//! The experiment binaries print text tables for terminals; these
//! renderers additionally produce self-contained SVG files mirroring the
//! paper's Figure 3 (rules-per-template histogram, logarithmic x-axis)
//! and Figure 4 (precision and recall over the 52 test weeks). No
//! plotting dependency — the documents are assembled directly.

use crate::eval::EvalOutcome;
use crate::experiment::PaperResults;
use std::fmt::Write as _;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 320.0;
const MARGIN_LEFT: f64 = 56.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 28.0;
const MARGIN_BOTTOM: f64 = 44.0;

/// Series colors: field correlations, association rules, AND, OR.
const COLORS: [&str; 4] = ["#1b6ca8", "#c0392b", "#7d3c98", "#1e8449"];
const NAMES: [&str; 4] = [
    "Field correlations",
    "Association rules",
    "AND-ensemble",
    "OR-ensemble",
];

fn plot_x(i: usize, n: usize) -> f64 {
    let inner = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    MARGIN_LEFT + inner * (i as f64 + 0.5) / n as f64
}

fn plot_y(value: f64, lo: f64, hi: f64) -> f64 {
    let inner = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    HEIGHT - MARGIN_BOTTOM - inner * t
}

fn svg_open(out: &mut String, title: &str) {
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="11">"##
    );
    let _ = writeln!(
        out,
        r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{}" y="18" text-anchor="middle" font-size="13">{}</text>"##,
        WIDTH / 2.0,
        escape(title)
    );
}

fn axis(out: &mut String, y_label: &str, lo: f64, hi: f64, ticks: usize) {
    let x0 = MARGIN_LEFT;
    let x1 = WIDTH - MARGIN_RIGHT;
    let y0 = HEIGHT - MARGIN_BOTTOM;
    let _ = writeln!(
        out,
        r##"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#333"/>
<line x1="{x0}" y1="{MARGIN_TOP}" x2="{x0}" y2="{y0}" stroke="#333"/>"##
    );
    for t in 0..=ticks {
        let value = lo + (hi - lo) * t as f64 / ticks as f64;
        let y = plot_y(value, lo, hi);
        let _ = writeln!(
            out,
            r##"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="#333"/>
<text x="{}" y="{}" text-anchor="end">{value:.0}</text>"##,
            x0 - 4.0,
            x0 - 7.0,
            y + 4.0
        );
    }
    let _ = writeln!(
        out,
        r##"<text x="14" y="{}" transform="rotate(-90 14 {})" text-anchor="middle">{}</text>"##,
        (MARGIN_TOP + y0) / 2.0,
        (MARGIN_TOP + y0) / 2.0,
        escape(y_label)
    );
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Figure 3 as SVG: bar chart of how many templates discovered how many
/// association rules, on doubling buckets.
pub fn figure3_svg(results: &PaperResults) -> String {
    let max_rules = results
        .rules_per_template
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0);
    // Doubling buckets 1, 2-3, 4-7, …
    let mut buckets: Vec<(String, usize)> = Vec::new();
    let mut lo = 1usize;
    while lo <= max_rules.max(1) {
        let hi = lo * 2 - 1;
        let count = results
            .rules_per_template
            .iter()
            .filter(|&&(_, n)| n >= lo && n <= hi)
            .count();
        let label = if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}\u{2013}{hi}")
        };
        buckets.push((label, count));
        lo *= 2;
    }
    let y_max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1) as f64;

    let mut out = String::new();
    svg_open(
        &mut out,
        &format!(
            "Figure 3 — association rules per template ({} rules, {} templates)",
            results.num_assoc_rules,
            results.rules_per_template.len()
        ),
    );
    axis(&mut out, "Number of templates", 0.0, y_max, 4);
    let n = buckets.len();
    let inner = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let bar_w = (inner / n as f64) * 0.6;
    for (i, (label, count)) in buckets.iter().enumerate() {
        let cx = plot_x(i, n);
        let y = plot_y(*count as f64, 0.0, y_max);
        let y0 = HEIGHT - MARGIN_BOTTOM;
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{y:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}"/>
<text x="{cx:.1}" y="{:.1}" text-anchor="middle">{}</text>
<text x="{cx:.1}" y="{:.1}" text-anchor="middle" font-size="10">{count}</text>"##,
            cx - bar_w / 2.0,
            y0 - y,
            COLORS[0],
            y0 + 16.0,
            escape(label),
            y - 4.0,
        );
    }
    let _ = writeln!(
        out,
        r##"<text x="{}" y="{}" text-anchor="middle">Number of discovered association rules (doubling buckets)</text>"##,
        WIDTH / 2.0,
        HEIGHT - 8.0
    );
    out.push_str("</svg>\n");
    out
}

/// One panel of Figure 4: a metric over the 52 weeks for the four
/// predictors, plus the 85 % target line for the precision panel.
fn figure4_panel(
    title: &str,
    series: &[Vec<EvalOutcome>; 4],
    metric: impl Fn(&EvalOutcome) -> f64,
    lo: f64,
    hi: f64,
    target: Option<f64>,
) -> String {
    let mut out = String::new();
    svg_open(&mut out, title);
    axis(&mut out, "Percent", lo, hi, 4);
    let n = series[0].len();
    if let Some(t) = target {
        let y = plot_y(t, lo, hi);
        let _ = writeln!(
            out,
            r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#999" stroke-dasharray="5,4"/>"##,
            WIDTH - MARGIN_RIGHT
        );
    }
    for (s, (color, name)) in series.iter().zip(COLORS.iter().zip(NAMES)) {
        let points: String = s
            .iter()
            .enumerate()
            .map(|(i, o)| format!("{:.1},{:.1}", plot_x(i, n), plot_y(metric(o), lo, hi)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            r##"<polyline points="{points}" fill="none" stroke="{color}" stroke-width="1.6"/>"##
        );
        let _ = name;
    }
    // Legend.
    for (i, (color, name)) in COLORS.iter().zip(NAMES).enumerate() {
        let x = MARGIN_LEFT + 8.0 + 160.0 * (i as f64 % 2.0);
        let y = MARGIN_TOP + 14.0 * (i as f64 / 2.0).floor();
        let _ = writeln!(
            out,
            r##"<rect x="{x:.1}" y="{:.1}" width="10" height="3" fill="{color}"/>
<text x="{:.1}" y="{:.1}">{}</text>"##,
            y + 4.0,
            x + 14.0,
            y + 9.0,
            escape(name)
        );
    }
    // Week ticks every 10 weeks.
    for week in (0..n).step_by(10) {
        let x = plot_x(week, n);
        let _ = writeln!(
            out,
            r##"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{week}</text>"##,
            HEIGHT - MARGIN_BOTTOM + 16.0
        );
    }
    let _ = writeln!(
        out,
        r##"<text x="{}" y="{}" text-anchor="middle">Week</text>"##,
        WIDTH / 2.0,
        HEIGHT - 8.0
    );
    out.push_str("</svg>\n");
    out
}

/// Figure 4 as SVG: two stacked panels (precision, recall) over the test
/// weeks at 7-day granularity. Returns `None` when the results carry no
/// weekly series.
pub fn figure4_svg(results: &PaperResults) -> Option<String> {
    let seven = results.granularity(7)?;
    let series = seven.weekly_series.as_ref()?;
    let precision = figure4_panel(
        "Figure 4 (top) — precision over time, 7-day windows",
        series,
        |o| 100.0 * o.precision(),
        50.0,
        100.0,
        Some(85.0),
    );
    let recall = figure4_panel(
        "Figure 4 (bottom) — recall over time, 7-day windows",
        series,
        |o| 100.0 * o.recall(),
        0.0,
        30.0,
        None,
    );
    // Stack the two panels inside one valid outer document (nested <svg>
    // elements position their own viewport).
    Some(format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{h}\" \
         viewBox=\"0 0 {WIDTH} {h}\">\n{precision}<svg y=\"{HEIGHT}\">\n{recall}</svg>\n</svg>\n",
        h = 2.0 * HEIGHT,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_paper_evaluation, ExperimentConfig};
    use crate::filters::FilterPipeline;
    use crate::split::EvalSplit;
    use wikistale_synth::{generate, SynthConfig};

    fn results() -> PaperResults {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        run_paper_evaluation(&filtered, &split, &ExperimentConfig::default())
    }

    #[test]
    fn figure3_svg_is_well_formed() {
        let svg = figure3_svg(&results());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("association rules per template"));
        // Balanced document: one open, one close.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn figure4_svg_has_two_panels_and_target_line() {
        let svg = figure4_svg(&results()).expect("weekly series present");
        // One outer document, two panels, one positioning wrapper.
        assert_eq!(svg.matches("<svg").count(), 4);
        assert_eq!(svg.matches("</svg>").count(), 4);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 4 series per panel.
        assert_eq!(svg.matches("<polyline").count(), 8);
        assert!(svg.contains("stroke-dasharray")); // the 85 % line
        assert!(svg.contains("precision over time"));
        assert!(svg.contains("recall over time"));
    }

    #[test]
    fn empty_rule_set_still_renders() {
        let mut r = results();
        r.rules_per_template.clear();
        r.num_assoc_rules = 0;
        let svg = figure3_svg(&r);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        for i in 0..52 {
            let x = plot_x(i, 52);
            assert!((MARGIN_LEFT..=WIDTH - MARGIN_RIGHT).contains(&x));
        }
        for v in [0.0, 42.0, 100.0, -5.0, 120.0] {
            let y = plot_y(v, 0.0, 100.0);
            assert!(
                (MARGIN_TOP..=HEIGHT - MARGIN_BOTTOM).contains(&y),
                "{v} → {y}"
            );
        }
    }
}
