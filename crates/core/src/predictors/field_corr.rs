//! The field-correlation predictor (§3.2).
//!
//! Semantically linked fields of one page change in unison (a club's home
//! and away kit colors). The predictor represents each field's change
//! history as a vector of per-day change counts over the training range,
//! measures how *uncorrelated* two fields are with a normalized Manhattan
//! distance, and keeps same-page pairs below an error threshold θ as
//! symmetric rules `X ∼ Y`. At prediction time, a change to one side of a
//! rule inside a window predicts a change of the other side in the same
//! window.
//!
//! ## Distance normalization
//!
//! The paper describes M as "the Manhattan-distance normalized by the
//! vector length k" but also states that "1 indicates no overlapping
//! changes". The two statements disagree: dividing by the *dimension* k
//! (the number of training days) maps two disjoint sparse histories to a
//! value near 0, not 1. Dividing by the *total change mass* |X|₁ + |Y|₁ —
//! the maximum possible Manhattan distance of two non-negative vectors —
//! satisfies the stated semantics, keeps θ comparable across fields of
//! different activity, and is what makes an 85 %-precision operating point
//! reachable at all. We therefore default to
//! [`DistanceNorm::TotalMass`] and keep [`DistanceNorm::DayCount`]
//! (the literal reading) available for the ablation experiment, which
//! demonstrates its failure mode.

use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use crate::predictors::parallel_chunks;
use wikistale_wikicube::{Date, DateRange, FxHashMap, PageId};

/// How to normalize the Manhattan distance between change vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceNorm {
    /// Normalize by the summed change mass `|X|₁ + |Y|₁`: 0 means the
    /// fields always change together, 1 means they never do. The default.
    #[default]
    TotalMass,
    /// Normalize by the number of training days k (the paper's literal
    /// wording). Kept for the ablation bench: sparse disjoint histories
    /// score near 0 and flood the rule set with spurious pairs.
    DayCount,
}

/// Training parameters for [`FieldCorrelation`].
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCorrelationParams {
    /// Error threshold θ: pairs with distance below it become rules. The
    /// paper's grid search (§5.2) selects 0.1.
    pub theta: f64,
    /// Distance normalization (see module docs).
    pub norm: DistanceNorm,
    /// Delayed-update tolerance in days: two changes within this many days
    /// of each other count as co-changes during training. The paper tried
    /// delayed periods and found same-day (0) worked best (§3.2); the
    /// `ablation_lag` experiment reproduces that comparison.
    pub lag_days: u32,
}

impl Default for FieldCorrelationParams {
    fn default() -> FieldCorrelationParams {
        FieldCorrelationParams {
            theta: 0.1,
            norm: DistanceNorm::TotalMass,
            lag_days: 0,
        }
    }
}

/// Normalized Manhattan distance between two change-day histories
/// restricted to `range`.
///
/// Day lists must be sorted; duplicate days act as per-day counts, so the
/// function is exact both before and after day-deduplication. Returns 1.0
/// (maximally uncorrelated) when both histories are empty in `range`.
///
/// The result is always in `[0, 1]`. Under [`DistanceNorm::DayCount`] the
/// raw quotient can exceed 1 when per-day multiplicities push the change
/// mass past the day span (k days cannot normalize more than k changes of
/// disagreement), so that arm clamps to 1.0 — beyond "no overlapping
/// changes" there is no meaningful gradation, and an unclamped value
/// would make θ comparisons depend on history length rather than
/// correlation.
pub fn change_distance(a: &[Date], b: &[Date], range: DateRange, norm: DistanceNorm) -> f64 {
    let a = in_range(a, range);
    let b = in_range(b, range);
    let mut diff = 0u64; // Σ per-day |count_a − count_b|
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                let run = run_len(a, i);
                diff += run as u64;
                i += run;
            }
            std::cmp::Ordering::Greater => {
                let run = run_len(b, j);
                diff += run as u64;
                j += run;
            }
            std::cmp::Ordering::Equal => {
                let ra = run_len(a, i);
                let rb = run_len(b, j);
                diff += ra.abs_diff(rb) as u64;
                i += ra;
                j += rb;
            }
        }
    }
    diff += (a.len() - i) as u64 + (b.len() - j) as u64;

    match norm {
        DistanceNorm::TotalMass => {
            let mass = (a.len() + b.len()) as u64;
            if mass == 0 {
                1.0
            } else {
                diff as f64 / mass as f64
            }
        }
        DistanceNorm::DayCount => {
            if a.is_empty() && b.is_empty() {
                return 1.0;
            }
            let k = range.len_days().max(1);
            (diff as f64 / k as f64).min(1.0)
        }
    }
}

/// Lag-tolerant variant of [`change_distance`]: change days of the two
/// histories are greedily matched when they lie within `lag_days` of each
/// other; unmatched days contribute to the distance. With `lag_days = 0`
/// on day-deduplicated histories this equals [`change_distance`].
///
/// Greedy nearest-first matching over two sorted sequences is optimal for
/// interval matching, so the result is the true minimum number of
/// unmatched changes.
pub fn change_distance_lagged(
    a: &[Date],
    b: &[Date],
    range: DateRange,
    norm: DistanceNorm,
    lag_days: u32,
) -> f64 {
    if lag_days == 0 {
        return change_distance(a, b, range, norm);
    }
    let a = in_range(a, range);
    let b = in_range(b, range);
    let lag = lag_days as i32;
    let (mut i, mut j) = (0usize, 0usize);
    let mut unmatched = 0u64;
    while i < a.len() && j < b.len() {
        let delta = a[i] - b[j];
        if delta.abs() <= lag {
            i += 1;
            j += 1;
        } else if delta < 0 {
            unmatched += 1;
            i += 1;
        } else {
            unmatched += 1;
            j += 1;
        }
    }
    unmatched += (a.len() - i) as u64 + (b.len() - j) as u64;
    match norm {
        DistanceNorm::TotalMass => {
            let mass = (a.len() + b.len()) as u64;
            if mass == 0 {
                1.0
            } else {
                unmatched as f64 / mass as f64
            }
        }
        // Clamped for the same reason as in `change_distance`: more
        // unmatched changes than days would push the quotient past 1.
        DistanceNorm::DayCount => {
            if a.is_empty() && b.is_empty() {
                return 1.0;
            }
            (unmatched as f64 / range.len_days().max(1) as f64).min(1.0)
        }
    }
}

fn in_range(days: &[Date], range: DateRange) -> &[Date] {
    let lo = days.partition_point(|&d| d < range.start());
    let hi = days.partition_point(|&d| d < range.end());
    &days[lo..hi]
}

/// Length of the run of equal days starting at `i`.
fn run_len(days: &[Date], i: usize) -> usize {
    let day = days[i];
    days[i..].iter().take_while(|&&d| d == day).count()
}

/// The trained field-correlation predictor: a set of symmetric same-page
/// field-pair rules.
#[derive(Debug, Clone)]
pub struct FieldCorrelation {
    /// Adjacency: field position → correlated partner positions (sorted).
    partners: FxHashMap<u32, Vec<u32>>,
    /// Number of undirected rules.
    num_rules: usize,
    params: FieldCorrelationParams,
}

impl FieldCorrelation {
    /// Discover correlation rules from the change histories inside
    /// `range`, restricted to field pairs of the same page (§3.2's
    /// complexity reduction — the paper reports that cross-page search was
    /// computationally infeasible and symmetric-link variants gained
    /// recall only in the third decimal digit).
    pub fn train(
        data: &EvalData<'_>,
        range: DateRange,
        params: FieldCorrelationParams,
    ) -> FieldCorrelation {
        let index = data.index;
        let pages: Vec<PageId> = (0..index.num_pages())
            .map(PageId::from_index)
            .filter(|&p| index.fields_on_page(p).len() >= 2)
            .collect();

        let chunk_rules = parallel_chunks("field_corr_pages", &pages, 64, |chunk| {
            let mut rules: Vec<(u32, u32)> = Vec::new();
            for &page in chunk {
                let fields = index.fields_on_page(page);
                // Decode each field's delta-encoded day list once per
                // page; the pairwise distance loop reads plain slices.
                let decoded: Vec<Vec<Date>> = fields
                    .iter()
                    .map(|&f| index.days(f as usize).to_vec())
                    .collect();
                for (i, &a) in fields.iter().enumerate() {
                    let a_days = &decoded[i];
                    if in_range(a_days, range).is_empty() {
                        continue;
                    }
                    for (j, &b) in fields.iter().enumerate().skip(i + 1) {
                        let d = change_distance_lagged(
                            a_days,
                            &decoded[j],
                            range,
                            params.norm,
                            params.lag_days,
                        );
                        if d < params.theta {
                            rules.push((a, b));
                        }
                    }
                }
            }
            rules
        });

        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut num_rules = 0;
        for rules in chunk_rules {
            for (a, b) in rules {
                partners.entry(a).or_default().push(b);
                partners.entry(b).or_default().push(a);
                num_rules += 1;
            }
        }
        for list in partners.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        FieldCorrelation {
            partners,
            num_rules,
            params,
        }
    }

    /// Number of undirected correlation rules found.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// Number of fields that participate in at least one rule.
    pub fn num_correlated_fields(&self) -> usize {
        self.partners.len()
    }

    /// Partner positions of `field_pos`, if it participates in any rule.
    pub fn partners_of(&self, field_pos: u32) -> &[u32] {
        self.partners.get(&field_pos).map_or(&[], |v| v.as_slice())
    }

    /// Training parameters used.
    pub fn params(&self) -> &FieldCorrelationParams {
        &self.params
    }
}

impl ChangePredictor for FieldCorrelation {
    fn name(&self) -> &'static str {
        "Field correlations"
    }

    /// Predict a change for field *f* in window *w* whenever any partner
    /// of *f* changed inside *w*. *f*'s own in-window changes are never
    /// consulted, satisfying the masked-field protocol.
    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet {
        let mut set = PredictionSet::new(range, granularity);
        for (&field, partners) in &self.partners {
            for &partner in partners {
                for day in data.index.days(partner as usize).iter_in(range) {
                    set.insert_day(field, day);
                }
            }
        }
        set.seal();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex, FieldId};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn range(len: u32) -> DateRange {
        DateRange::with_len(Date::EPOCH, len)
    }

    #[test]
    fn distance_identical_zero_disjoint_one() {
        let a = [day(1), day(5), day(9)];
        let b = [day(2), day(6), day(10)];
        let r = range(100);
        assert_eq!(change_distance(&a, &a, r, DistanceNorm::TotalMass), 0.0);
        assert_eq!(change_distance(&a, &b, r, DistanceNorm::TotalMass), 1.0);
        // Literal day-count normalization: disjoint yet near zero — the
        // pathology the module docs describe.
        let dc = change_distance(&a, &b, r, DistanceNorm::DayCount);
        assert!((dc - 6.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn distance_partial_overlap() {
        let a = [day(1), day(2), day(3), day(4)];
        let b = [day(1), day(2), day(3), day(9)];
        // Symmetric difference 2, mass 8 → 0.25.
        let d = change_distance(&a, &b, range(100), DistanceNorm::TotalMass);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn distance_counts_multiplicity() {
        let a = [day(1), day(1), day(1)];
        let b = [day(1)];
        // Per-day counts 3 vs 1 → diff 2, mass 4 → 0.5.
        let d = change_distance(&a, &b, range(10), DistanceNorm::TotalMass);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distance_respects_range() {
        let a = [day(1), day(50)];
        let b = [day(1), day(60)];
        // Inside [0, 10): both have only day 1 → identical.
        assert_eq!(
            change_distance(&a, &b, range(10), DistanceNorm::TotalMass),
            0.0
        );
        // Empty range on both: maximally uncorrelated by convention.
        assert_eq!(
            change_distance(
                &a,
                &b,
                DateRange::with_len(day(70), 10),
                DistanceNorm::TotalMass
            ),
            1.0
        );
    }

    #[test]
    fn day_count_norm_clamps_when_mass_exceeds_span() {
        // 30 changes on one day vs an empty history over a 10-day range:
        // the raw quotient would be 3.0; the clamp caps it at 1.0.
        let a: Vec<Date> = std::iter::repeat_n(day(1), 30).collect();
        let d = change_distance(&a, &[], range(10), DistanceNorm::DayCount);
        assert_eq!(d, 1.0);
        let dl = change_distance_lagged(&a, &[], range(10), DistanceNorm::DayCount, 2);
        assert_eq!(dl, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Multiplicity-aware bounds: histories drawn as multisets (vec
        /// with duplicate days) over a short range, so the change mass can
        /// exceed the day span — the regime where the unclamped DayCount
        /// quotient escaped [0, 1]. Checks symmetry, bounds, and
        /// zero-iff-identical-in-range for both norms and for the lagged
        /// variant.
        #[test]
        fn prop_distance_bounded_with_multiplicity(
            a in proptest::collection::vec(0i32..12, 0..80),
            b in proptest::collection::vec(0i32..12, 0..80),
            lag in 0u32..4,
        ) {
            let mut a = a; a.sort_unstable();
            let mut b = b; b.sort_unstable();
            let av: Vec<Date> = a.iter().map(|&d| day(d)).collect();
            let bv: Vec<Date> = b.iter().map(|&d| day(d)).collect();
            let r = range(10);
            for norm in [DistanceNorm::TotalMass, DistanceNorm::DayCount] {
                let dab = change_distance(&av, &bv, r, norm);
                let dba = change_distance(&bv, &av, r, norm);
                prop_assert!((dab - dba).abs() < 1e-12, "symmetry under {norm:?}");
                prop_assert!((0.0..=1.0).contains(&dab), "bounds under {norm:?}: {dab}");
                let daa = change_distance(&av, &av, r, norm);
                if av.iter().any(|&d| r.contains(d)) {
                    prop_assert_eq!(daa, 0.0, "identity under {:?}", norm);
                } else {
                    // Both empty in range: 1.0 by convention.
                    prop_assert_eq!(daa, 1.0);
                }
                let dlag = change_distance_lagged(&av, &bv, r, norm, lag);
                let dlag_rev = change_distance_lagged(&bv, &av, r, norm, lag);
                prop_assert!((0.0..=1.0).contains(&dlag), "lagged bounds: {dlag}");
                prop_assert!((dlag - dlag_rev).abs() < 1e-12, "lagged symmetry");
            }
        }

        /// Metamorphic relation: duplicating a single day's change k times
        /// in one history moves it monotonically *away* from the original.
        /// Under TotalMass the exact value is k / (2|a∩r| + k); DayCount
        /// gives min(k / |r|, 1). Both are increasing in k, and the greedy
        /// lagged matcher inherits the property because the padded copies
        /// can never free up a better match for the shared prefix.
        #[test]
        fn prop_duplicate_multiplicity_is_monotone(
            a in proptest::collection::vec(0i32..10, 0..40),
            x in 0i32..10,
            k1 in 1usize..5,
            extra in 1usize..5,
            lag in 0u32..3,
        ) {
            let mut base = a; base.sort_unstable();
            let av: Vec<Date> = base.iter().map(|&d| day(d)).collect();
            let k2 = k1 + extra;
            let pad = |k: usize| -> Vec<Date> {
                let mut v = base.clone();
                v.extend(std::iter::repeat_n(x, k));
                v.sort_unstable();
                v.iter().map(|&d| day(d)).collect()
            };
            let (b1, b2) = (pad(k1), pad(k2));
            let r = range(10);
            for norm in [DistanceNorm::TotalMass, DistanceNorm::DayCount] {
                let d1 = change_distance(&av, &b1, r, norm);
                let d2 = change_distance(&av, &b2, r, norm);
                prop_assert!(d1 <= d2 + 1e-12,
                    "plain {norm:?}: k={k1} gave {d1}, k={k2} gave {d2}");
                let l1 = change_distance_lagged(&av, &b1, r, norm, lag);
                let l2 = change_distance_lagged(&av, &b2, r, norm, lag);
                prop_assert!(l1 <= l2 + 1e-12,
                    "lagged {norm:?}: k={k1} gave {l1}, k={k2} gave {l2}");
            }
            // Closed form under TotalMass: the shared prefix matches
            // exactly, leaving the k padded copies as the whole diff.
            let mass = 2 * av.len() + k1;
            let want = k1 as f64 / mass as f64;
            let got = change_distance(&av, &b1, r, DistanceNorm::TotalMass);
            prop_assert!((got - want).abs() < 1e-12, "closed form: {got} vs {want}");
        }
    }

    /// Cube with a page hosting a tight pair, a loose pair, and an
    /// unrelated second page.
    fn training_cube() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let club = b.entity("Club", "infobox club", "FC Example");
        let other = b.entity("Other", "infobox club", "FC Other");
        let home = b.property("home_color");
        let away = b.property("away_color");
        let loose = b.property("stadium");
        let far = b.property("home_color2");
        // home/away co-change on 6 days; one forgotten away update.
        for d in [10, 50, 90, 130, 170, 210] {
            b.change(day(d), club, home, "h", ChangeKind::Update);
            if d != 130 {
                b.change(day(d), club, away, "a", ChangeKind::Update);
            }
        }
        // stadium changes on unrelated days.
        for d in [20, 60, 100, 140, 180] {
            b.change(day(d), club, loose, "s", ChangeKind::Update);
        }
        // Other page mirrors home's days exactly — must NOT correlate
        // (cross-page pairs are not searched).
        for d in [10, 50, 90, 130, 170, 210] {
            b.change(day(d), other, far, "x", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    #[test]
    fn train_finds_tight_pair_only() {
        let (cube, index) = training_cube();
        let data = EvalData::new(&cube, &index);
        let fc = FieldCorrelation::train(
            &data,
            range(250),
            FieldCorrelationParams {
                theta: 0.15,
                norm: DistanceNorm::TotalMass,
                lag_days: 0,
            },
        );
        assert_eq!(fc.num_rules(), 1);
        assert_eq!(fc.num_correlated_fields(), 2);
        let home_pos = index
            .position(FieldId::new(
                cube.entity_id("Club").unwrap(),
                cube.property_id("home_color").unwrap(),
            ))
            .unwrap() as u32;
        let away_pos = index
            .position(FieldId::new(
                cube.entity_id("Club").unwrap(),
                cube.property_id("away_color").unwrap(),
            ))
            .unwrap() as u32;
        assert_eq!(fc.partners_of(home_pos), &[away_pos]);
        assert_eq!(fc.partners_of(away_pos), &[home_pos]);
        assert!(fc.partners_of(9999).is_empty());
    }

    #[test]
    fn day_count_norm_floods_with_spurious_rules() {
        let (cube, index) = training_cube();
        let data = EvalData::new(&cube, &index);
        let fc = FieldCorrelation::train(
            &data,
            range(250),
            FieldCorrelationParams {
                theta: 0.1,
                norm: DistanceNorm::DayCount,
                lag_days: 0,
            },
        );
        // Even stadium (disjoint days) correlates under the literal norm:
        // 11 differing days / 250 ≈ 0.04 < 0.1.
        assert!(fc.num_rules() > 1, "got {} rules", fc.num_rules());
    }

    #[test]
    fn prediction_fires_on_partner_changes() {
        let (cube, index) = training_cube();
        let data = EvalData::new(&cube, &index);
        let fc = FieldCorrelation::train(&data, range(250), FieldCorrelationParams::default());
        // Evaluate over the same span with 10-day windows: home changed in
        // windows 1, 5, 9, 13, 17, 21 → away predicted there (and home
        // predicted in windows where away changed).
        let set = fc.predict(&data, range(250), 10);
        let away_pos = index
            .position(FieldId::new(
                cube.entity_id("Club").unwrap(),
                cube.property_id("away_color").unwrap(),
            ))
            .unwrap() as u32;
        for w in [1u32, 5, 9, 13, 17, 21] {
            assert!(set.contains(away_pos, w), "away not predicted in {w}");
        }
        // Window 13 is where the forgotten update lives: prediction made,
        // actual change absent — the §5.4 scenario.
        let truth = crate::eval::truth_set(&index, range(250), 10);
        assert!(!truth.contains(away_pos, 13));
        assert!(set.contains(away_pos, 13));
    }

    #[test]
    fn empty_training_range_yields_no_rules() {
        let (cube, index) = training_cube();
        let data = EvalData::new(&cube, &index);
        let fc = FieldCorrelation::train(
            &data,
            DateRange::with_len(day(300), 10),
            FieldCorrelationParams::default(),
        );
        assert_eq!(fc.num_rules(), 0);
        let set = fc.predict(&data, range(250), 7);
        assert!(set.is_empty());
    }

    #[test]
    fn lagged_distance_matches_nearby_days() {
        let a = [day(10), day(50), day(90)];
        let b = [day(12), day(48), day(91)];
        let r = range(200);
        // Same-day: fully disjoint.
        assert_eq!(
            change_distance_lagged(&a, &b, r, DistanceNorm::TotalMass, 0),
            1.0
        );
        // ±2 days: everything matches.
        assert_eq!(
            change_distance_lagged(&a, &b, r, DistanceNorm::TotalMass, 2),
            0.0
        );
        // ±1 day: only the 90/91 pair matches → 4 unmatched / 6 mass.
        let d1 = change_distance_lagged(&a, &b, r, DistanceNorm::TotalMass, 1);
        assert!((d1 - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn lagged_distance_zero_equals_plain() {
        let a = [day(1), day(5)];
        let b = [day(1), day(9)];
        let r = range(100);
        for norm in [DistanceNorm::TotalMass, DistanceNorm::DayCount] {
            assert_eq!(
                change_distance_lagged(&a, &b, r, norm, 0),
                change_distance(&a, &b, r, norm)
            );
        }
    }

    #[test]
    fn lag_widens_the_rule_set() {
        // A pair that co-changes with a one-day delay is invisible at
        // lag 0 and becomes a rule at lag ≥ 1.
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let fast = b.property("fast");
        let slow = b.property("slow");
        for k in 0..8 {
            b.change(day(k * 20), e, fast, "v", ChangeKind::Update);
            b.change(day(k * 20 + 1), e, slow, "v", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let strict = FieldCorrelation::train(&data, range(200), FieldCorrelationParams::default());
        assert_eq!(strict.num_rules(), 0);
        let lagged = FieldCorrelation::train(
            &data,
            range(200),
            FieldCorrelationParams {
                lag_days: 1,
                ..FieldCorrelationParams::default()
            },
        );
        assert_eq!(lagged.num_rules(), 1);
    }

    /// Metamorphic relation: the trained rule set is a function of the
    /// *logical* change log, not of the order pages/properties/changes
    /// were fed to the builder. Interned ids differ between the two
    /// cubes, so the comparison resolves every rule back to name pairs.
    #[test]
    fn training_invariant_under_page_insertion_order() {
        use std::collections::BTreeSet;

        // (entity, template, page, property, day) tuples for two pages
        // with a tight pair each plus an uncorrelated field.
        let log: Vec<(&str, &str, &str, &str, i32)> = {
            let mut v = Vec::new();
            for d in [10, 40, 70, 100, 130] {
                v.push(("Club", "infobox club", "FC A", "home", d));
                v.push(("Club", "infobox club", "FC A", "away", d));
                v.push(("Person", "infobox person", "B. Person", "club", d + 1));
                v.push(("Person", "infobox person", "B. Person", "caps", d + 1));
            }
            for d in [5, 55, 105] {
                v.push(("Club", "infobox club", "FC A", "stadium", d));
            }
            v
        };

        let build = |order: &[usize]| {
            let mut b = ChangeCubeBuilder::new();
            for &i in order {
                let (ent, tpl, page, prop, d) = log[i];
                let e = b.entity(ent, tpl, page);
                let p = b.property(prop);
                b.change(day(d), e, p, "v", ChangeKind::Update);
            }
            let cube = b.finish();
            let index = CubeIndex::build(&cube);
            (cube, index)
        };

        // Resolve every directed rule edge to names so the sets compare
        // across cubes with different interner orderings.
        let rule_names = |cube: &wikistale_wikicube::ChangeCube,
                          index: &CubeIndex|
         -> BTreeSet<(String, String, String)> {
            let mut out = BTreeSet::new();
            let data = EvalData::new(cube, index);
            let fc = FieldCorrelation::train(&data, range(150), FieldCorrelationParams::default());
            for pos in 0..index.num_fields() {
                let f = index.field(pos);
                for &partner in fc.partners_of(pos as u32) {
                    let g = index.field(partner as usize);
                    assert_eq!(f.entity, g.entity, "rules never cross pages");
                    out.insert((
                        cube.entity_name(f.entity).to_string(),
                        cube.property_name(f.property).to_string(),
                        cube.property_name(g.property).to_string(),
                    ));
                }
            }
            out
        };

        let forward: Vec<usize> = (0..log.len()).collect();
        // A fixed "shuffle": reversed, so the Person page and the later
        // days are interned first, flipping every id assignment.
        let reversed: Vec<usize> = (0..log.len()).rev().collect();
        // And an order that alternates between the two ends of the log.
        let n = log.len();
        let interleaved: Vec<usize> = (0..n)
            .map(|i| if i % 2 == 0 { n - 1 - i / 2 } else { i / 2 })
            .collect();

        let (c1, i1) = build(&forward);
        let names = rule_names(&c1, &i1);
        assert!(!names.is_empty(), "baseline training found no rules");
        for order in [&reversed, &interleaved] {
            let (c2, i2) = build(order);
            assert_eq!(
                names,
                rule_names(&c2, &i2),
                "rule set changed under insertion order {order:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_lag_is_monotone(
            a in proptest::collection::btree_set(0i32..200, 1..25),
            b in proptest::collection::btree_set(0i32..200, 1..25),
            lag in 0u32..10,
        ) {
            // More tolerance can only shrink the distance.
            let av: Vec<Date> = a.iter().map(|&d| day(d)).collect();
            let bv: Vec<Date> = b.iter().map(|&d| day(d)).collect();
            let r = range(200);
            let tight = change_distance_lagged(&av, &bv, r, DistanceNorm::TotalMass, lag);
            let loose = change_distance_lagged(&av, &bv, r, DistanceNorm::TotalMass, lag + 1);
            prop_assert!(loose <= tight + 1e-12);
            // Symmetry holds for the greedy matcher too.
            let rev = change_distance_lagged(&bv, &av, r, DistanceNorm::TotalMass, lag);
            prop_assert!((tight - rev).abs() < 1e-12);
        }

        #[test]
        fn prop_distance_is_a_bounded_symmetric_premetric(
            a in proptest::collection::btree_set(0i32..200, 0..30),
            b in proptest::collection::btree_set(0i32..200, 0..30),
        ) {
            let av: Vec<Date> = a.iter().map(|&d| day(d)).collect();
            let bv: Vec<Date> = b.iter().map(|&d| day(d)).collect();
            let r = range(200);
            for norm in [DistanceNorm::TotalMass, DistanceNorm::DayCount] {
                let dab = change_distance(&av, &bv, r, norm);
                let dba = change_distance(&bv, &av, r, norm);
                prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
                prop_assert!((0.0..=1.0).contains(&dab), "bounded: {dab}");
                if !av.is_empty() || !bv.is_empty() {
                    let daa = change_distance(&av, &av, r, norm);
                    prop_assert!(daa.abs() < 1e-12 || av.is_empty(), "identity");
                }
            }
            // Under TotalMass, disjoint non-empty histories are exactly 1.
            if !av.is_empty() && !bv.is_empty() && a.is_disjoint(&b) {
                prop_assert_eq!(
                    change_distance(&av, &bv, r, DistanceNorm::TotalMass), 1.0);
            }
        }
    }
}
