//! The change predictors of §3 and the baselines of §5.2.

pub mod assoc;
pub mod field_corr;
pub mod mean_baseline;
pub mod seasonal;
pub mod threshold_baseline;

pub use assoc::{AssocParams, AssociationRulePredictor, TemplateRule};
pub use field_corr::{change_distance, DistanceNorm, FieldCorrelation, FieldCorrelationParams};
pub use mean_baseline::MeanBaseline;
pub use seasonal::{SeasonalParams, SeasonalPredictor};
pub use threshold_baseline::ThresholdBaseline;

use std::time::{Duration, Instant};
use wikistale_obs::MetricsRegistry;

/// Map chunks of `items` in parallel with scoped threads and collect the
/// chunk results in order.
///
/// Used for the per-page correlation search and per-template rule mining,
/// both embarrassingly parallel. Each chunk's wall time is recorded in
/// the global [`MetricsRegistry`] under `parallel/<label>/chunk`, along
/// with gauges for the chunk count and the imbalance ratio
/// (slowest chunk / mean chunk) of the most recent invocation.
pub(crate) fn parallel_chunks<T, R, F>(label: &str, items: &[T], num_chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(num_chunks.max(1));
    let chunk_size = items.len().div_ceil(threads);
    let timed_f = |chunk: &[T]| {
        let start = Instant::now();
        let result = f(chunk);
        (result, start.elapsed())
    };
    let timed: Vec<(R, Duration)> = if threads <= 1 || items.len() < 2 * threads {
        vec![timed_f(items)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .map(|chunk| s.spawn(|| timed_f(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    record_chunk_stats(label, &timed);
    timed.into_iter().map(|(result, _)| result).collect()
}

fn record_chunk_stats<R>(label: &str, timed: &[(R, Duration)]) {
    let registry = MetricsRegistry::global();
    let chunk_path = format!("parallel/{label}/chunk");
    let mut total = Duration::ZERO;
    let mut max = Duration::ZERO;
    for (_, elapsed) in timed {
        registry.record_duration(&chunk_path, *elapsed);
        total += *elapsed;
        max = max.max(*elapsed);
    }
    registry.gauge_set(&format!("parallel/{label}/chunks"), timed.len() as f64);
    let mean = total.as_secs_f64() / timed.len() as f64;
    if mean > 0.0 {
        registry.gauge_set(
            &format!("parallel/{label}/imbalance"),
            max.as_secs_f64() / mean,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_chunks_covers_all_items() {
        let items: Vec<u64> = (0..10_000).collect();
        let partials = parallel_chunks("test_sum", &items, 8, |chunk| chunk.iter().sum::<u64>());
        let total: u64 = partials.into_iter().sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn parallel_chunks_empty_and_small() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_chunks("test_empty", &empty, 4, |c| c.len()).is_empty());
        let small = vec![1u32];
        let r = parallel_chunks("test_small", &small, 4, |c| c.len());
        assert_eq!(r.iter().sum::<usize>(), 1);
    }

    #[test]
    fn counters_under_parallel_chunks_report_exact_totals() {
        // Worker threads bump a shared counter handle; the registry must
        // see every increment exactly once regardless of chunking.
        let registry = MetricsRegistry::global();
        let counter = registry.counter("test_parallel_hits");
        let before = counter.get();
        let items: Vec<u64> = (0..10_000).collect();
        parallel_chunks("test_counted", &items, 8, |chunk| {
            let counter = registry.counter("test_parallel_hits");
            for _ in chunk {
                counter.incr();
            }
        });
        assert_eq!(counter.get() - before, 10_000);
        // Chunk wall times were recorded: as many observations as chunks.
        let snapshot = registry.snapshot();
        let stat = snapshot.spans["parallel/test_counted/chunk"];
        assert_eq!(
            stat.count,
            snapshot.gauges["parallel/test_counted/chunks"] as u64
        );
    }
}
