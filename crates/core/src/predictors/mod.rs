//! The change predictors of §3 and the baselines of §5.2.

pub mod assoc;
pub mod field_corr;
pub mod mean_baseline;
pub mod seasonal;
pub mod threshold_baseline;

pub use assoc::{AssocParams, AssociationRulePredictor, TemplateRule};
pub use field_corr::{change_distance, DistanceNorm, FieldCorrelation, FieldCorrelationParams};
pub use mean_baseline::MeanBaseline;
pub use seasonal::{SeasonalParams, SeasonalPredictor};
pub use threshold_baseline::ThresholdBaseline;

use crossbeam::thread;

/// Map chunks of `items` in parallel with crossbeam scoped threads and
/// collect the chunk results in order.
///
/// Used for the per-page correlation search and per-template rule mining,
/// both embarrassingly parallel.
pub(crate) fn parallel_chunks<T, R, F>(items: &[T], num_chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(num_chunks.max(1));
    let chunk_size = items.len().div_ceil(threads);
    if threads <= 1 || items.len() < 2 * threads {
        return vec![f(items)];
    }
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| s.spawn(|_| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_chunks_covers_all_items() {
        let items: Vec<u64> = (0..10_000).collect();
        let partials = parallel_chunks(&items, 8, |chunk| chunk.iter().sum::<u64>());
        let total: u64 = partials.into_iter().sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn parallel_chunks_empty_and_small() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_chunks(&empty, 4, |c| c.len()).is_empty());
        let small = vec![1u32];
        let r = parallel_chunks(&small, 4, |c| c.len());
        assert_eq!(r.iter().sum::<usize>(), 1);
    }
}
