//! The change predictors of §3 and the baselines of §5.2.

pub mod assoc;
pub mod field_corr;
pub mod mean_baseline;
pub mod seasonal;
pub mod threshold_baseline;

pub use assoc::{AssocParams, AssociationRulePredictor, TemplateRule};
pub use field_corr::{change_distance, DistanceNorm, FieldCorrelation, FieldCorrelationParams};
pub use mean_baseline::MeanBaseline;
pub use seasonal::{SeasonalParams, SeasonalPredictor};
pub use threshold_baseline::ThresholdBaseline;

/// Map fixed-size chunks of `items` on the work-stealing engine and
/// collect the chunk results in chunk order.
///
/// Used for the per-page correlation search and per-template rule mining,
/// both embarrassingly parallel. The heavy lifting lives in
/// [`wikistale_exec::par_chunks`]: chunk boundaries derive only from
/// `chunk_size` (never from the worker count), so results — and therefore
/// every trained model — are byte-identical across `--threads` settings.
/// Per-chunk wall times and per-worker scheduling stats land under
/// `parallel/<label>/…` in the global metrics registry.
pub(crate) fn parallel_chunks<T, R, F>(label: &str, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    wikistale_exec::par_chunks(label, items, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_obs::MetricsRegistry;

    #[test]
    fn parallel_chunks_covers_all_items() {
        let items: Vec<u64> = (0..10_000).collect();
        let partials = parallel_chunks("test_sum", &items, 8, |chunk| chunk.iter().sum::<u64>());
        let total: u64 = partials.into_iter().sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn parallel_chunks_empty_and_small() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_chunks("test_empty", &empty, 4, |c| c.len()).is_empty());
        let small = vec![1u32];
        let r = parallel_chunks("test_small", &small, 4, |c| c.len());
        assert_eq!(r.iter().sum::<usize>(), 1);
    }

    #[test]
    fn counters_under_parallel_chunks_report_exact_totals() {
        // Worker threads bump a shared counter handle; the registry must
        // see every increment exactly once regardless of chunking.
        let registry = MetricsRegistry::global();
        let counter = registry.counter("test_parallel_hits");
        let before = counter.get();
        let items: Vec<u64> = (0..10_000).collect();
        parallel_chunks("test_counted", &items, 8, |chunk| {
            let counter = registry.counter("test_parallel_hits");
            for _ in chunk {
                counter.incr();
            }
        });
        assert_eq!(counter.get() - before, 10_000);
        // Chunk wall times were recorded: as many observations as chunks.
        let snapshot = registry.snapshot();
        let stat = snapshot.spans["parallel/test_counted/chunk"];
        assert_eq!(
            stat.count,
            snapshot.gauges["parallel/test_counted/chunks"] as u64
        );
    }
}
