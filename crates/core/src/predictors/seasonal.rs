//! The seasonality predictor — the first future-work extension the paper
//! proposes (§6): "adding predictors to the ensemble that focus on other
//! aspects of the data: they could capture seasonality".
//!
//! Neither base predictor can flag a field whose related properties are
//! *also* stale, or which has no related properties at all. But many
//! Wikipedia fields recur annually on their own — league tables during the
//! season, award fields around ceremony dates. This predictor flags field
//! *f* for window *w* when, in at least [`SeasonalParams::min_years`]
//! previous years, *f* changed inside the same calendar window
//! (± [`SeasonalParams::slack_days`]), in a sufficiently large fraction of
//! those years.
//!
//! The predictor consults only *f*'s own changes strictly before the
//! window starts (every year-shifted window ends before the current one
//! begins), so the masked-field protocol of §5.1 holds by construction.

use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use wikistale_wikicube::{Date, DateRange};

/// Tuning knobs for [`SeasonalPredictor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalParams {
    /// Minimum number of observable previous years before the predictor
    /// dares a prediction for a field.
    pub min_years: u32,
    /// Fraction of observable years that must contain a change in the
    /// shifted window.
    pub recurrence_threshold: f64,
    /// Calendar jitter tolerance: each year-shifted window is widened by
    /// this many days on both sides (seasons do not start on the exact
    /// same day every year).
    pub slack_days: u32,
    /// How many years back to look at most.
    pub max_years: u32,
    /// Liveness guard: skip fields whose most recent change (before the
    /// window) is older than this many days — a perfect annual history is
    /// worthless if the field has since been deleted or its event
    /// discontinued.
    pub max_staleness_days: u32,
}

impl Default for SeasonalParams {
    fn default() -> SeasonalParams {
        SeasonalParams {
            min_years: 4,
            recurrence_threshold: 0.88,
            slack_days: 1,
            max_years: 12,
            max_staleness_days: 550,
        }
    }
}

/// The annual-recurrence predictor. Stateless apart from its parameters:
/// recurrence is computed against the field history at prediction time
/// (always restricted to days before the window).
#[derive(Debug, Clone, Default)]
pub struct SeasonalPredictor {
    /// Parameters.
    pub params: SeasonalParams,
}

impl SeasonalPredictor {
    /// Predictor with default parameters.
    pub fn new(params: SeasonalParams) -> SeasonalPredictor {
        SeasonalPredictor { params }
    }

    fn max_staleness_days(&self) -> i32 {
        self.params.max_staleness_days as i32
    }

    /// Count `(hits, observable)` year-shifted recurrences of `window` in
    /// `days` (sorted, the field's full history). Returns `None` when the
    /// liveness guard fails or the field has no history before the window.
    pub fn recurrence(&self, days: &[Date], window: DateRange) -> Option<(u32, u32)> {
        if days.is_empty() {
            return None;
        }
        // Liveness: the field must have changed somewhat recently.
        let before = days.partition_point(|&d| d < window.start());
        let last = days[..before].last()?;
        if window.start() - *last > self.max_staleness_days() {
            return None;
        }
        let first = days[0];
        // Only whole-year shifts that keep the shifted window strictly
        // before the evaluation window are considered (masking).
        let mut observable = 0u32;
        let mut hits = 0u32;
        for k in 1..=self.params.max_years {
            let shift = (k * 365) as i32;
            let lo = window.start() - shift - self.params.slack_days as i32;
            let hi = window.end() - shift + self.params.slack_days as i32;
            if hi > window.start() {
                continue; // would peek into the masked window
            }
            if hi <= first {
                break; // before the field existed
            }
            observable += 1;
            let from = days.partition_point(|&d| d < lo);
            if from < days.len() && days[from] < hi {
                hits += 1;
            }
        }
        Some((hits, observable))
    }

    /// Whether `days` supports a seasonal prediction for `window`.
    fn recurs(&self, days: &[Date], window: DateRange) -> bool {
        let Some((hits, observable)) = self.recurrence(days, window) else {
            return false;
        };
        // Add-one smoothing in the denominator: with only a handful of
        // observable years, a lucky perfect streak is not yet evidence of
        // a true ≥ threshold recurrence (winner's curse across thousands
        // of candidate windows). The smoothed estimate demands either a
        // long streak or a very long history.
        observable >= self.params.min_years
            && hits as f64 / (observable + 1) as f64 + f64::EPSILON
                >= self.params.recurrence_threshold
    }
}

impl ChangePredictor for SeasonalPredictor {
    fn name(&self) -> &'static str {
        "Seasonal recurrence"
    }

    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet {
        let mut set = PredictionSet::new(range, granularity);
        // One decode buffer reused across fields: the delta-encoded day
        // lists are expanded here because recurrence binary-searches them.
        let mut scratch = Vec::new();
        for pos in 0..data.index.num_fields() {
            let days = data.index.days(pos).decode_into(&mut scratch);
            for w in 0..set.num_windows() {
                if self.recurs(days, set.window_range(w)) {
                    set.insert(pos as u32, w);
                }
            }
        }
        set.seal();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex, FieldId};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    /// How many years of history the fixture carries; the evaluation year
    /// is the one after.
    const YEARS: i32 = 10;

    /// `annual` changes around day 200 of every year; `erratic` changes on
    /// random-looking days; `young` has only two years of history.
    fn cube() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let annual = b.property("annual");
        let erratic = b.property("erratic");
        let young = b.property("young");
        for year in 0..YEARS {
            // ±2 days of jitter around day 200.
            let jitter = [0, 2, -1, 1, -2, 0, 1, -1, 2, 0][year as usize];
            b.change(
                day(year * 365 + 200 + jitter),
                e,
                annual,
                "v",
                ChangeKind::Update,
            );
        }
        for d in [37, 411, 799, 1205, 1933, 2501, 3007] {
            b.change(day(d), e, erratic, "v", ChangeKind::Update);
        }
        for year in YEARS - 2..YEARS {
            b.change(day(year * 365 + 100), e, young, "v", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    fn pos(cube: &wikistale_wikicube::ChangeCube, index: &CubeIndex, name: &str) -> u32 {
        index
            .position(FieldId::new(
                cube.entity_id("E").unwrap(),
                cube.property_id(name).unwrap(),
            ))
            .unwrap() as u32
    }

    #[test]
    fn annual_field_is_predicted_in_its_season_only() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let predictor = SeasonalPredictor::default();
        // Evaluate the year after the history in 30-day windows.
        let eval = DateRange::with_len(day(YEARS * 365), 365);
        let set = predictor.predict(&data, eval, 30);
        let annual = pos(&cube, &index, "annual");
        // Day 200 of the year falls into window 6 ([180, 210)).
        assert!(set.contains(annual, 6), "season window must be predicted");
        let predicted_windows: Vec<u32> = set
            .items()
            .iter()
            .filter(|&&(p, _)| p == annual)
            .map(|&(_, w)| w)
            .collect();
        assert!(
            predicted_windows.iter().all(|&w| (5..=7).contains(&w)),
            "only near-season windows may fire, got {predicted_windows:?}"
        );
    }

    #[test]
    fn erratic_and_young_fields_stay_silent() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let predictor = SeasonalPredictor::default();
        let eval = DateRange::with_len(day(YEARS * 365), 365);
        let set = predictor.predict(&data, eval, 30);
        assert!(!set
            .items()
            .iter()
            .any(|&(p, _)| p == pos(&cube, &index, "erratic")));
        assert!(!set
            .items()
            .iter()
            .any(|&(p, _)| p == pos(&cube, &index, "young")));
    }

    #[test]
    fn fine_granularity_requires_tight_recurrence() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let predictor = SeasonalPredictor::default();
        let eval = DateRange::with_len(day(YEARS * 365), 365);
        // At 1-day windows the jittered history cannot clear the smoothed
        // recurrence for any single day (±1 slack helps some days but the
        // jitter spreads hits across several).
        let set = predictor.predict(&data, eval, 1);
        let annual = pos(&cube, &index, "annual");
        let daily_hits = set.items().iter().filter(|&&(p, _)| p == annual).count();
        // A few individual days may still qualify — but far fewer than
        // the 30-day case, and never outside the season.
        for &(p, w) in set.items() {
            if p == annual {
                assert!((190..215).contains(&w), "window {w} outside season");
            }
        }
        let yearly = predictor.predict(&data, eval, 365);
        assert!(yearly.contains(annual, 0), "yearly prediction must fire");
        let _ = daily_hits;
    }

    #[test]
    fn masked_protocol_no_future_peeking() {
        // A field that changes ONLY in the evaluation year must never be
        // predicted, however dense those changes are.
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("fresh");
        let old = b.property("old");
        for d in 0..30 {
            b.change(day(10 * 365 + 100 + d), e, p, "v", ChangeKind::Update);
        }
        for year in 0..10 {
            b.change(day(year * 365 + 100), e, old, "v", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let eval = DateRange::with_len(day(10 * 365), 365);
        let set = SeasonalPredictor::default().predict(&data, eval, 30);
        let fresh = pos(&cube, &index, "fresh");
        assert!(!set.items().iter().any(|&(p2, _)| p2 == fresh));
    }

    #[test]
    fn thresholds_are_respected() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let eval = DateRange::with_len(day(YEARS * 365), 365);
        // Demand more years than exist → silent even for the annual field.
        let strict = SeasonalPredictor::new(SeasonalParams {
            min_years: 20,
            ..SeasonalParams::default()
        });
        assert!(strict.predict(&data, eval, 30).is_empty());
        // A perfect-recurrence demand can never be met under add-one
        // smoothing: hits/(observable + 1) < 1 always.
        let perfect = SeasonalPredictor::new(SeasonalParams {
            recurrence_threshold: 1.0,
            ..SeasonalParams::default()
        });
        assert!(perfect.predict(&data, eval, 30).is_empty());
        // A liveness guard of under a year silences the annual field too.
        let stale = SeasonalPredictor::new(SeasonalParams {
            max_staleness_days: 30,
            ..SeasonalParams::default()
        });
        assert!(stale.predict(&data, eval, 30).is_empty());
    }
}
