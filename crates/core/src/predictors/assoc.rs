//! The association-rule predictor (§3.3).
//!
//! Where field correlations capture page-specific pairs, association rules
//! capture relationships that hold for *all* infoboxes of a template —
//! including instances absent from the training data. Changes are grouped
//! into weekly per-infobox transactions (the expected editing cadence of
//! volunteer contributors); an event type is the changed property within
//! its template (time, entity and value are deliberately excluded, §3.3).
//! Unary rules `lhs ⇒ rhs` are mined per template with Apriori and then
//! pruned against a held-out slice of the training range: only rules with
//! ≥ 90 % observed precision survive (the 85 % target plus a 5 % buffer).

use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use crate::predictors::parallel_chunks;
use wikistale_apriori::{mine, AprioriParams, TransactionSet};
use wikistale_wikicube::{
    ChangeCube, DateRange, EntityId, FieldId, FxHashMap, PropertyId, TemplateId,
};

/// Training parameters for [`AssociationRulePredictor`].
#[derive(Debug, Clone, PartialEq)]
pub struct AssocParams {
    /// Apriori configuration. The paper's grid-search optimum is
    /// min-support 0.25 % (relative to the template's transaction count),
    /// min-confidence 60 %, unary rules.
    pub apriori: AprioriParams,
    /// Fraction of the training range (taken from its end) held out to
    /// validate rule precision; the paper uses 10 %.
    pub validation_fraction: f64,
    /// Minimum observed precision on the held-out slice; the paper uses
    /// 90 % — the 85 % target plus a 5 % buffer for train/test drift.
    pub min_rule_precision: f64,
    /// Whether to keep rules that never fired on the held-out slice. The
    /// paper "discards rules that do not meet 90 % precision on the
    /// validation set"; we read a rule with no firings as not meeting the
    /// bar (default `false`) — keeping such unvetted rules measurably
    /// drags test precision below the target.
    pub keep_unvalidated_rules: bool,
}

impl Default for AssocParams {
    fn default() -> AssocParams {
        AssocParams {
            apriori: AprioriParams::default(),
            validation_fraction: 0.10,
            min_rule_precision: 0.90,
            keep_unvalidated_rules: false,
        }
    }
}

/// One surviving unary rule: within `template`, a change of `lhs` in a
/// window implies a change of `rhs` in the same window.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateRule {
    /// The template the rule applies to.
    pub template: TemplateId,
    /// Trigger property (left-hand side).
    pub lhs: PropertyId,
    /// Predicted property (right-hand side).
    pub rhs: PropertyId,
    /// Relative support of `{lhs, rhs}` among the template's transactions.
    pub support: f64,
    /// Mining confidence `P(rhs | lhs)` on the mining slice.
    pub confidence: f64,
    /// Observed precision on the held-out validation slice; `None` if the
    /// rule never fired there (such rules are kept — absence of evidence).
    pub validation_precision: Option<f64>,
}

/// A weekly transaction: the set of properties of one entity that changed
/// inside one 7-day bucket.
type WeeklyKey = (EntityId, u32);

/// Build the weekly per-infobox transaction map for changes in `range`.
/// Weeks are 7-day buckets counted from `range.start()`.
///
/// Reads the cube's shared [`wikistale_wikicube::DayListStore`] rather
/// than re-scanning the change table: each field contributes its (already
/// deduplicated, sorted) change days directly, and a field enters a week's
/// transaction at most once.
fn weekly_transactions(
    cube: &ChangeCube,
    range: DateRange,
) -> FxHashMap<WeeklyKey, Vec<PropertyId>> {
    let mut map: FxHashMap<WeeklyKey, Vec<PropertyId>> = FxHashMap::default();
    for (_, field, list) in cube.day_lists().iter() {
        let mut last_week = None;
        for day in list.iter_in(range) {
            let week = (day - range.start()) as u32 / 7;
            if last_week == Some(week) {
                continue;
            }
            last_week = Some(week);
            map.entry((field.entity, week))
                .or_default()
                .push(field.property);
        }
    }
    for props in map.values_mut() {
        props.sort_unstable();
        props.dedup();
    }
    map
}

/// The trained association-rule predictor.
#[derive(Debug, Clone)]
pub struct AssociationRulePredictor {
    rules: Vec<TemplateRule>,
    /// `(template, lhs)` → indices into `rules`.
    by_trigger: FxHashMap<(TemplateId, PropertyId), Vec<u32>>,
    params: AssocParams,
}

impl AssociationRulePredictor {
    /// Mine and validate rules from the changes inside `range`.
    ///
    /// The last `validation_fraction` of the range (rounded to whole
    /// weeks) is held out: rules are mined on the leading part and pruned
    /// by their precision on the held-out part.
    pub fn train(
        data: &EvalData<'_>,
        range: DateRange,
        params: AssocParams,
    ) -> AssociationRulePredictor {
        let holdout_days = ((range.len_days() as f64 * params.validation_fraction) as u32 / 7) * 7;
        let mine_range = DateRange::new(range.start(), range.end() - holdout_days as i32);
        let holdout_range = DateRange::new(mine_range.end(), range.end());

        let mined = mine_rules(data, mine_range, &params.apriori);
        let validated = validate_rules(
            data.cube,
            holdout_range,
            mined,
            params.min_rule_precision,
            params.keep_unvalidated_rules,
        );

        let mut by_trigger: FxHashMap<(TemplateId, PropertyId), Vec<u32>> = FxHashMap::default();
        for (i, rule) in validated.iter().enumerate() {
            by_trigger
                .entry((rule.template, rule.lhs))
                .or_default()
                .push(i as u32);
        }
        AssociationRulePredictor {
            rules: validated,
            by_trigger,
            params,
        }
    }

    /// All surviving rules, grouped by template and sorted.
    pub fn rules(&self) -> &[TemplateRule] {
        &self.rules
    }

    /// Number of surviving rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Rule count per template — the Figure 3 histogram input. Templates
    /// without rules are omitted.
    pub fn rules_per_template(&self) -> FxHashMap<TemplateId, usize> {
        let mut counts: FxHashMap<TemplateId, usize> = FxHashMap::default();
        for rule in &self.rules {
            *counts.entry(rule.template).or_insert(0) += 1;
        }
        counts
    }

    /// Number of distinct entities (of the filtered corpus) whose template
    /// carries at least one rule — the paper's "pages covered" measure.
    pub fn covered_entities(&self, data: &EvalData<'_>) -> usize {
        let templates: std::collections::BTreeSet<TemplateId> =
            self.rules.iter().map(|r| r.template).collect();
        templates
            .iter()
            .map(|&t| data.index.entities_of_template(t).len())
            .sum()
    }

    /// Training parameters used.
    pub fn params(&self) -> &AssocParams {
        &self.params
    }
}

/// Mine unary candidate rules per template over `range`.
fn mine_rules(data: &EvalData<'_>, range: DateRange, apriori: &AprioriParams) -> Vec<TemplateRule> {
    let cube = data.cube;
    // Group weekly transactions by template, with template-local item ids.
    let weekly = weekly_transactions(cube, range);
    let mut per_template: Vec<Vec<Vec<PropertyId>>> = vec![Vec::new(); cube.num_templates()];
    for ((entity, _week), props) in weekly {
        per_template[cube.template_of(entity).index()].push(props);
    }

    let jobs: Vec<(usize, Vec<Vec<PropertyId>>)> = per_template
        .into_iter()
        .enumerate()
        .filter(|(_, txs)| !txs.is_empty())
        .collect();

    // Chunk size 8: templates are few but heavy, small chunks let the
    // work-stealing engine balance skewed template sizes.
    let chunk_results = parallel_chunks("assoc_templates", &jobs, 8, |chunk| {
        let mut rules = Vec::new();
        for (template_idx, txs) in chunk {
            // Template-local dense item ids.
            let mut items: Vec<PropertyId> = txs.iter().flatten().copied().collect();
            items.sort_unstable();
            items.dedup();
            let item_of: FxHashMap<PropertyId, u32> = items
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect();
            let mut builder = TransactionSet::builder();
            for tx in txs {
                builder.push(tx.iter().map(|p| item_of[p]));
            }
            let ts = builder.finish();
            for rule in mine(&ts, apriori) {
                if !rule.is_unary() {
                    continue;
                }
                rules.push(TemplateRule {
                    template: TemplateId::from_index(*template_idx),
                    lhs: items[rule.antecedent[0] as usize],
                    rhs: items[rule.consequent[0] as usize],
                    support: rule.support,
                    confidence: rule.confidence,
                    validation_precision: None,
                });
            }
        }
        rules
    });
    let mut rules: Vec<TemplateRule> = chunk_results.into_iter().flatten().collect();
    rules.sort_by_key(|r| (r.template, r.lhs, r.rhs));
    rules
}

/// Score each rule's precision on the held-out slice and drop those that
/// fired and fell below `min_precision`.
fn validate_rules(
    cube: &ChangeCube,
    holdout: DateRange,
    rules: Vec<TemplateRule>,
    min_precision: f64,
    keep_unvalidated: bool,
) -> Vec<TemplateRule> {
    if rules.is_empty() || holdout.is_empty() {
        return rules;
    }
    let mut by_trigger: FxHashMap<(TemplateId, PropertyId), Vec<u32>> = FxHashMap::default();
    for (i, rule) in rules.iter().enumerate() {
        by_trigger
            .entry((rule.template, rule.lhs))
            .or_default()
            .push(i as u32);
    }
    let mut fired = vec![0u32; rules.len()];
    let mut hit = vec![0u32; rules.len()];
    for ((entity, _week), props) in weekly_transactions(cube, holdout) {
        let template = cube.template_of(entity);
        for &lhs in &props {
            let Some(rule_idxs) = by_trigger.get(&(template, lhs)) else {
                continue;
            };
            for &ri in rule_idxs {
                fired[ri as usize] += 1;
                if props.binary_search(&rules[ri as usize].rhs).is_ok() {
                    hit[ri as usize] += 1;
                }
            }
        }
    }
    rules
        .into_iter()
        .enumerate()
        .filter_map(|(i, mut rule)| {
            if fired[i] == 0 {
                // Never fired on the holdout: no evidence either way.
                return keep_unvalidated.then_some(rule);
            }
            let precision = hit[i] as f64 / fired[i] as f64;
            rule.validation_precision = Some(precision);
            (precision + f64::EPSILON >= min_precision).then_some(rule)
        })
        .collect()
}

impl ChangePredictor for AssociationRulePredictor {
    fn name(&self) -> &'static str {
        "Association rules"
    }

    /// For every change of a rule's `lhs` inside a window, predict a
    /// change of the same entity's `rhs` field in that window. Predictions
    /// are only emitted for fields present in the index (the evaluation
    /// universe of §5.1).
    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet {
        let mut set = PredictionSet::new(range, granularity);
        let cube = data.cube;
        for c in cube.changes_in(range) {
            let template = cube.template_of(c.entity);
            let Some(rule_idxs) = self.by_trigger.get(&(template, c.property)) else {
                continue;
            };
            for &ri in rule_idxs {
                let rhs = self.rules[ri as usize].rhs;
                if let Some(pos) = data.index.position(FieldId::new(c.entity, rhs)) {
                    set.insert_day(pos as u32, c.day);
                }
            }
        }
        set.seal();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_apriori::Support;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex, Date};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    /// Ten boxer infoboxes: every `ko` change is accompanied by a `wins`
    /// change the same day; `wins` also changes alone. One boxer
    /// (entity 0) keeps forgetting `wins` late in the range.
    fn boxer_cube() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let wins_p = b.property("wins");
        let ko_p = b.property("ko");
        for e in 0..10 {
            let boxer = b.entity(&format!("boxer{e}"), "infobox boxer", &format!("Boxer {e}"));
            for fight in 0..24 {
                let d = fight * 15 + e; // spread across weeks
                b.change(
                    day(d),
                    boxer,
                    wins_p,
                    &format!("w{fight}"),
                    ChangeKind::Update,
                );
                if fight % 2 == 0 {
                    b.change(
                        day(d),
                        boxer,
                        ko_p,
                        &format!("k{fight}"),
                        ChangeKind::Update,
                    );
                }
            }
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    fn params() -> AssocParams {
        AssocParams {
            apriori: AprioriParams {
                min_support: Support::Fraction(0.01),
                min_confidence: 0.6,
                max_itemset_size: 2,
            },
            validation_fraction: 0.10,
            min_rule_precision: 0.90,
            keep_unvalidated_rules: false,
        }
    }

    #[test]
    fn weekly_transactions_bucket_and_dedup() {
        let (cube, _) = boxer_cube();
        let range = cube.time_span().unwrap();
        let weekly = weekly_transactions(&cube, range);
        // Entity 0, fight 0 happens on day 0 → week 0 with both props.
        let e0 = cube.entity_id("boxer0").unwrap();
        let tx = &weekly[&(e0, 0)];
        assert_eq!(tx.len(), 2);
        assert!(tx.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn mines_asymmetric_rule() {
        let (cube, index) = boxer_cube();
        let data = EvalData::new(&cube, &index);
        let ar = AssociationRulePredictor::train(&data, cube.time_span().unwrap(), params());
        let wins = cube.property_id("wins").unwrap();
        let ko = cube.property_id("ko").unwrap();
        // ko ⇒ wins must be found; wins ⇒ ko (confidence 0.5) must not.
        assert!(
            ar.rules()
                .iter()
                .any(|r| r.lhs == ko && r.rhs == wins && r.confidence > 0.9),
            "rules: {:?}",
            ar.rules()
        );
        assert!(!ar.rules().iter().any(|r| r.lhs == wins && r.rhs == ko));
        assert_eq!(ar.rules_per_template().len(), 1);
        assert_eq!(ar.covered_entities(&data), 10);
    }

    #[test]
    fn predicts_rhs_when_lhs_changes() {
        let (cube, index) = boxer_cube();
        let data = EvalData::new(&cube, &index);
        let span = cube.time_span().unwrap();
        let train = DateRange::new(span.start(), span.end() - 60);
        let eval = DateRange::new(span.end() - 60, span.end());
        let ar = AssociationRulePredictor::train(&data, train, params());
        let set = ar.predict(&data, eval, 7);
        assert!(!set.is_empty());
        // Every prediction targets a wins field (rhs), not ko.
        let wins = cube.property_id("wins").unwrap();
        for &(pos, _) in set.items() {
            assert_eq!(index.field(pos as usize).property, wins);
        }
    }

    #[test]
    fn validation_prunes_low_precision_rules() {
        // lhs ⇒ rhs holds perfectly in the mining slice but breaks in the
        // holdout → the rule must be discarded.
        let mut b = ChangeCubeBuilder::new();
        let lhs_p = b.property("lhs");
        let rhs_p = b.property("rhs");
        for e in 0..6 {
            let ent = b.entity(&format!("e{e}"), "t", &format!("P{e}"));
            // Mining slice: days 0..800, perfect co-change.
            for k in 0..10 {
                let d = k * 77 + e;
                b.change(day(d), ent, lhs_p, "l", ChangeKind::Update);
                b.change(day(d), ent, rhs_p, "r", ChangeKind::Update);
            }
            // Holdout slice (last 10 %): lhs fires alone.
            for k in 0..5 {
                b.change(day(920 + k * 7 + e), ent, lhs_p, "l", ChangeKind::Update);
            }
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let range = DateRange::with_len(Date::EPOCH, 1000);
        let ar = AssociationRulePredictor::train(&data, range, params());
        let lhs = cube.property_id("lhs").unwrap();
        let rhs = cube.property_id("rhs").unwrap();
        assert!(
            !ar.rules().iter().any(|r| r.lhs == lhs && r.rhs == rhs),
            "low-precision rule must be pruned, got {:?}",
            ar.rules()
        );
        // Without the holdout the rule would exist.
        let no_holdout = AssociationRulePredictor::train(
            &data,
            DateRange::with_len(Date::EPOCH, 900),
            AssocParams {
                validation_fraction: 0.0,
                ..params()
            },
        );
        assert!(no_holdout
            .rules()
            .iter()
            .any(|r| r.lhs == lhs && r.rhs == rhs));
    }

    #[test]
    fn rules_generalize_to_unseen_entities() {
        // Train on entities 0..8; a brand-new boxer appearing only in the
        // eval range still gets predictions — the key §3.3 property.
        let mut b = ChangeCubeBuilder::new();
        let wins_p = b.property("wins");
        let ko_p = b.property("ko");
        for e in 0..8 {
            let boxer = b.entity(&format!("old{e}"), "infobox boxer", &format!("Old {e}"));
            for fight in 0..12 {
                let d = fight * 30 + e;
                b.change(day(d), boxer, wins_p, "w", ChangeKind::Update);
                b.change(day(d), boxer, ko_p, "k", ChangeKind::Update);
            }
        }
        let rookie = b.entity("rookie", "infobox boxer", "Rookie");
        for fight in 0..6 {
            let d = 400 + fight * 7;
            b.change(day(d), rookie, ko_p, "k", ChangeKind::Update);
            b.change(day(d), rookie, wins_p, "w", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let ar =
            AssociationRulePredictor::train(&data, DateRange::with_len(Date::EPOCH, 350), params());
        let eval = DateRange::new(day(350), day(450));
        let set = ar.predict(&data, eval, 7);
        let rookie_wins = index
            .position(FieldId::new(
                cube.entity_id("rookie").unwrap(),
                cube.property_id("wins").unwrap(),
            ))
            .unwrap() as u32;
        assert!(
            set.items().iter().any(|&(pos, _)| pos == rookie_wins),
            "rookie must be covered by the template rule"
        );
    }

    #[test]
    fn empty_range_trains_no_rules() {
        let (cube, index) = boxer_cube();
        let data = EvalData::new(&cube, &index);
        let ar =
            AssociationRulePredictor::train(&data, DateRange::with_len(day(5000), 100), params());
        assert_eq!(ar.num_rules(), 0);
        assert_eq!(ar.covered_entities(&data), 0);
    }
}
