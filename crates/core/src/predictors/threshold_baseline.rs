//! The threshold baseline (§5.2).
//!
//! If a field changed in at least 85 % of the windows of a given size
//! during the reference year (the 365 days before the evaluation range —
//! the validation year when evaluating on test), predict a change in
//! *every* window of the evaluation range. At daily granularity no real
//! field clears 311 of 365 days, so the baseline goes silent there — the
//! paper observes exactly that.

use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use crate::split::EvalSplit;
use wikistale_wikicube::DateRange;

/// The threshold baseline. Stateless apart from its threshold: the
/// reference counting happens per prediction call because it depends on
/// the granularity.
#[derive(Debug, Clone)]
pub struct ThresholdBaseline {
    /// Required fraction of reference windows with a change (paper: 0.85).
    pub threshold: f64,
}

impl ThresholdBaseline {
    /// Baseline with the paper's 85 % threshold.
    pub fn paper() -> ThresholdBaseline {
        ThresholdBaseline { threshold: 0.85 }
    }

    /// Number of reference windows a field must have changed in, for a
    /// reference year tiled into `num_windows` windows. The paper rounds
    /// up: "at least 45 (85 % of 52)".
    pub fn required_windows(&self, num_windows: u32) -> u32 {
        (self.threshold * num_windows as f64).ceil() as u32
    }
}

impl Default for ThresholdBaseline {
    fn default() -> ThresholdBaseline {
        ThresholdBaseline::paper()
    }
}

impl ChangePredictor for ThresholdBaseline {
    fn name(&self) -> &'static str {
        "Threshold baseline"
    }

    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet {
        let reference = EvalSplit::reference_year_before(range);
        let ref_windows = PredictionSet::new(reference, granularity);
        let required = self.required_windows(ref_windows.num_windows());
        let mut set = PredictionSet::new(range, granularity);
        if required == 0 {
            // Degenerate thresholds would predict everything for every
            // field; keep the baseline honest.
            return set;
        }
        for pos in 0..data.index.num_fields() {
            let days = data.index.days(pos);
            let mut windows_with_change = 0u32;
            let mut last_window = None;
            for day in days.iter_in(reference) {
                let w = ref_windows.window_of(day);
                if w.is_some() && w != last_window {
                    windows_with_change += 1;
                    last_window = w;
                }
            }
            if windows_with_change >= required {
                for w in 0..set.num_windows() {
                    set.insert(pos as u32, w);
                }
            }
        }
        set.seal();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex, Date};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    /// A weekly-changing field (active in every 7-day reference window), a
    /// monthly field, and a dead field.
    fn cube() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let weekly = b.property("weekly");
        let monthly = b.property("monthly");
        let dead = b.property("dead");
        for k in 0..52 {
            b.change(day(k * 7 + 2), e, weekly, "v", ChangeKind::Update);
        }
        for k in 0..12 {
            b.change(day(k * 30 + 1), e, monthly, "v", ChangeKind::Update);
        }
        b.change(day(-500), e, dead, "v", ChangeKind::Update);
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    fn pos(cube: &wikistale_wikicube::ChangeCube, index: &CubeIndex, name: &str) -> u32 {
        index
            .position(wikistale_wikicube::FieldId::new(
                cube.entity_id("E").unwrap(),
                cube.property_id(name).unwrap(),
            ))
            .unwrap() as u32
    }

    #[test]
    fn required_windows_rounds_up() {
        let tb = ThresholdBaseline::paper();
        assert_eq!(tb.required_windows(52), 45); // the paper's example
        assert_eq!(tb.required_windows(365), 311);
        assert_eq!(tb.required_windows(12), 11);
        assert_eq!(tb.required_windows(1), 1);
    }

    #[test]
    fn weekly_field_triggers_weekly_granularity() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let tb = ThresholdBaseline::paper();
        // Evaluation year right after the reference year [0, 365).
        let eval = DateRange::with_len(day(365), 365);
        let set = tb.predict(&data, eval, 7);
        let weekly = pos(&cube, &index, "weekly");
        let monthly = pos(&cube, &index, "monthly");
        // Weekly field: changed in all 52 reference windows → predicted in
        // all 52 eval windows.
        assert_eq!(
            set.items().iter().filter(|&&(p, _)| p == weekly).count(),
            52
        );
        // Monthly field: 12 of 52 windows → silent.
        assert!(!set.items().iter().any(|&(p, _)| p == monthly));
    }

    #[test]
    fn daily_granularity_is_silent() {
        // The paper: "the threshold baseline makes no predictions for the
        // daily prediction because no field had 311 or more changes".
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let set = ThresholdBaseline::paper().predict(&data, DateRange::with_len(day(365), 365), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn yearly_granularity_fires_for_any_active_field() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let set =
            ThresholdBaseline::paper().predict(&data, DateRange::with_len(day(365), 365), 365);
        // One reference window; weekly and monthly changed in it, dead did
        // not (its only change predates the reference year).
        assert_eq!(set.len(), 2);
        assert!(!set
            .items()
            .iter()
            .any(|&(p, _)| p == pos(&cube, &index, "dead")));
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let tb = ThresholdBaseline { threshold: 0.0 };
        let set = tb.predict(&data, DateRange::with_len(day(365), 365), 365);
        assert!(set.is_empty());
    }
}
