//! The mean baseline (§5.2).
//!
//! A per-field regressor: the next change is forecast `n` days after the
//! last one, where `n` is the field's mean inter-change gap observed in
//! the training range. Stepping the forecast forward from the last change
//! known *before* each window converts the regression into the window
//! classification the evaluation needs.
//!
//! As §1 argues, this baseline fails on seasonal and bursty histories —
//! the paper reports ≤ 55 % precision everywhere — but it calibrates how
//! hard the task is.

use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use wikistale_wikicube::DateRange;

/// The trained mean baseline: one mean gap per field position.
#[derive(Debug, Clone)]
pub struct MeanBaseline {
    /// Mean inter-change gap in days, per field position; `None` when the
    /// field has fewer than two training changes (no gap to average).
    mean_gap: Vec<Option<f64>>,
}

impl MeanBaseline {
    /// Compute per-field mean gaps from the changes inside `range`.
    pub fn train(data: &EvalData<'_>, range: DateRange) -> MeanBaseline {
        let index = data.index;
        let mean_gap = (0..index.num_fields())
            .map(|pos| {
                let days = index.days(pos);
                let n = days.count_before(range.end()) - days.count_before(range.start());
                if n < 2 {
                    return None;
                }
                let first = days.iter_from(range.start()).next()?;
                let last = days.last_before(range.end())?;
                let span = (last - first) as f64;
                let gap = span / (n - 1) as f64;
                // Identical-day histories cannot happen after
                // day-deduplication, but guard the division downstream.
                (gap > 0.0).then_some(gap)
            })
            .collect();
        MeanBaseline { mean_gap }
    }

    /// The trained mean gap of a field position, if any.
    pub fn gap_of(&self, field_pos: usize) -> Option<f64> {
        self.mean_gap.get(field_pos).copied().flatten()
    }

    /// Number of fields with a usable gap estimate.
    pub fn num_modeled_fields(&self) -> usize {
        self.mean_gap.iter().flatten().count()
    }
}

impl ChangePredictor for MeanBaseline {
    fn name(&self) -> &'static str {
        "Mean baseline"
    }

    /// For each window starting at `s`: take the field's last change
    /// strictly before `s` (full history — the §5.1 protocol exposes all
    /// of the field's past), step forward in multiples of the mean gap,
    /// and predict positive iff the first forecast ≥ `s` lands inside the
    /// window.
    fn predict(&self, data: &EvalData<'_>, range: DateRange, granularity: u32) -> PredictionSet {
        let mut set = PredictionSet::new(range, granularity);
        for pos in 0..data.index.num_fields() {
            let Some(gap) = self.gap_of(pos) else {
                continue;
            };
            let days = data.index.days(pos);
            for w in 0..set.num_windows() {
                let window = set.window_range(w);
                let Some(last) = days.last_before(window.start()) else {
                    continue;
                };
                let elapsed = (window.start() - last) as f64;
                let steps = (elapsed / gap).ceil().max(1.0);
                let forecast = last.day_number() as f64 + steps * gap;
                if forecast < window.end().day_number() as f64 {
                    set.insert(pos as u32, w);
                }
            }
        }
        set.seal();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, CubeIndex, Date};

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    /// One perfectly periodic field (every 10 days) and one sparse field.
    fn cube() -> (wikistale_wikicube::ChangeCube, CubeIndex) {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let periodic = b.property("periodic");
        let sparse = b.property("sparse");
        let single = b.property("single");
        for k in 0..20 {
            b.change(day(k * 10), e, periodic, "v", ChangeKind::Update);
        }
        b.change(day(3), e, sparse, "v", ChangeKind::Update);
        b.change(day(150), e, sparse, "v", ChangeKind::Update);
        b.change(day(42), e, single, "v", ChangeKind::Update);
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        (cube, index)
    }

    #[test]
    fn training_computes_mean_gaps() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let mb = MeanBaseline::train(&data, DateRange::with_len(Date::EPOCH, 200));
        let pos_of = |name: &str| {
            index
                .position(wikistale_wikicube::FieldId::new(
                    cube.entity_id("E").unwrap(),
                    cube.property_id(name).unwrap(),
                ))
                .unwrap()
        };
        assert_eq!(mb.gap_of(pos_of("periodic")), Some(10.0));
        assert_eq!(mb.gap_of(pos_of("sparse")), Some(147.0));
        assert_eq!(mb.gap_of(pos_of("single")), None);
        assert_eq!(mb.num_modeled_fields(), 2);
        assert_eq!(mb.gap_of(999), None);
    }

    #[test]
    fn periodic_field_is_predicted_every_matching_window() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let mb = MeanBaseline::train(&data, DateRange::with_len(Date::EPOCH, 100));
        // Evaluate days 100..200 with 10-day windows: the field changes at
        // 100, 110, …; forecast from last-before-start always lands in the
        // window → predicted everywhere.
        let eval = DateRange::new(day(100), day(200));
        let set = mb.predict(&data, eval, 10);
        let pos = index
            .position(wikistale_wikicube::FieldId::new(
                cube.entity_id("E").unwrap(),
                cube.property_id("periodic").unwrap(),
            ))
            .unwrap() as u32;
        for w in 0..10u32 {
            assert!(set.contains(pos, w), "window {w}");
        }
    }

    #[test]
    fn sparse_field_predicted_only_near_due_date() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let mb = MeanBaseline::train(&data, DateRange::with_len(Date::EPOCH, 200));
        // sparse gap = 147, last change at 150 → forecast 297.
        let eval = DateRange::new(day(200), day(350));
        let set = mb.predict(&data, eval, 10);
        let pos = index
            .position(wikistale_wikicube::FieldId::new(
                cube.entity_id("E").unwrap(),
                cube.property_id("sparse").unwrap(),
            ))
            .unwrap() as u32;
        // Window containing day 297 is (297-200)/10 = 9.
        for w in 0..15u32 {
            assert_eq!(set.contains(pos, w), w == 9, "window {w}");
        }
    }

    #[test]
    fn no_history_before_window_means_no_prediction() {
        let (cube, index) = cube();
        let data = EvalData::new(&cube, &index);
        let mb = MeanBaseline::train(&data, DateRange::with_len(Date::EPOCH, 200));
        // Evaluate *before* all changes.
        let set = mb.predict(&data, DateRange::new(day(-100), day(-50)), 10);
        assert!(set.is_empty());
    }

    #[test]
    fn forecast_steps_over_long_silences() {
        // Last change long ago: forecast must step by ⌈elapsed/gap⌉, not
        // predict in every window after the silence.
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        for k in 0..5 {
            b.change(day(k * 7), e, p, "v", ChangeKind::Update);
        }
        let cube = b.finish();
        let index = CubeIndex::build(&cube);
        let data = EvalData::new(&cube, &index);
        let mb = MeanBaseline::train(&data, DateRange::with_len(Date::EPOCH, 100));
        // Last change day 28, gap 7. Window [100, 107): elapsed 72 →
        // steps = ⌈72/7⌉ = 11 → forecast 28 + 77 = 105 → inside.
        let set = mb.predict(&data, DateRange::new(day(100), day(107)), 7);
        assert_eq!(set.len(), 1);
        // Window [106, 113): steps = ⌈78/7⌉ = 12 → forecast 112 → inside.
        let set2 = mb.predict(&data, DateRange::new(day(106), day(113)), 7);
        assert_eq!(set2.len(), 1);
        // Window [99, 104): forecast 105 → outside (the change is due but
        // not within this window).
        let set3 = mb.predict(&data, DateRange::new(day(99), day(104)), 5);
        assert!(set3.is_empty());
    }
}
