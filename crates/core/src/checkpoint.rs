//! Crash-safe checkpointing for the experiment pipeline.
//!
//! A full-scale run of the paper's evaluation is hours of work: generate
//! (or ingest), filter, train, then evaluate four window granularities.
//! A crash near the end used to mean starting over. This module persists
//! a manifest after every completed stage so `experiment --resume` can
//! skip finished work:
//!
//! * artifact-producing stages (`generate`, `filter`) record the cube
//!   file they wrote plus its CRC-32 and length — on resume the file is
//!   re-verified before it is trusted;
//! * evaluation stages record their [`GranularityResults`] exactly (all
//!   fields are integers, so the JSON round trip is lossless) — a
//!   resumed run reproduces the uninterrupted run's [`PaperResults`]
//!   byte for byte;
//! * training records a [`ResultsSummary`] (rule counts, coverage, the
//!   Figure 3 histogram) the final report needs.
//!
//! The manifest itself is written atomically (temp file + fsync +
//! rename, via [`wikistale_wikicube::binio::write_bytes_atomic`]), so a
//! crash *during* a checkpoint leaves the previous manifest intact. A
//! manifest is bound to the experiment configuration through a
//! fingerprint: resuming with different parameters is refused instead of
//! silently mixing incompatible partial results.

use crate::eval::{EvalOutcome, Overlap};
use crate::experiment::{GranularityResults, PaperResults};
use std::io;
use std::path::{Path, PathBuf};
use wikistale_obs::json::{self, Value};
use wikistale_wikicube::binio::write_bytes_atomic;
use wikistale_wikicube::crc32::crc32;
use wikistale_wikicube::TemplateId;

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Why a checkpoint could not be loaded, verified, or saved.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The manifest or a recorded artifact does not match what was
    /// written (bad JSON, wrong CRC, wrong length).
    Corrupt(String),
    /// The manifest belongs to a run with different parameters.
    FingerprintMismatch {
        /// Fingerprint of the current configuration.
        expected: String,
        /// Fingerprint stored in the manifest.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint was written by a run with different parameters \
                 (manifest fingerprint {found}, current configuration {expected}); \
                 delete the checkpoint directory or rerun with the original flags"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit hash of a configuration description, hex-encoded.
/// Stable across runs and platforms; used to bind a checkpoint directory
/// to the exact experiment parameters that produced it.
pub fn fingerprint(desc: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in desc.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// A completed artifact-producing stage: which file it wrote and the
/// checksum/length to verify on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name (`generate`, `filter`, …).
    pub name: String,
    /// File name of the artifact, relative to the checkpoint directory.
    pub file: String,
    /// CRC-32 of the artifact bytes.
    pub crc32: u32,
    /// Length of the artifact in bytes.
    pub len: u64,
}

/// Training outputs the final report needs besides the per-granularity
/// tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultsSummary {
    /// Number of undirected field-correlation rules.
    pub num_field_corr_rules: usize,
    /// Number of surviving association rules.
    pub num_assoc_rules: usize,
    /// Entities covered by at least one association rule's template.
    pub covered_entities: usize,
    /// Figure 3 input: surviving rule count per template.
    pub rules_per_template: Vec<(TemplateId, usize)>,
}

/// The on-disk record of a partially (or fully) completed experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointManifest {
    /// Fingerprint of the configuration this checkpoint belongs to.
    pub fingerprint: String,
    stages: Vec<StageRecord>,
    granularities: Vec<GranularityResults>,
    summary: Option<ResultsSummary>,
}

impl CheckpointManifest {
    /// Fresh manifest for a configuration fingerprint.
    pub fn new(fingerprint: impl Into<String>) -> CheckpointManifest {
        CheckpointManifest {
            fingerprint: fingerprint.into(),
            stages: Vec::new(),
            granularities: Vec::new(),
            summary: None,
        }
    }

    /// Path of the manifest file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Load the manifest from `dir`; `Ok(None)` when none exists yet.
    pub fn load(dir: &Path) -> Result<Option<CheckpointManifest>, CheckpointError> {
        let path = CheckpointManifest::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        parse_manifest(&text)
            .map(Some)
            .map_err(|why| CheckpointError::Corrupt(format!("{}: {why}", path.display())))
    }

    /// Load the manifest from `dir` and require it to match `expected`
    /// (the fingerprint of the current configuration).
    pub fn load_expecting(
        dir: &Path,
        expected: &str,
    ) -> Result<Option<CheckpointManifest>, CheckpointError> {
        match CheckpointManifest::load(dir)? {
            None => Ok(None),
            Some(m) if m.fingerprint == expected => Ok(Some(m)),
            Some(m) => Err(CheckpointError::FingerprintMismatch {
                expected: expected.to_owned(),
                found: m.fingerprint,
            }),
        }
    }

    /// Atomically persist the manifest into `dir` (created if missing).
    pub fn save(&self, dir: &Path) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(dir)?;
        write_bytes_atomic(&CheckpointManifest::path_in(dir), self.render().as_bytes())?;
        Ok(())
    }

    /// The record of a completed artifact stage, if present.
    pub fn stage(&self, name: &str) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Record (or replace) a completed artifact stage. `bytes` are the
    /// artifact's full contents, already written to `file`.
    pub fn record_stage(&mut self, name: &str, file: &str, bytes: &[u8]) {
        let record = StageRecord {
            name: name.to_owned(),
            file: file.to_owned(),
            crc32: crc32(bytes),
            len: bytes.len() as u64,
        };
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(slot) => *slot = record,
            None => self.stages.push(record),
        }
    }

    /// Read back and verify the artifact of stage `name` from `dir`.
    ///
    /// `Ok(None)` when the stage was never completed or its file has
    /// since disappeared (the caller recomputes); a checksum or length
    /// mismatch is [`CheckpointError::Corrupt`] — a half-written or
    /// bit-rotted artifact must never be silently reused.
    pub fn verified_stage_bytes(
        &self,
        dir: &Path,
        name: &str,
    ) -> Result<Option<Vec<u8>>, CheckpointError> {
        let Some(record) = self.stage(name) else {
            return Ok(None);
        };
        let path = dir.join(&record.file);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        if bytes.len() as u64 != record.len {
            return Err(CheckpointError::Corrupt(format!(
                "stage {name:?} artifact {}: expected {} bytes, found {}",
                path.display(),
                record.len,
                bytes.len()
            )));
        }
        let computed = crc32(&bytes);
        if computed != record.crc32 {
            return Err(CheckpointError::Corrupt(format!(
                "stage {name:?} artifact {}: CRC-32 mismatch \
                 (manifest {:#010x}, file {computed:#010x})",
                path.display(),
                record.crc32,
            )));
        }
        Ok(Some(bytes))
    }

    /// Results for window size `g`, if that granularity completed.
    pub fn granularity(&self, g: u32) -> Option<&GranularityResults> {
        self.granularities.iter().find(|r| r.granularity == g)
    }

    /// Record (or replace) one completed granularity.
    pub fn record_granularity(&mut self, results: GranularityResults) {
        match self
            .granularities
            .iter_mut()
            .find(|r| r.granularity == results.granularity)
        {
            Some(slot) => *slot = results,
            None => self.granularities.push(results),
        }
    }

    /// The training summary, if training completed.
    pub fn summary(&self) -> Option<&ResultsSummary> {
        self.summary.as_ref()
    }

    /// Record the training summary.
    pub fn set_summary(&mut self, summary: ResultsSummary) {
        self.summary = Some(summary);
    }

    /// Assemble the full [`PaperResults`] if the summary and every
    /// granularity in `order` completed; granularities come out in
    /// `order`, matching an uninterrupted run exactly.
    pub fn assemble_results(&self, order: &[u32]) -> Option<PaperResults> {
        let summary = self.summary.as_ref()?;
        let per_granularity = order
            .iter()
            .map(|&g| self.granularity(g).cloned())
            .collect::<Option<Vec<_>>>()?;
        Some(PaperResults {
            per_granularity,
            rules_per_template: summary.rules_per_template.clone(),
            num_field_corr_rules: summary.num_field_corr_rules,
            num_assoc_rules: summary.num_assoc_rules,
            covered_entities: summary.covered_entities,
        })
    }

    /// Render the manifest as JSON.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"fingerprint\": {},\n",
            json::escape(&self.fingerprint)
        ));
        out.push_str("  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"file\": {}, \"crc32\": {}, \"len\": {}}}",
                json::escape(&s.name),
                json::escape(&s.file),
                s.crc32,
                s.len
            ));
        }
        out.push_str(if self.stages.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"granularities\": [");
        for (i, g) in self.granularities.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&granularity_json(g));
        }
        out.push_str(if self.granularities.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"summary\": ");
        match &self.summary {
            None => out.push_str("null"),
            Some(s) => {
                out.push_str(&format!(
                    "{{\"num_field_corr_rules\": {}, \"num_assoc_rules\": {}, \
                     \"covered_entities\": {}, \"rules_per_template\": [",
                    s.num_field_corr_rules, s.num_assoc_rules, s.covered_entities
                ));
                for (i, (t, n)) in s.rules_per_template.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", t.0, n));
                }
                out.push_str("]}");
            }
        }
        out.push_str("\n}\n");
        out
    }
}

fn outcome_json(o: &EvalOutcome) -> String {
    format!("[{},{},{}]", o.predictions, o.true_positives, o.truth_total)
}

fn granularity_json(g: &GranularityResults) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"granularity\": {}, \"truth_total\": {}, ",
        g.granularity, g.truth_total
    ));
    out.push_str(&format!(
        "\"mean_baseline\": {}, \"threshold_baseline\": {}, \
         \"field_correlations\": {}, \"association_rules\": {}, \
         \"and_ensemble\": {}, \"or_ensemble\": {}, ",
        outcome_json(&g.mean_baseline),
        outcome_json(&g.threshold_baseline),
        outcome_json(&g.field_correlations),
        outcome_json(&g.association_rules),
        outcome_json(&g.and_ensemble),
        outcome_json(&g.or_ensemble),
    ));
    out.push_str(&format!(
        "\"fc_ar_overlap\": [{},{},{}], ",
        g.fc_ar_overlap.shared, g.fc_ar_overlap.a_total, g.fc_ar_overlap.b_total
    ));
    out.push_str("\"weekly_series\": ");
    match &g.weekly_series {
        None => out.push_str("null"),
        Some(series) => {
            out.push('[');
            for (i, s) in series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, o) in s.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&outcome_json(o));
                }
                out.push(']');
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Parsing. All counts in the manifest are integers well below 2^53, so
// the f64-backed JSON numbers round-trip exactly.

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

fn num_usize(v: &Value, key: &str) -> Result<usize, String> {
    Ok(num(v, key)? as usize)
}

fn parse_outcome(v: &Value, key: &str) -> Result<EvalOutcome, String> {
    let items = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing outcome {key:?}"))?;
    outcome_from_array(items).map_err(|e| format!("{key}: {e}"))
}

fn outcome_from_array(items: &[Value]) -> Result<EvalOutcome, String> {
    if items.len() != 3 {
        return Err(format!("expected 3 counts, found {}", items.len()));
    }
    let take = |i: usize| -> Result<usize, String> {
        items[i]
            .as_f64()
            .map(|f| f as usize)
            .ok_or_else(|| "non-numeric count".to_owned())
    };
    Ok(EvalOutcome {
        predictions: take(0)?,
        true_positives: take(1)?,
        truth_total: take(2)?,
    })
}

fn parse_granularity(v: &Value) -> Result<GranularityResults, String> {
    let weekly_series = match v.get("weekly_series") {
        None | Some(Value::Null) => None,
        Some(Value::Array(series)) => {
            let mut parsed: Vec<Vec<EvalOutcome>> = Vec::with_capacity(series.len());
            for s in series {
                let outcomes = s
                    .as_array()
                    .ok_or("weekly_series element is not an array")?
                    .iter()
                    .map(|o| {
                        o.as_array()
                            .ok_or_else(|| "weekly outcome is not an array".to_owned())
                            .and_then(outcome_from_array)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                parsed.push(outcomes);
            }
            let arr: [Vec<EvalOutcome>; 4] = parsed
                .try_into()
                .map_err(|_| "weekly_series must hold exactly 4 series".to_owned())?;
            Some(arr)
        }
        Some(_) => return Err("weekly_series must be null or an array".to_owned()),
    };
    let overlap = v
        .get("fc_ar_overlap")
        .and_then(Value::as_array)
        .ok_or("missing fc_ar_overlap")?;
    if overlap.len() != 3 {
        return Err("fc_ar_overlap must hold 3 counts".to_owned());
    }
    let ov = |i: usize| -> Result<usize, String> {
        overlap[i]
            .as_f64()
            .map(|f| f as usize)
            .ok_or_else(|| "non-numeric overlap count".to_owned())
    };
    Ok(GranularityResults {
        granularity: num(v, "granularity")? as u32,
        truth_total: num_usize(v, "truth_total")?,
        mean_baseline: parse_outcome(v, "mean_baseline")?,
        threshold_baseline: parse_outcome(v, "threshold_baseline")?,
        field_correlations: parse_outcome(v, "field_correlations")?,
        association_rules: parse_outcome(v, "association_rules")?,
        and_ensemble: parse_outcome(v, "and_ensemble")?,
        or_ensemble: parse_outcome(v, "or_ensemble")?,
        fc_ar_overlap: Overlap {
            shared: ov(0)?,
            a_total: ov(1)?,
            b_total: ov(2)?,
        },
        weekly_series,
    })
}

fn parse_summary(v: &Value) -> Result<ResultsSummary, String> {
    let rules = v
        .get("rules_per_template")
        .and_then(Value::as_array)
        .ok_or("missing rules_per_template")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .ok_or_else(|| "rules_per_template entry is not a pair".to_owned())?;
            if pair.len() != 2 {
                return Err("rules_per_template entry is not a pair".to_owned());
            }
            let t = pair[0]
                .as_f64()
                .ok_or_else(|| "non-numeric template id".to_owned())? as u32;
            let n = pair[1]
                .as_f64()
                .ok_or_else(|| "non-numeric rule count".to_owned())? as usize;
            Ok((TemplateId(t), n))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ResultsSummary {
        num_field_corr_rules: num_usize(v, "num_field_corr_rules")?,
        num_assoc_rules: num_usize(v, "num_assoc_rules")?,
        covered_entities: num_usize(v, "covered_entities")?,
        rules_per_template: rules,
    })
}

fn parse_manifest(text: &str) -> Result<CheckpointManifest, String> {
    let v = json::parse(text)?;
    let fingerprint = v
        .get("fingerprint")
        .and_then(Value::as_str)
        .ok_or("missing fingerprint")?
        .to_owned();
    let stages = v
        .get("stages")
        .and_then(Value::as_array)
        .ok_or("missing stages")?
        .iter()
        .map(|s| {
            Ok(StageRecord {
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("stage missing name")?
                    .to_owned(),
                file: s
                    .get("file")
                    .and_then(Value::as_str)
                    .ok_or("stage missing file")?
                    .to_owned(),
                crc32: num(s, "crc32")? as u32,
                len: num(s, "len")? as u64,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let granularities = v
        .get("granularities")
        .and_then(Value::as_array)
        .ok_or("missing granularities")?
        .iter()
        .map(parse_granularity)
        .collect::<Result<Vec<_>, String>>()?;
    let summary = match v.get("summary") {
        None | Some(Value::Null) => None,
        Some(s) => Some(parse_summary(s)?),
    };
    Ok(CheckpointManifest {
        fingerprint,
        stages,
        granularities,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(p: usize, tp: usize, tt: usize) -> EvalOutcome {
        EvalOutcome {
            predictions: p,
            true_positives: tp,
            truth_total: tt,
        }
    }

    fn sample_granularity(g: u32, with_series: bool) -> GranularityResults {
        GranularityResults {
            granularity: g,
            truth_total: 1234,
            mean_baseline: outcome(10, 5, 1234),
            threshold_baseline: outcome(20, 15, 1234),
            field_correlations: outcome(30, 28, 1234),
            association_rules: outcome(40, 37, 1234),
            and_ensemble: outcome(25, 24, 1234),
            or_ensemble: outcome(45, 41, 1234),
            fc_ar_overlap: Overlap {
                shared: 25,
                a_total: 30,
                b_total: 40,
            },
            weekly_series: with_series.then(|| {
                [
                    vec![outcome(1, 1, 2); 3],
                    vec![outcome(2, 1, 2); 3],
                    vec![outcome(3, 2, 4); 3],
                    vec![outcome(4, 3, 4); 3],
                ]
            }),
        }
    }

    fn sample_manifest() -> CheckpointManifest {
        let mut m = CheckpointManifest::new("deadbeefcafef00d");
        m.record_stage("generate", "generate.wcube", b"some cube bytes");
        m.record_stage("filter", "filter.wcube", b"other bytes");
        m.record_granularity(sample_granularity(1, false));
        m.record_granularity(sample_granularity(7, true));
        m.set_summary(ResultsSummary {
            num_field_corr_rules: 11,
            num_assoc_rules: 22,
            covered_entities: 33,
            rules_per_template: vec![(TemplateId(3), 9), (TemplateId(0), 2)],
        });
        m
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample_manifest();
        let rendered = m.render();
        wikistale_obs::json::validate(&rendered).expect("manifest is valid JSON");
        let back = parse_manifest(&rendered).expect("manifest parses");
        assert_eq!(m, back);
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = CheckpointManifest::new("00");
        let back = parse_manifest(&m.render()).unwrap();
        assert_eq!(m, back);
        assert!(back.assemble_results(&[1, 7]).is_none());
    }

    #[test]
    fn save_load_and_stage_verification() {
        let dir = std::env::temp_dir().join(format!("wikistale-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert!(CheckpointManifest::load(&dir).unwrap().is_none());

        let mut m = CheckpointManifest::new("f00d");
        let artifact = b"pretend this is a cube".to_vec();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("generate.wcube"), &artifact).unwrap();
        m.record_stage("generate", "generate.wcube", &artifact);
        m.save(&dir).unwrap();

        let loaded = CheckpointManifest::load_expecting(&dir, "f00d")
            .unwrap()
            .unwrap();
        assert_eq!(loaded, m);
        // Intact artifact verifies and comes back byte-identical.
        let bytes = loaded.verified_stage_bytes(&dir, "generate").unwrap();
        assert_eq!(bytes.as_deref(), Some(&artifact[..]));
        // Unknown stage: recompute signal, not an error.
        assert!(loaded
            .verified_stage_bytes(&dir, "filter")
            .unwrap()
            .is_none());
        // Wrong fingerprint: refused.
        assert!(matches!(
            CheckpointManifest::load_expecting(&dir, "beef"),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        // Corrupt the artifact: flagged, never silently reused.
        let mut evil = artifact.clone();
        evil[3] ^= 0x40;
        std::fs::write(dir.join("generate.wcube"), &evil).unwrap();
        assert!(matches!(
            loaded.verified_stage_bytes(&dir, "generate"),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncated artifact: also flagged (length check).
        std::fs::write(dir.join("generate.wcube"), &artifact[..5]).unwrap();
        assert!(matches!(
            loaded.verified_stage_bytes(&dir, "generate"),
            Err(CheckpointError::Corrupt(_))
        ));
        // Deleted artifact: recompute signal.
        std::fs::remove_file(dir.join("generate.wcube")).unwrap();
        assert!(loaded
            .verified_stage_bytes(&dir, "generate")
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assemble_results_requires_everything() {
        let m = sample_manifest();
        assert!(m.assemble_results(&[1, 7, 30]).is_none(), "30d missing");
        let results = m.assemble_results(&[7, 1]).expect("1d and 7d present");
        assert_eq!(results.per_granularity.len(), 2);
        // Order follows the request, not insertion.
        assert_eq!(results.per_granularity[0].granularity, 7);
        assert_eq!(results.per_granularity[1].granularity, 1);
        assert_eq!(results.num_assoc_rules, 22);
        assert_eq!(results.rules_per_template[0], (TemplateId(3), 9));
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("wikistale-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), b"{not json").unwrap();
        assert!(matches!(
            CheckpointManifest::load(&dir),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
