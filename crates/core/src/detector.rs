//! The one-call deployment facade: [`StalenessDetector`].
//!
//! Everything the paper's envisioned Wikipedia deployment needs in one
//! owned object — feed it a raw change cube (from a dump or the
//! generator), it filters, trains all predictors, and then answers the
//! production question: *which fields should be flagged "this value might
//! be out of date" for the week that just ended, and why?*
//!
//! ```
//! use wikistale_core::detector::{DetectorConfig, StalenessDetector};
//! use wikistale_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::tiny());
//! let detector =
//!     StalenessDetector::train_from_raw(&corpus.cube, &DetectorConfig::default()).unwrap();
//! let last_monday = "2019-06-03".parse().unwrap();
//! for flag in detector.flag_week(last_monday) {
//!     println!("{}", flag.render(&detector.data()));
//! }
//! ```

use crate::ensemble::or_ensemble;
use crate::experiment::{ExperimentConfig, TrainedPredictors};
use crate::explain::{explain, Explanation, Reason};
use crate::filters::{FilterPipeline, FilterReport};
use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use crate::predictors::{SeasonalParams, SeasonalPredictor};
use wikistale_wikicube::{ChangeCube, CubeIndex, Date, DateRange};

/// Configuration of the full detector stack.
#[derive(Debug, Clone, Default)]
pub struct DetectorConfig {
    /// Filter pipeline applied to the raw cube (paper defaults).
    pub filter: FilterPipeline,
    /// Predictor hyper-parameters (paper grid-search optima).
    pub experiment: ExperimentConfig,
    /// Also run the §6 seasonal-recurrence extension. `None` disables it;
    /// it only adds flags (never removes), so leaving it on is safe for
    /// recall and costs a bounded amount of precision at fine
    /// granularities (see experiment X1).
    pub seasonal: Option<SeasonalParams>,
}

/// Errors constructing a detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorError {
    /// The raw cube is empty or everything was filtered away.
    NoTrainingData,
    /// The training cutoff leaves no history.
    EmptyTrainingRange,
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::NoTrainingData => {
                f.write_str("no changes survive filtering — nothing to train on")
            }
            DetectorError::EmptyTrainingRange => {
                f.write_str("training cutoff leaves no history before it")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// A trained, self-contained staleness detector.
#[derive(Debug)]
pub struct StalenessDetector {
    filtered: ChangeCube,
    index: CubeIndex,
    trained: TrainedPredictors,
    seasonal: Option<SeasonalPredictor>,
    filter_report: FilterReport,
    train_range: DateRange,
}

impl StalenessDetector {
    /// Filter `raw` and train on its entire history.
    pub fn train_from_raw(
        raw: &ChangeCube,
        config: &DetectorConfig,
    ) -> Result<StalenessDetector, DetectorError> {
        let cutoff = raw
            .time_span()
            .map(|s| s.end())
            .ok_or(DetectorError::NoTrainingData)?;
        StalenessDetector::train_until(raw, cutoff, config)
    }

    /// Filter `raw` and train only on changes strictly before `cutoff` —
    /// the deployment shape, where the detector must not see the window it
    /// will later be asked about.
    pub fn train_until(
        raw: &ChangeCube,
        cutoff: Date,
        config: &DetectorConfig,
    ) -> Result<StalenessDetector, DetectorError> {
        let (filtered, filter_report) = config.filter.apply(raw);
        let span = filtered.time_span().ok_or(DetectorError::NoTrainingData)?;
        if cutoff <= span.start() {
            return Err(DetectorError::EmptyTrainingRange);
        }
        let train_range = DateRange::new(span.start(), cutoff);
        let index = CubeIndex::build(&filtered);
        let trained = {
            let data = EvalData::new(&filtered, &index);
            TrainedPredictors::train(&data, train_range, &config.experiment)
        };
        Ok(StalenessDetector {
            filtered,
            index,
            trained,
            seasonal: config.seasonal.clone().map(SeasonalPredictor::new),
            filter_report,
            train_range,
        })
    }

    /// The filtered cube + index the detector runs on.
    pub fn data(&self) -> EvalData<'_> {
        EvalData::new(&self.filtered, &self.index)
    }

    /// Per-stage accounting of the filter pipeline run at construction.
    pub fn filter_report(&self) -> &FilterReport {
        &self.filter_report
    }

    /// The range the predictors were trained on.
    pub fn train_range(&self) -> DateRange {
        self.train_range
    }

    /// The trained predictors, for direct access.
    pub fn predictors(&self) -> &TrainedPredictors {
        &self.trained
    }

    /// Flag potentially stale fields for the 7 days before `week_end`
    /// (exclusive) — the paper's deployment cadence.
    pub fn flag_week(&self, week_end: Date) -> Vec<Explanation> {
        self.flag(DateRange::new(week_end - 7, week_end))
    }

    /// Flag potentially stale fields for an arbitrary window: fields some
    /// predictor expected to change inside `window` that did not visibly
    /// change there, each with its explanation.
    pub fn flag(&self, window: DateRange) -> Vec<Explanation> {
        let data = self.data();
        let granularity = window.len_days().max(1);
        let fc = self.trained.field_corr.predict(&data, window, granularity);
        let ar = self.trained.assoc.predict(&data, window, granularity);
        let mut positives: PredictionSet = or_ensemble(&fc, &ar);
        if let Some(seasonal) = &self.seasonal {
            positives = or_ensemble(&positives, &seasonal.predict(&data, window, granularity));
        }

        let mut flags = Vec::new();
        for &(pos, _) in positives.items() {
            let pos = pos as usize;
            // A field the reader already sees freshly updated needs no
            // banner (in the §5 protocol those are the true positives).
            if self.index.changed_in(pos, window.start(), window.end()) {
                continue;
            }
            let field = self.index.field(pos);
            let mut explanation = explain(
                &data,
                &self.trained.field_corr,
                &self.trained.assoc,
                field,
                window,
            )
            .unwrap_or(Explanation {
                field,
                window,
                reasons: Vec::new(),
            });
            if let Some(seasonal) = &self.seasonal {
                let days = self.index.days(pos).to_vec();
                if let Some((hits, observable)) = seasonal.recurrence(&days, window) {
                    // Only attach when it actually carries signal.
                    if observable >= seasonal.params.min_years && hits > 0 {
                        explanation
                            .reasons
                            .push(Reason::AnnualRecurrence { hits, observable });
                    }
                }
            }
            if !explanation.reasons.is_empty() {
                flags.push(explanation);
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_synth::{generate, SynthConfig};

    fn detector() -> (StalenessDetector, wikistale_synth::SynthCorpus) {
        let corpus = generate(&SynthConfig::tiny());
        let cutoff = Date::from_ymd(2019, 1, 1).unwrap();
        let detector = StalenessDetector::train_until(
            &corpus.cube,
            cutoff,
            &DetectorConfig {
                seasonal: Some(SeasonalParams::default()),
                ..DetectorConfig::default()
            },
        )
        .unwrap();
        (detector, corpus)
    }

    #[test]
    fn trains_and_flags_with_explanations() {
        let (detector, _corpus) = detector();
        assert!(detector.predictors().field_corr.num_rules() > 0);
        assert!(detector.predictors().assoc.num_rules() > 0);
        // Scan every complete week after the cutoff; banner flags are
        // rare by design (high precision ⇒ most predictions were real
        // changes, which need no banner), so cover the whole remainder
        // of the corpus. Deterministic via the fixed seed.
        let mut total_flags = 0;
        for week in 0..34 {
            let end = Date::from_ymd(2019, 1, 8).unwrap() + week * 7;
            for flag in detector.flag_week(end) {
                total_flags += 1;
                assert!(!flag.reasons.is_empty());
                let text = flag.render(&detector.data());
                assert!(text.contains("might be out of date"));
            }
        }
        assert!(total_flags > 0, "no flags across 34 weeks");
    }

    #[test]
    fn flagged_fields_did_not_change_in_window() {
        let (detector, _) = detector();
        let window = DateRange::new(
            Date::from_ymd(2019, 3, 1).unwrap(),
            Date::from_ymd(2019, 3, 8).unwrap(),
        );
        for flag in detector.flag(window) {
            let pos = detector.data().index.position(flag.field).unwrap();
            assert!(!detector
                .data()
                .index
                .changed_in(pos, window.start(), window.end()));
        }
    }

    #[test]
    fn train_range_respects_cutoff() {
        let (detector, _) = detector();
        assert_eq!(
            detector.train_range().end(),
            Date::from_ymd(2019, 1, 1).unwrap()
        );
        assert!(detector.filter_report().original > 0);
    }

    #[test]
    fn error_paths() {
        let empty = wikistale_wikicube::ChangeCubeBuilder::new().finish();
        assert_eq!(
            StalenessDetector::train_from_raw(&empty, &DetectorConfig::default()).unwrap_err(),
            DetectorError::NoTrainingData
        );
        let corpus = generate(&SynthConfig::tiny());
        let too_early = Date::from_ymd(1990, 1, 1).unwrap();
        assert_eq!(
            StalenessDetector::train_until(&corpus.cube, too_early, &DetectorConfig::default())
                .unwrap_err(),
            DetectorError::EmptyTrainingRange
        );
        assert!(DetectorError::NoTrainingData
            .to_string()
            .contains("nothing"));
    }

    #[test]
    fn seasonal_flag_reasons_render() {
        // Build a purely seasonal field: no correlations, no rules — only
        // the seasonal predictor can flag it.
        let mut b = wikistale_wikicube::ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("annual");
        for year in 0..10 {
            for k in 0..5 {
                // Five changes per burst keep the field past the min-5
                // filter; bursts always start on day 100 of the year.
                b.change(
                    Date::EPOCH + year * 365 + 100 + k,
                    e,
                    p,
                    &format!("v{year}-{k}"),
                    wikistale_wikicube::ChangeKind::Update,
                );
            }
        }
        let cube = b.finish();
        let detector = StalenessDetector::train_until(
            &cube,
            Date::EPOCH + 10 * 365,
            &DetectorConfig {
                seasonal: Some(SeasonalParams::default()),
                ..DetectorConfig::default()
            },
        )
        .unwrap();
        let window = DateRange::new(Date::EPOCH + 10 * 365 + 98, Date::EPOCH + 10 * 365 + 105);
        let flags = detector.flag(window);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(matches!(
            flags[0].reasons[0],
            Reason::AnnualRecurrence { hits, observable } if hits >= 8 && observable >= 8
        ));
        let text = flags[0].render(&detector.data());
        assert!(text.contains("time of year"), "{text}");
    }
}
