//! End-to-end orchestration of the paper's evaluation (§5): train the
//! predictors, run every granularity, and collect everything the tables
//! and figures need.

use crate::eval::{evaluate, overlap, per_window_series, truth_set, EvalOutcome, Overlap};
use crate::predictor::EvalData;
use crate::predictors::{
    AssocParams, AssociationRulePredictor, FieldCorrelation, FieldCorrelationParams, MeanBaseline,
    ThresholdBaseline,
};
use crate::split::EvalSplit;
use wikistale_wikicube::{ChangeCube, CubeIndex, DateRange, TemplateId};

/// Hyper-parameters of the full experiment; defaults are the paper's
/// grid-search optima (§5.2).
#[derive(Debug, Clone, Default)]
pub struct ExperimentConfig {
    /// Field-correlation parameters (θ = 0.1).
    pub field_corr: FieldCorrelationParams,
    /// Association-rule parameters (support 0.25 %, confidence 60 %,
    /// 10 % rule-validation holdout at 90 % precision).
    pub assoc: AssocParams,
    /// Threshold-baseline threshold (85 %).
    pub threshold_baseline: ThresholdBaselineConfig,
}

/// Wrapper so the config stays plain-old-data.
#[derive(Debug, Clone)]
pub struct ThresholdBaselineConfig {
    /// Required fraction of reference windows with a change.
    pub threshold: f64,
}

impl Default for ThresholdBaselineConfig {
    fn default() -> ThresholdBaselineConfig {
        ThresholdBaselineConfig { threshold: 0.85 }
    }
}

/// Everything §5 reports for one window granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityResults {
    /// Window size in days.
    pub granularity: u32,
    /// Total (field, window) pairs containing a change — the paper quotes
    /// these as "the total number of windows containing changes".
    pub truth_total: usize,
    /// Table 1 rows.
    pub mean_baseline: EvalOutcome,
    /// Table 1 rows.
    pub threshold_baseline: EvalOutcome,
    /// Table 1 rows.
    pub field_correlations: EvalOutcome,
    /// Table 1 rows.
    pub association_rules: EvalOutcome,
    /// Table 1 rows.
    pub and_ensemble: EvalOutcome,
    /// Table 1 rows.
    pub or_ensemble: EvalOutcome,
    /// §5.3.4: prediction overlap between field correlations and
    /// association rules.
    pub fc_ar_overlap: Overlap,
    /// Figure 4 input: per-window outcome series for the four §3
    /// predictors, in the order FC, AR, AND, OR.
    pub weekly_series: Option<[Vec<EvalOutcome>; 4]>,
}

/// The complete evaluation output.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperResults {
    /// One entry per granularity (1, 7, 30, 365 by default).
    pub per_granularity: Vec<GranularityResults>,
    /// Figure 3 input: surviving association-rule count per template.
    pub rules_per_template: Vec<(TemplateId, usize)>,
    /// Number of undirected field-correlation rules.
    pub num_field_corr_rules: usize,
    /// Number of surviving association rules.
    pub num_assoc_rules: usize,
    /// Entities covered by at least one association rule's template.
    pub covered_entities: usize,
}

impl PaperResults {
    /// The results for a given window size, if evaluated.
    pub fn granularity(&self, days: u32) -> Option<&GranularityResults> {
        self.per_granularity.iter().find(|g| g.granularity == days)
    }
}

/// The §3 predictors trained on one range, bundled for reuse by the
/// experiments and the grid searches.
#[derive(Debug)]
pub struct TrainedPredictors {
    /// Field correlations (§3.2).
    pub field_corr: FieldCorrelation,
    /// Association rules (§3.3).
    pub assoc: AssociationRulePredictor,
    /// Mean baseline (§5.2).
    pub mean: MeanBaseline,
    /// Threshold baseline (§5.2).
    pub threshold: ThresholdBaseline,
}

impl TrainedPredictors {
    /// Train everything on `range`.
    pub fn train(
        data: &EvalData<'_>,
        range: DateRange,
        config: &ExperimentConfig,
    ) -> TrainedPredictors {
        let obs = wikistale_obs::MetricsRegistry::global();
        let _span = obs.span("train");
        let field_corr = {
            let _s = obs.span("field_corr");
            FieldCorrelation::train(data, range, config.field_corr.clone())
        };
        let assoc = {
            let _s = obs.span("assoc");
            AssociationRulePredictor::train(data, range, config.assoc.clone())
        };
        let mean = {
            let _s = obs.span("mean");
            MeanBaseline::train(data, range)
        };
        let threshold = {
            let _s = obs.span("threshold");
            ThresholdBaseline {
                threshold: config.threshold_baseline.threshold,
            }
        };
        obs.counter("train/field_corr_rules")
            .add(field_corr.num_rules() as u64);
        obs.counter("train/assoc_rules")
            .add(assoc.num_rules() as u64);
        TrainedPredictors {
            field_corr,
            assoc,
            mean,
            threshold,
        }
    }
}

/// Evaluate trained predictors on `eval_range` at one granularity.
pub fn evaluate_granularity(
    data: &EvalData<'_>,
    predictors: &TrainedPredictors,
    eval_range: DateRange,
    granularity: u32,
    with_weekly_series: bool,
) -> GranularityResults {
    let obs = wikistale_obs::MetricsRegistry::global();
    let _span = obs.span(&format!("granularity_{granularity}d"));
    let truth = {
        let _s = obs.span("truth");
        truth_set(data.index, eval_range, granularity)
    };
    // The predictor sweep lives in `scoring::predict_all` so the serving
    // layer answers queries through the very same code path.
    let crate::scoring::PredictedSets {
        field_corr: fc,
        assoc: ar,
        mean,
        threshold,
        and,
        or,
    } = crate::scoring::predict_all(data, predictors, eval_range, granularity);

    let _s = obs.span("eval");
    let weekly_series = with_weekly_series.then(|| {
        [
            per_window_series(&fc, &truth),
            per_window_series(&ar, &truth),
            per_window_series(&and, &truth),
            per_window_series(&or, &truth),
        ]
    });

    GranularityResults {
        granularity,
        truth_total: truth.len(),
        mean_baseline: evaluate(&mean, &truth),
        threshold_baseline: evaluate(&threshold, &truth),
        field_correlations: evaluate(&fc, &truth),
        association_rules: evaluate(&ar, &truth),
        and_ensemble: evaluate(&and, &truth),
        or_ensemble: evaluate(&or, &truth),
        fc_ar_overlap: overlap(&fc, &ar),
        weekly_series,
    }
}

/// Run the full §5 evaluation on a *filtered* cube: train the final models
/// on training + validation, evaluate on the test year at every paper
/// granularity.
pub fn run_paper_evaluation(
    filtered: &ChangeCube,
    split: &EvalSplit,
    config: &ExperimentConfig,
) -> PaperResults {
    let index = {
        let _s = wikistale_obs::MetricsRegistry::global().span("index");
        CubeIndex::build(filtered)
    };
    let data = EvalData::new(filtered, &index);
    let predictors = TrainedPredictors::train(&data, split.train_and_validation(), config);
    results_for(&data, &predictors, split.test, Concurrency::Parallel)
}

/// [`run_paper_evaluation`] with the granularities evaluated one after
/// another on the calling thread. Slower, but every span lands on one
/// thread-local stack, so the metrics registry sees a single nested stage
/// tree whose top-level totals sum to the true wall time — the mode the
/// CLI `experiment` subcommand uses for `--metrics` output.
pub fn run_paper_evaluation_serial(
    filtered: &ChangeCube,
    split: &EvalSplit,
    config: &ExperimentConfig,
) -> PaperResults {
    let index = {
        let _s = wikistale_obs::MetricsRegistry::global().span("index");
        CubeIndex::build(filtered)
    };
    let data = EvalData::new(filtered, &index);
    let predictors = TrainedPredictors::train(&data, split.train_and_validation(), config);
    results_for(&data, &predictors, split.test, Concurrency::Serial)
}

/// [`run_paper_evaluation_serial`] with checkpoint/resume support.
///
/// Work already recorded in `manifest` (granularity results, the
/// training summary) is skipped; freshly completed work is recorded into
/// `manifest`, and `on_stage` is invoked after each newly finished stage
/// (`train`, then `granularity_1`, `granularity_7`, …) so the caller can
/// persist the manifest — or, in the fault-injection harness, die right
/// there. When the manifest already holds everything, the saved results
/// are returned without touching the cube; they are exact (all counts
/// are integers), so a resumed run reproduces the uninterrupted run's
/// [`PaperResults`] precisely.
pub fn run_paper_evaluation_resumable(
    filtered: &ChangeCube,
    split: &EvalSplit,
    config: &ExperimentConfig,
    manifest: &mut crate::checkpoint::CheckpointManifest,
    on_stage: &mut dyn FnMut(&str, &crate::checkpoint::CheckpointManifest) -> Result<(), String>,
) -> Result<PaperResults, String> {
    if let Some(results) = manifest.assemble_results(&crate::GRANULARITIES) {
        return Ok(results);
    }
    let index = {
        let _s = wikistale_obs::MetricsRegistry::global().span("index");
        CubeIndex::build(filtered)
    };
    let data = EvalData::new(filtered, &index);
    let predictors = TrainedPredictors::train(&data, split.train_and_validation(), config);
    // Same ordering as `results_for`: Figure 3 histogram sorted by
    // descending rule count, ties by template id.
    let mut rules_per_template: Vec<(TemplateId, usize)> =
        predictors.assoc.rules_per_template().into_iter().collect();
    rules_per_template.sort_unstable_by_key(|&(t, n)| (std::cmp::Reverse(n), t));
    manifest.set_summary(crate::checkpoint::ResultsSummary {
        num_field_corr_rules: predictors.field_corr.num_rules(),
        num_assoc_rules: predictors.assoc.num_rules(),
        covered_entities: predictors.assoc.covered_entities(&data),
        rules_per_template,
    });
    on_stage("train", manifest)?;
    for &g in &crate::GRANULARITIES {
        if manifest.granularity(g).is_none() {
            let results = evaluate_granularity(&data, &predictors, split.test, g, g == 7);
            manifest.record_granularity(results);
            on_stage(&format!("granularity_{g}"), manifest)?;
        }
    }
    manifest
        .assemble_results(&crate::GRANULARITIES)
        .ok_or_else(|| "internal error: evaluation left the checkpoint incomplete".to_owned())
}

/// Run the same evaluation against the validation year with models trained
/// only on the training range — the setting the grid searches score in.
pub fn run_validation_evaluation(
    filtered: &ChangeCube,
    split: &EvalSplit,
    config: &ExperimentConfig,
) -> PaperResults {
    let index = {
        let _s = wikistale_obs::MetricsRegistry::global().span("index");
        CubeIndex::build(filtered)
    };
    let data = EvalData::new(filtered, &index);
    let predictors = TrainedPredictors::train(&data, split.train, config);
    results_for(&data, &predictors, split.validation, Concurrency::Parallel)
}

/// Whether [`results_for`] spreads the granularities across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Concurrency {
    Parallel,
    Serial,
}

fn results_for(
    data: &EvalData<'_>,
    predictors: &TrainedPredictors,
    eval_range: DateRange,
    concurrency: Concurrency,
) -> PaperResults {
    // The four granularities are independent window sweeps; run them as
    // engine tasks (slot-merged, so the result order is always the
    // `GRANULARITIES` order) unless the caller wants one nested span tree
    // on this thread — the serial engine runs the identical code path on
    // the caller thread.
    use wikistale_exec::{Engine, Execute};
    let engine = match concurrency {
        Concurrency::Serial => Engine::serial(),
        Concurrency::Parallel => Engine::current(),
    };
    let per_granularity = engine.run_tasks("granularities", crate::GRANULARITIES.len(), |task| {
        let g = crate::GRANULARITIES[task];
        evaluate_granularity(data, predictors, eval_range, g, g == 7)
    });

    let mut rules_per_template: Vec<(TemplateId, usize)> =
        predictors.assoc.rules_per_template().into_iter().collect();
    rules_per_template.sort_unstable_by_key(|&(t, n)| (std::cmp::Reverse(n), t));

    PaperResults {
        per_granularity,
        num_field_corr_rules: predictors.field_corr.num_rules(),
        num_assoc_rules: predictors.assoc.num_rules(),
        covered_entities: predictors.assoc.covered_entities(data),
        rules_per_template,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterPipeline;
    use wikistale_synth::{generate, SynthConfig};

    fn tiny_results() -> PaperResults {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        run_paper_evaluation(&filtered, &split, &ExperimentConfig::default())
    }

    #[test]
    fn full_pipeline_produces_all_granularities() {
        let results = tiny_results();
        assert_eq!(results.per_granularity.len(), 4);
        for g in crate::GRANULARITIES {
            let r = results.granularity(g).unwrap();
            assert_eq!(r.granularity, g);
            assert!(r.truth_total > 0, "no truth at {g}d");
        }
        assert!(results.granularity(2).is_none());
    }

    #[test]
    fn predictors_fire_and_meet_sane_precision_on_tiny() {
        let results = tiny_results();
        let seven = results.granularity(7).unwrap();
        assert!(seven.field_correlations.predictions > 0, "FC silent");
        assert!(seven.association_rules.predictions > 0, "AR silent");
        assert!(
            seven.field_correlations.precision() > 0.5,
            "FC precision {:.3}",
            seven.field_correlations.precision()
        );
        assert!(
            seven.association_rules.precision() > 0.5,
            "AR precision {:.3}",
            seven.association_rules.precision()
        );
        assert!(results.num_field_corr_rules > 0);
        assert!(results.num_assoc_rules > 0);
        assert!(results.covered_entities > 0);
    }

    #[test]
    fn ensemble_sandwich_holds_everywhere() {
        let results = tiny_results();
        for r in &results.per_granularity {
            // AND predicts a subset of each; OR a superset.
            assert!(r.and_ensemble.predictions <= r.field_correlations.predictions);
            assert!(r.and_ensemble.predictions <= r.association_rules.predictions);
            assert!(r.or_ensemble.predictions >= r.field_correlations.predictions);
            assert!(r.or_ensemble.predictions >= r.association_rules.predictions);
            // Recall ordering follows.
            assert!(r.or_ensemble.recall() + 1e-12 >= r.field_correlations.recall());
            assert!(r.and_ensemble.recall() <= r.association_rules.recall() + 1e-12);
            // Overlap bookkeeping is consistent.
            assert_eq!(r.fc_ar_overlap.a_total, r.field_correlations.predictions);
            assert_eq!(r.fc_ar_overlap.b_total, r.association_rules.predictions);
            assert_eq!(
                r.or_ensemble.predictions,
                r.field_correlations.predictions + r.association_rules.predictions
                    - r.fc_ar_overlap.shared
            );
        }
    }

    #[test]
    fn weekly_series_only_for_7d() {
        let results = tiny_results();
        assert!(results.granularity(7).unwrap().weekly_series.is_some());
        assert!(results.granularity(1).unwrap().weekly_series.is_none());
        let series = results
            .granularity(7)
            .unwrap()
            .weekly_series
            .as_ref()
            .unwrap();
        for s in series {
            assert_eq!(s.len(), 52);
        }
    }

    #[test]
    fn resumable_evaluation_matches_serial_exactly() {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        let config = ExperimentConfig::default();
        let reference = run_paper_evaluation_serial(&filtered, &split, &config);

        // Fresh manifest: every stage computed, results identical.
        let mut manifest = crate::checkpoint::CheckpointManifest::new("fp");
        let mut stages = Vec::new();
        let fresh = run_paper_evaluation_resumable(
            &filtered,
            &split,
            &config,
            &mut manifest,
            &mut |name, _m| {
                stages.push(name.to_owned());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(fresh, reference);
        assert_eq!(
            stages,
            vec![
                "train",
                "granularity_1",
                "granularity_7",
                "granularity_30",
                "granularity_365"
            ]
        );

        // Simulate a crash after 7d: keep train + first two granularities,
        // resume must recompute only the rest and agree exactly.
        let mut partial = crate::checkpoint::CheckpointManifest::new("fp");
        run_paper_evaluation_resumable(
            &filtered,
            &split,
            &config,
            &mut partial,
            &mut |name, _m| {
                if name == "granularity_7" {
                    Err("simulated crash".to_owned())
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert!(partial.granularity(7).is_some());
        assert!(partial.granularity(30).is_none());
        let mut resumed_stages = Vec::new();
        let resumed = run_paper_evaluation_resumable(
            &filtered,
            &split,
            &config,
            &mut partial,
            &mut |name, _m| {
                resumed_stages.push(name.to_owned());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(
            resumed_stages,
            vec!["train", "granularity_30", "granularity_365"]
        );

        // Fully complete manifest: nothing recomputed.
        let complete = run_paper_evaluation_resumable(
            &filtered,
            &split,
            &config,
            &mut partial,
            &mut |_n, _m| panic!("no stage should run on a complete checkpoint"),
        )
        .unwrap();
        assert_eq!(complete, reference);
    }

    #[test]
    fn validation_evaluation_runs() {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        let results = run_validation_evaluation(&filtered, &split, &ExperimentConfig::default());
        assert_eq!(results.per_granularity.len(), 4);
    }
}
