//! Reusable query-path scoring shared by the batch evaluation and the
//! serving layer.
//!
//! The §5 evaluation and an online staleness service answer the same
//! question — "does some predictor expect field *f* to change inside
//! window *w*?" — so they must run the *same* code. [`predict_all`] is
//! the predictor sweep extracted verbatim from the batch evaluation
//! loop (`experiment::evaluate_granularity` now calls it), and
//! [`Scorer`] answers individual (entity, property, window) triples and
//! per-page queries by membership lookup in those very
//! [`PredictionSet`]s. Served scores are therefore byte-identical to
//! batch `predict` output by construction: there is no second
//! implementation to drift.

use crate::ensemble::{and_ensemble, or_ensemble};
use crate::experiment::TrainedPredictors;
use crate::explain::{explain, Explanation};
use crate::predictions::PredictionSet;
use crate::predictor::{ChangePredictor, EvalData};
use wikistale_wikicube::{Date, DateRange, FieldId, PageId};

/// The six per-granularity prediction sets of §5: four predictors plus
/// the two ensembles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictedSets {
    /// Field correlations (§3.2).
    pub field_corr: PredictionSet,
    /// Association rules (§3.3).
    pub assoc: PredictionSet,
    /// Mean baseline (§5.2).
    pub mean: PredictionSet,
    /// Threshold baseline (§5.2).
    pub threshold: PredictionSet,
    /// AND ensemble (§3.4).
    pub and: PredictionSet,
    /// OR ensemble (§3.4).
    pub or: PredictionSet,
}

/// Run every trained predictor over `eval_range` at one granularity and
/// form the ensembles — the single prediction code path shared by the
/// batch evaluation and the serving layer.
pub fn predict_all(
    data: &EvalData<'_>,
    predictors: &TrainedPredictors,
    eval_range: DateRange,
    granularity: u32,
) -> PredictedSets {
    let obs = wikistale_obs::MetricsRegistry::global();
    let _s = obs.span("predict");
    let field_corr = {
        let _p = obs.span("field_corr");
        predictors.field_corr.predict(data, eval_range, granularity)
    };
    let assoc = {
        let _p = obs.span("assoc");
        predictors.assoc.predict(data, eval_range, granularity)
    };
    let mean = {
        let _p = obs.span("mean");
        predictors.mean.predict(data, eval_range, granularity)
    };
    let threshold = {
        let _p = obs.span("threshold");
        predictors.threshold.predict(data, eval_range, granularity)
    };
    let (and, or) = {
        let _p = obs.span("ensembles");
        (
            and_ensemble(&field_corr, &assoc),
            or_ensemble(&field_corr, &assoc),
        )
    };
    obs.counter("predict/emitted").add(
        (field_corr.items().len()
            + assoc.items().len()
            + mean.items().len()
            + threshold.items().len()) as u64,
    );
    PredictedSets {
        field_corr,
        assoc,
        mean,
        threshold,
        and,
        or,
    }
}

/// One (entity, property, window) scoring request, by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreQuery {
    /// Entity (infobox instance) name.
    pub entity: String,
    /// Property (infobox attribute) name.
    pub property: String,
    /// Tumbling-window index into the evaluation range.
    pub window: u32,
}

/// Per-predictor verdicts for one scored triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleScore {
    /// First day of the scored window.
    pub window_start: Date,
    /// Field-correlation verdict.
    pub field_correlations: bool,
    /// Association-rule verdict.
    pub association_rules: bool,
    /// Mean-baseline verdict.
    pub mean_baseline: bool,
    /// Threshold-baseline verdict.
    pub threshold_baseline: bool,
    /// AND-ensemble verdict.
    pub and_ensemble: bool,
    /// OR-ensemble verdict.
    pub or_ensemble: bool,
}

/// Why a [`ScoreQuery`] could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// No entity with this name exists in the corpus.
    UnknownEntity(String),
    /// No property with this name exists in the corpus.
    UnknownProperty(String),
    /// Entity and property both exist, but the field never changed in
    /// the (filtered) corpus, so no predictor tracks it.
    UnknownField {
        /// The requested entity name.
        entity: String,
        /// The requested property name.
        property: String,
    },
    /// The window index lies past the last complete window.
    WindowOutOfRange {
        /// The requested window index.
        window: u32,
        /// Number of complete windows at this granularity.
        num_windows: u32,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::UnknownEntity(name) => write!(f, "unknown entity {name:?}"),
            ScoreError::UnknownProperty(name) => write!(f, "unknown property {name:?}"),
            ScoreError::UnknownField { entity, property } => {
                write!(f, "field ({entity:?}, {property:?}) is not tracked")
            }
            ScoreError::WindowOutOfRange {
                window,
                num_windows,
            } => write!(
                f,
                "window {window} out of range (0..{num_windows} complete windows)"
            ),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Answers staleness queries against one trained model generation.
///
/// Borrows the cube, index, and trained predictors (the serving layer
/// owns them for the process lifetime) plus the evaluation range whose
/// tumbling windows `window` indices refer to.
#[derive(Clone, Copy)]
pub struct Scorer<'a> {
    data: EvalData<'a>,
    predictors: &'a TrainedPredictors,
    eval_range: DateRange,
}

impl<'a> Scorer<'a> {
    /// A scorer answering window indices over `eval_range`.
    pub fn new(
        data: EvalData<'a>,
        predictors: &'a TrainedPredictors,
        eval_range: DateRange,
    ) -> Scorer<'a> {
        Scorer {
            data,
            predictors,
            eval_range,
        }
    }

    /// The cube + index being served.
    pub fn data(&self) -> EvalData<'a> {
        self.data
    }

    /// The range whose tumbling windows queries index into.
    pub fn eval_range(&self) -> DateRange {
        self.eval_range
    }

    /// The full prediction sweep at `granularity` — identical to one
    /// batch-evaluation granularity leg.
    pub fn predict(&self, granularity: u32) -> PredictedSets {
        predict_all(&self.data, self.predictors, self.eval_range, granularity)
    }

    /// Score one triple by membership lookup in `sets` (obtained from
    /// [`Scorer::predict`] at the desired granularity).
    pub fn score_triple(
        &self,
        sets: &PredictedSets,
        query: &ScoreQuery,
    ) -> Result<TripleScore, ScoreError> {
        let cube = self.data.cube;
        let entity = cube
            .entity_id(&query.entity)
            .ok_or_else(|| ScoreError::UnknownEntity(query.entity.clone()))?;
        let property = cube
            .property_id(&query.property)
            .ok_or_else(|| ScoreError::UnknownProperty(query.property.clone()))?;
        let pos = self
            .data
            .index
            .position(FieldId::new(entity, property))
            .ok_or_else(|| ScoreError::UnknownField {
                entity: query.entity.clone(),
                property: query.property.clone(),
            })? as u32;
        let num_windows = sets.or.num_windows();
        if query.window >= num_windows {
            return Err(ScoreError::WindowOutOfRange {
                window: query.window,
                num_windows,
            });
        }
        let w = query.window;
        Ok(TripleScore {
            window_start: sets.or.window_range(w).start(),
            field_correlations: sets.field_corr.contains(pos, w),
            association_rules: sets.assoc.contains(pos, w),
            mean_baseline: sets.mean.contains(pos, w),
            threshold_baseline: sets.threshold.contains(pos, w),
            and_ensemble: sets.and.contains(pos, w),
            or_ensemble: sets.or.contains(pos, w),
        })
    }

    /// Flag potentially stale fields of one page for `window`: fields
    /// the OR ensemble expects to change inside the window that did not
    /// visibly change there, each with its provenance from
    /// [`crate::explain`]. Same semantics as
    /// [`crate::detector::StalenessDetector::flag`], restricted to one
    /// page.
    pub fn page_flags(&self, page: PageId, window: DateRange) -> Vec<Explanation> {
        let granularity = window.len_days().max(1);
        let fc = self
            .predictors
            .field_corr
            .predict(&self.data, window, granularity);
        let ar = self
            .predictors
            .assoc
            .predict(&self.data, window, granularity);
        let positives = or_ensemble(&fc, &ar);
        let mut flags = Vec::new();
        for &pos in self.data.index.fields_on_page(page) {
            let pos = pos as usize;
            if !positives.contains(pos as u32, 0) {
                continue;
            }
            // A field the reader already sees freshly updated needs no
            // banner (in the §5 protocol those are the true positives).
            if self
                .data
                .index
                .changed_in(pos, window.start(), window.end())
            {
                continue;
            }
            let field = self.data.index.field(pos);
            if let Some(explanation) = explain(
                &self.data,
                &self.predictors.field_corr,
                &self.predictors.assoc,
                field,
                window,
            ) {
                flags.push(explanation);
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_granularity, ExperimentConfig};
    use crate::filters::FilterPipeline;
    use crate::split::EvalSplit;
    use wikistale_synth::{generate, SynthConfig};
    use wikistale_wikicube::{ChangeCube, CubeIndex};

    fn fixture() -> (ChangeCube, EvalSplit) {
        let corpus = generate(&SynthConfig::tiny());
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        (filtered, split)
    }

    #[test]
    fn predict_all_matches_batch_evaluation_counts() {
        let (filtered, split) = fixture();
        let index = CubeIndex::build(&filtered);
        let data = EvalData::new(&filtered, &index);
        let config = ExperimentConfig::default();
        let predictors = TrainedPredictors::train(&data, split.train_and_validation(), &config);
        for g in crate::GRANULARITIES {
            let sets = predict_all(&data, &predictors, split.test, g);
            let batch = evaluate_granularity(&data, &predictors, split.test, g, false);
            assert_eq!(sets.field_corr.len(), batch.field_correlations.predictions);
            assert_eq!(sets.assoc.len(), batch.association_rules.predictions);
            assert_eq!(sets.mean.len(), batch.mean_baseline.predictions);
            assert_eq!(sets.threshold.len(), batch.threshold_baseline.predictions);
            assert_eq!(sets.and.len(), batch.and_ensemble.predictions);
            assert_eq!(sets.or.len(), batch.or_ensemble.predictions);
        }
    }

    #[test]
    fn score_triple_agrees_with_set_membership_everywhere() {
        let (filtered, split) = fixture();
        let index = CubeIndex::build(&filtered);
        let data = EvalData::new(&filtered, &index);
        let config = ExperimentConfig::default();
        let predictors = TrainedPredictors::train(&data, split.train_and_validation(), &config);
        let scorer = Scorer::new(data, &predictors, split.test);
        let sets = scorer.predict(7);
        // Every positive OR prediction must score true through the
        // by-name API, and a window with no prediction must score false.
        let mut positives = 0;
        for &(pos, w) in sets.or.items().iter().take(50) {
            let field = index.field(pos as usize);
            let query = ScoreQuery {
                entity: filtered.entity_name(field.entity).to_string(),
                property: filtered.property_name(field.property).to_string(),
                window: w,
            };
            let score = scorer.score_triple(&sets, &query).unwrap();
            assert!(score.or_ensemble);
            assert_eq!(score.field_correlations, sets.field_corr.contains(pos, w));
            assert_eq!(score.and_ensemble, sets.and.contains(pos, w));
            assert_eq!(score.window_start, sets.or.window_range(w).start());
            positives += 1;
        }
        assert!(positives > 0, "no OR positives to cross-check");
    }

    #[test]
    fn score_errors_are_precise() {
        let (filtered, split) = fixture();
        let index = CubeIndex::build(&filtered);
        let data = EvalData::new(&filtered, &index);
        let config = ExperimentConfig::default();
        let predictors = TrainedPredictors::train(&data, split.train_and_validation(), &config);
        let scorer = Scorer::new(data, &predictors, split.test);
        let sets = scorer.predict(7);
        let field = index.field(0);
        let entity = filtered.entity_name(field.entity).to_string();
        let property = filtered.property_name(field.property).to_string();
        let q = |e: &str, p: &str, w: u32| ScoreQuery {
            entity: e.to_string(),
            property: p.to_string(),
            window: w,
        };
        assert!(matches!(
            scorer.score_triple(&sets, &q("no-such-entity", &property, 0)),
            Err(ScoreError::UnknownEntity(_))
        ));
        assert!(matches!(
            scorer.score_triple(&sets, &q(&entity, "no-such-property", 0)),
            Err(ScoreError::UnknownProperty(_))
        ));
        let oob = scorer
            .score_triple(&sets, &q(&entity, &property, sets.or.num_windows()))
            .unwrap_err();
        assert!(matches!(oob, ScoreError::WindowOutOfRange { .. }));
        assert!(oob.to_string().contains("out of range"));
    }

    #[test]
    fn page_flags_match_detector_semantics() {
        let (filtered, split) = fixture();
        let index = CubeIndex::build(&filtered);
        let data = EvalData::new(&filtered, &index);
        let config = ExperimentConfig::default();
        let predictors = TrainedPredictors::train(&data, split.train_and_validation(), &config);
        let scorer = Scorer::new(data, &predictors, split.test);
        // Sweep the test year week by week across all pages; every flag
        // must belong to the queried page, carry reasons, and point at a
        // field that did not change in the window.
        let mut total = 0;
        for week in 0..52 {
            let start = split.test.start() + week * 7;
            let window = DateRange::with_len(start, 7);
            for page in 0..filtered.num_pages() {
                let page = wikistale_wikicube::PageId(page as u32);
                for flag in scorer.page_flags(page, window) {
                    assert_eq!(data.cube.page_of(flag.field.entity), page);
                    assert!(!flag.reasons.is_empty());
                    let pos = index.position(flag.field).unwrap();
                    assert!(!index.changed_in(pos, window.start(), window.end()));
                    total += 1;
                }
            }
        }
        assert!(total > 0, "no page flags across the test year");
    }
}
