//! # wikistale-core
//!
//! Detection of stale data in Wikipedia infoboxes — a faithful Rust
//! implementation of Barth et al., "Detecting Stale Data in Wikipedia
//! Infoboxes" (EDBT 2023).
//!
//! Given the change history of all infobox fields (a change cube from
//! [`wikistale_wikicube`]), the system answers: *given the current time
//! `t`, a window size `w`, and a field `f` that did not change in
//! `[t − w, t]`, should `f` have changed?* (§3.1). A high-precision answer
//! lets Wikipedia mark fields as potentially stale for readers and
//! editors; the Wikimedia Foundation's bar is 85 % precision.
//!
//! The pipeline:
//!
//! 1. **Filtering** ([`filters`], §4) — drop bot-reverted edits, collapse
//!    each field's edits of one day into a representative change, drop
//!    creations/deletions, drop fields with fewer than five changes.
//! 2. **Predictors** ([`predictors`], §3.2–3.3) —
//!    [`predictors::FieldCorrelation`] finds same-page field pairs whose
//!    daily change vectors are close under a normalized Manhattan
//!    distance; [`predictors::AssociationRulePredictor`] mines unary
//!    template-level rules with Apriori over weekly per-infobox
//!    transactions, pruned to ≥ 90 % precision on a held-out slice. Two
//!    baselines ([`predictors::MeanBaseline`],
//!    [`predictors::ThresholdBaseline`]) calibrate the difficulty.
//! 3. **Ensembles** ([`ensemble`], §3.4) — OR (recall-oriented; the
//!    paper's headline predictor) and AND (precision-oriented).
//! 4. **Evaluation** ([`eval`], [`experiment`], §5) — time-based
//!    train/validation/test splits, tumbling windows of 1/7/30/365 days,
//!    the masked-field protocol, precision/recall/prediction counts,
//!    per-week series, and grid searches ([`tuning`]).
//!
//! ## Quickstart
//!
//! ```
//! use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
//! use wikistale_core::filters::FilterPipeline;
//! use wikistale_core::split::EvalSplit;
//! use wikistale_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::tiny());
//! let (filtered, _report) = FilterPipeline::paper().apply(&corpus.cube);
//! let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
//! let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
//! let or_7d = &results.granularity(7).unwrap().or_ensemble;
//! assert!(or_7d.predictions > 0);
//! ```

pub mod anomaly;
pub mod checkpoint;
pub mod detector;
pub mod ensemble;
pub mod eval;
pub mod experiment;
pub mod explain;
pub mod figures;
pub mod filters;
pub mod predictions;
pub mod predictor;
pub mod predictors;
pub mod report;
pub mod scoring;
pub mod split;
pub mod tuning;

pub use anomaly::{find_counter_anomalies, AnomalyKind, AnomalyParams, CounterAnomaly};
pub use detector::{DetectorConfig, DetectorError, StalenessDetector};
pub use ensemble::{and_ensemble, or_ensemble};
pub use eval::{truth_set, EvalOutcome};
pub use explain::{explain, Explanation, Reason};
pub use predictions::PredictionSet;
pub use predictor::{ChangePredictor, EvalData};
pub use split::EvalSplit;

/// The precision the Wikimedia Foundation asked for (§1).
pub const TARGET_PRECISION: f64 = 0.85;

/// The window granularities (in days) evaluated throughout the paper.
pub const GRANULARITIES: [u32; 4] = [1, 7, 30, 365];
