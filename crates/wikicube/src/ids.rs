//! Dense `u32` newtype identifiers for the change-cube dimensions.
//!
//! All ids are indices into per-cube interner tables, so they are only
//! meaningful relative to the [`crate::ChangeCube`] that issued them. Using
//! dense ids keeps the hot paths (distance kernels, transaction building,
//! index lookups) free of string hashing and makes arrays the natural
//! id-keyed container.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw index.
            #[inline]
            pub const fn from_index(index: usize) -> $name {
                $name(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// An infobox instance. Each entity belongs to exactly one
    /// [`TemplateId`] and lives on exactly one [`PageId`].
    EntityId,
    "e"
);
id_newtype!(
    /// An infobox attribute name (e.g. `population_est`), shared across all
    /// templates that use the same attribute name.
    PropertyId,
    "p"
);
id_newtype!(
    /// An infobox template (e.g. `infobox settlement`), defining the shared
    /// property schema of a group of entities.
    TemplateId,
    "t"
);
id_newtype!(
    /// A Wikipedia page. Field-correlation search is restricted to fields of
    /// the same page (paper §3.2).
    PageId,
    "pg"
);
id_newtype!(
    /// An interned property value. The predictors ignore values, but the
    /// cube keeps them so ingestion is lossless and the §5.4 ground-truth
    /// case study can inspect them.
    ValueId,
    "v"
);

/// A *field*: the combination of an entity and one of its properties
/// (paper §3.1). Fields are the unit of staleness prediction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId {
    /// The infobox the field belongs to.
    pub entity: EntityId,
    /// The changed attribute.
    pub property: PropertyId,
}

impl FieldId {
    /// Construct a field id.
    #[inline]
    pub const fn new(entity: EntityId, property: PropertyId) -> FieldId {
        FieldId { entity, property }
    }
}

impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.entity, self.property)
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.entity, self.property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(usize::from(e), 42);
        assert_eq!(format!("{e}"), "e42");
        assert_eq!(format!("{e:?}"), "e42");
    }

    #[test]
    fn field_id_ordering_groups_by_entity() {
        let a = FieldId::new(EntityId(1), PropertyId(9));
        let b = FieldId::new(EntityId(2), PropertyId(0));
        assert!(a < b, "fields sort by entity first");
        assert_eq!(format!("{a}"), "e1/p9");
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FieldId::new(EntityId(0), PropertyId(0)));
        set.insert(FieldId::new(EntityId(0), PropertyId(0)));
        assert_eq!(set.len(), 1);
    }
}
