//! Cube composition: time slicing and merging.
//!
//! Real deployments ingest Wikipedia dumps incrementally (one stub-history
//! part at a time) and retrain on rolling windows; these operations build
//! the cubes for that: [`slice()`] restricts a cube to a day range, and
//! [`merge`] combines cubes whose dimension tables were interned
//! independently (entities are unified by name, with their template and
//! page memberships checked for consistency).

use crate::change::Change;
use crate::cube::{ChangeCube, ChangeCubeBuilder};
use crate::date::DateRange;
use crate::error::CubeError;

/// A new cube containing only the changes whose day falls in `range`.
/// Dimension tables are re-interned, so entities and values that only
/// occur outside the range do not leak into the slice.
pub fn slice(cube: &ChangeCube, range: DateRange) -> ChangeCube {
    let mut builder = ChangeCubeBuilder::new();
    copy_changes(&mut builder, cube, cube.changes_in(range));
    builder.finish()
}

/// Merge any number of cubes into one.
///
/// Entities are unified by name; a name appearing in several cubes must
/// agree on its template and page, otherwise the merge fails with
/// [`CubeError::Corrupt`]. Changes are concatenated and re-canonicalized
/// by the cube constructor, so same-day changes to one slot (e.g. from
/// overlapping dump parts) collapse to a single change — with inputs
/// processed in argument order, a disagreeing later cube wins.
pub fn merge<'a>(cubes: impl IntoIterator<Item = &'a ChangeCube>) -> Result<ChangeCube, CubeError> {
    let mut builder = ChangeCubeBuilder::new();
    for cube in cubes {
        // `ChangeCubeBuilder::entity` panics on conflicting registration;
        // catchable consistency checking is friendlier for merge inputs.
        for c in cube.iter_changes() {
            let name = cube.entity_name(c.entity);
            let template = cube.template_name(cube.template_of(c.entity));
            let page = cube.page_title(cube.page_of(c.entity));
            if let Some(existing) = builder_entity_conflict(&builder, name, template, page) {
                return Err(CubeError::Corrupt(format!(
                    "entity {name:?} is {existing} in one cube but ({template}, {page}) in another"
                )));
            }
            let entity = builder.entity(name, template, page);
            let property = builder.property(cube.property_name(c.property));
            builder.change_full(
                c.day,
                entity,
                property,
                cube.value_text(c.value),
                c.kind,
                c.flags,
            );
        }
    }
    Ok(builder.finish())
}

fn builder_entity_conflict(
    builder: &ChangeCubeBuilder,
    name: &str,
    template: &str,
    page: &str,
) -> Option<String> {
    let (t, p) = builder.entity_membership(name)?;
    if t != template || p != page {
        Some(format!("({t}, {p})"))
    } else {
        None
    }
}

fn copy_changes(
    builder: &mut ChangeCubeBuilder,
    source: &ChangeCube,
    changes: impl IntoIterator<Item = Change>,
) {
    for c in changes {
        let entity = builder.entity(
            source.entity_name(c.entity),
            source.template_name(source.template_of(c.entity)),
            source.page_title(source.page_of(c.entity)),
        );
        let property = builder.property(source.property_name(c.property));
        builder.change_full(
            c.day,
            entity,
            property,
            source.value_text(c.value),
            c.kind,
            c.flags,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeKind;
    use crate::date::Date;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn cube_a() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let p = b.property("wins");
        for d in [1, 10, 20] {
            b.change(day(d), e, p, &format!("v{d}"), ChangeKind::Update);
        }
        b.finish()
    }

    fn cube_b() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        // Note: different interner numbering (property first).
        let p = b.property("population_est");
        let wins = b.property("wins");
        let london = b.entity("London", "infobox settlement", "London");
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        b.change(day(5), london, p, "9M", ChangeKind::Update);
        b.change(day(30), ali, wins, "v30", ChangeKind::Update);
        b.finish()
    }

    #[test]
    fn slice_restricts_and_reinterns() {
        let cube = cube_a();
        let sliced = slice(&cube, DateRange::new(day(5), day(15)));
        assert_eq!(sliced.num_changes(), 1);
        assert_eq!(sliced.change_at(0).day, day(10));
        assert_eq!(sliced.value_text(sliced.change_at(0).value), "v10");
        // Values outside the slice are not interned.
        assert_eq!(sliced.num_values(), 1);
        let empty = slice(&cube, DateRange::new(day(100), day(200)));
        assert_eq!(empty.num_changes(), 0);
    }

    #[test]
    fn merge_unifies_entities_across_interners() {
        let merged = merge([&cube_a(), &cube_b()]).unwrap();
        assert_eq!(merged.num_changes(), 5);
        assert_eq!(merged.num_entities(), 2);
        // Ali's history spans both inputs, in order.
        let ali = merged.entity_id("Ali").unwrap();
        let ali_days: Vec<i32> = merged
            .iter_changes()
            .filter(|c| c.entity == ali)
            .map(|c| c.day - Date::EPOCH)
            .collect();
        assert_eq!(ali_days, vec![1, 10, 20, 30]);
    }

    #[test]
    fn merge_collapses_exact_duplicates() {
        let a = cube_a();
        let merged = merge([&a, &a]).unwrap();
        assert_eq!(merged.num_changes(), a.num_changes());
    }

    #[test]
    fn merge_rejects_conflicting_membership() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("Ali", "infobox person", "Someone Else");
        let p = b.property("wins");
        b.change(day(2), e, p, "x", ChangeKind::Update);
        let conflicting = b.finish();
        let err = merge([&cube_a(), &conflicting]).unwrap_err();
        assert!(matches!(err, CubeError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("Ali"));
    }

    #[test]
    fn slice_then_merge_is_identity_on_partition() {
        let cube = cube_a();
        let left = slice(&cube, DateRange::new(day(0), day(15)));
        let right = slice(&cube, DateRange::new(day(15), day(100)));
        let merged = merge([&left, &right]).unwrap();
        assert_eq!(merged.num_changes(), cube.num_changes());
        for (a, b) in merged.iter_changes().zip(cube.iter_changes()) {
            assert_eq!(a.day, b.day);
            assert_eq!(merged.value_text(a.value), cube.value_text(b.value));
        }
    }
}
