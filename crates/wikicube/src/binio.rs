//! Versioned binary persistence for change cubes.
//!
//! The format is a straightforward length-prefixed encoding:
//!
//! ```text
//! magic    8 bytes  "WCUBE\0\0\0"
//! version  u32      currently 1
//! interner ×5       entities, properties, templates, pages, values
//!   count  u32
//!   string ×count   u32 byte length + UTF-8 bytes
//! entities u32 count, ×count { template u32, page u32 }
//! changes  u64 count, ×count { day i32, entity u32, property u32,
//!                              value u32, kind u8, flags u8 }
//! ```
//!
//! All integers are little-endian. Reading validates magic, version, string
//! UTF-8, id referential integrity and (via the cube constructor)
//! restores canonical ordering, so a cube read back is byte-for-byte
//! re-serializable.

use crate::change::{Change, ChangeFlags, ChangeKind};
use crate::cube::{ChangeCube, EntityMeta};
use crate::date::Date;
use crate::error::CubeError;
use crate::ids::{EntityId, PageId, PropertyId, TemplateId, ValueId};
use crate::intern::Interner;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"WCUBE\0\0\0";
const VERSION: u32 = 1;

/// Serialize `cube` into a byte buffer.
pub fn encode(cube: &ChangeCube) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + cube.num_changes() * 18);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    for interner in [
        cube.entities(),
        cube.properties(),
        cube.templates(),
        cube.pages(),
        cube.values(),
    ] {
        put_interner(&mut buf, interner);
    }
    buf.extend_from_slice(&(cube.entity_meta().len() as u32).to_le_bytes());
    for meta in cube.entity_meta() {
        buf.extend_from_slice(&meta.template.0.to_le_bytes());
        buf.extend_from_slice(&meta.page.0.to_le_bytes());
    }
    buf.extend_from_slice(&(cube.num_changes() as u64).to_le_bytes());
    for c in cube.changes() {
        buf.extend_from_slice(&c.day.day_number().to_le_bytes());
        buf.extend_from_slice(&c.entity.0.to_le_bytes());
        buf.extend_from_slice(&c.property.0.to_le_bytes());
        buf.extend_from_slice(&c.value.0.to_le_bytes());
        buf.push(c.kind as u8);
        buf.push(c.flags.bits());
    }
    buf
}

/// Deserialize a cube from bytes produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<ChangeCube, CubeError> {
    let buf = &mut data;
    let magic = take_bytes(buf, 8)?;
    if magic != MAGIC {
        return Err(CubeError::BadMagic);
    }
    let version = take_u32(buf)?;
    if version != VERSION {
        return Err(CubeError::UnsupportedVersion(version));
    }
    let entities = take_interner(buf)?;
    let properties = take_interner(buf)?;
    let templates = take_interner(buf)?;
    let pages = take_interner(buf)?;
    let values = take_interner(buf)?;

    let n_entities = take_u32(buf)? as usize;
    let mut entity_meta = Vec::with_capacity(n_entities.min(1 << 20));
    for _ in 0..n_entities {
        entity_meta.push(EntityMeta {
            template: TemplateId(take_u32(buf)?),
            page: PageId(take_u32(buf)?),
        });
    }

    let n_changes = take_u64(buf)? as usize;
    let mut changes = Vec::with_capacity(n_changes.min(1 << 24));
    for _ in 0..n_changes {
        let day = Date::from_day_number(take_i32(buf)?);
        let entity = EntityId(take_u32(buf)?);
        let property = PropertyId(take_u32(buf)?);
        let value = ValueId(take_u32(buf)?);
        let kind_raw = take_u8(buf)?;
        let kind = ChangeKind::from_u8(kind_raw)
            .ok_or_else(|| CubeError::Corrupt(format!("unknown change kind {kind_raw}")))?;
        let flags = ChangeFlags::from_bits(take_u8(buf)?);
        changes.push(Change {
            day,
            entity,
            property,
            value,
            kind,
            flags,
        });
    }
    if !buf.is_empty() {
        return Err(CubeError::Corrupt(format!("{} trailing bytes", buf.len())));
    }
    ChangeCube::from_parts(
        entities,
        properties,
        templates,
        pages,
        values,
        entity_meta,
        changes,
    )
}

/// Write `cube` to `path` (atomically via a sibling temp file).
pub fn write_to_path(cube: &ChangeCube, path: &Path) -> Result<(), CubeError> {
    let tmp = path.with_extension("tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&encode(cube))?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a cube previously written with [`write_to_path`].
pub fn read_from_path(path: &Path) -> Result<ChangeCube, CubeError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode(&data)
}

fn put_interner(buf: &mut Vec<u8>, interner: &Interner) {
    buf.extend_from_slice(&(interner.len() as u32).to_le_bytes());
    for (_, s) in interner.iter() {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
}

fn take_interner(buf: &mut &[u8]) -> Result<Interner, CubeError> {
    let count = take_u32(buf)? as usize;
    let mut strings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = take_u32(buf)? as usize;
        let bytes = take_bytes(buf, len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| CubeError::Corrupt(format!("invalid UTF-8 in interner: {e}")))?;
        strings.push(s.to_owned());
    }
    Interner::from_ordered(strings).map_err(CubeError::Corrupt)
}

fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CubeError> {
    if buf.len() < n {
        return Err(CubeError::Corrupt(format!(
            "need {n} bytes, {} remain",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, CubeError> {
    Ok(take_bytes(buf, 1)?[0])
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, CubeError> {
    Ok(u32::from_le_bytes(take_bytes(buf, 4)?.try_into().unwrap()))
}

fn take_i32(buf: &mut &[u8]) -> Result<i32, CubeError> {
    Ok(i32::from_le_bytes(take_bytes(buf, 4)?.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, CubeError> {
    Ok(u64::from_le_bytes(take_bytes(buf, 8)?.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ChangeCubeBuilder;
    use proptest::prelude::*;

    fn sample_cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let wins = b.property("wins");
        let ko = b.property("ko");
        b.change(Date::EPOCH + 10, ali, wins, "56", ChangeKind::Update);
        b.change_full(
            Date::EPOCH + 11,
            ali,
            ko,
            "37",
            ChangeKind::Create,
            ChangeFlags::BOT_REVERTED,
        );
        b.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cube = sample_cube();
        let bytes = encode(&cube);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.changes(), cube.changes());
        assert_eq!(back.num_entities(), cube.num_entities());
        assert_eq!(back.entity_name(EntityId(0)), "Ali");
        assert_eq!(back.template_name(TemplateId(0)), "infobox boxer");
        assert_eq!(back.value_text(ValueId(0)), "56");
        assert!(back.changes()[1].flags.is_bot_reverted());
        // Deterministic: re-encoding is byte-identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn empty_cube_round_trips() {
        let cube = ChangeCubeBuilder::new().finish();
        let back = decode(&encode(&cube)).unwrap();
        assert_eq!(back.num_changes(), 0);
        assert_eq!(back.num_entities(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"NOTACUBE"), Err(CubeError::BadMagic)));
        assert!(matches!(decode(b""), Err(CubeError::Corrupt(_))));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = encode(&sample_cube()).to_vec();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(CubeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample_cube());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample_cube()).to_vec();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(CubeError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let cube = sample_cube();
        let dir = std::env::temp_dir().join("wikicube-binio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.wcube");
        write_to_path(&cube, &path).unwrap();
        let back = read_from_path(&path).unwrap();
        assert_eq!(back.changes(), cube.changes());
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_round_trip(
            days in proptest::collection::vec(0i32..2000, 1..60),
            n_entities in 1usize..6,
            n_props in 1usize..6,
        ) {
            let mut b = ChangeCubeBuilder::new();
            let entities: Vec<_> = (0..n_entities)
                .map(|i| b.entity(&format!("e{i}"), &format!("t{}", i % 2), &format!("pg{i}")))
                .collect();
            let props: Vec<_> = (0..n_props).map(|i| b.property(&format!("p{i}"))).collect();
            for (i, &d) in days.iter().enumerate() {
                let kind = match i % 3 {
                    0 => ChangeKind::Create,
                    1 => ChangeKind::Update,
                    _ => ChangeKind::Delete,
                };
                b.change(
                    Date::EPOCH + d,
                    entities[i % n_entities],
                    props[i % n_props],
                    &format!("v{i}"),
                    kind,
                );
            }
            let cube = b.finish();
            let back = decode(&encode(&cube)).unwrap();
            prop_assert_eq!(back.changes(), cube.changes());
            prop_assert_eq!(encode(&back), encode(&cube));
        }
    }
}
