//! Versioned binary persistence for change cubes.
//!
//! Version 3 (the current writer) frames every section with a length and
//! a CRC-32 so corruption is detected before any data is trusted:
//!
//! ```text
//! magic     8 bytes  "WCUBE\0\0\0"
//! version   u32      3
//! section ×7         entities, properties, templates, pages, values,
//!                    entity_meta, changes — in this order, each:
//!   len     u64      payload byte length
//!   payload          section-specific encoding (below)
//!   crc     u32      CRC-32 of the payload
//! file_crc  u32      CRC-32 of every preceding byte (magic included)
//! ```
//!
//! Interner payloads are `u32 count`, then `u32 byte length + UTF-8
//! bytes` per string; `entity_meta` is `u32 count`, then
//! `{ template u32, page u32 }` per entity. The v3 `changes` payload
//! mirrors the in-memory columnar layout ([`crate::ChangeColumns`]):
//! `u64 count`, then six contiguous column arrays — `day i32 × count`,
//! `entity u32 × count`, `property u32 × count`, `value u32 × count`,
//! `kind u8 × count`, `flags u8 × count`. All integers are
//! little-endian.
//!
//! Version 2 framed identically but stored changes row-wise (`{ day i32,
//! entity u32, property u32, value u32, kind u8, flags u8 }` per
//! change); version 1 had no checksums and no section framing. Both are
//! still read transparently, and [`encode_v2`] / [`encode_v1`] keep
//! writers around for compatibility tests and downgrade tooling.
//!
//! Reading validates magic, version, checksums, string UTF-8, id
//! referential integrity and (via the cube constructor) restores
//! canonical ordering, so a cube read back is byte-for-byte
//! re-serializable. Length prefixes are never trusted for allocation:
//! capacity is clamped to what the remaining bytes could actually hold,
//! so a corrupt count cannot trigger a multi-gigabyte allocation.
//! Truncation surfaces as [`CubeError::Truncated`] naming the section;
//! checksum failures as [`CubeError::ChecksumMismatch`].
//!
//! [`write_to_path`] is atomic and durable: the encoding is written to a
//! sibling temporary file, fsync'd, renamed over the destination, and
//! the parent directory is fsync'd — a crash mid-write leaves either the
//! old file or the new one, never a half-written hybrid.

use crate::change::{Change, ChangeFlags, ChangeKind};
use crate::crc32::{crc32, Crc32};
use crate::cube::{ChangeCube, EntityMeta};
use crate::date::Date;
use crate::error::CubeError;
use crate::ids::{EntityId, PageId, PropertyId, TemplateId, ValueId};
use crate::intern::Interner;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"WCUBE\0\0\0";
const VERSION: u32 = 3;

/// Section names in file order; used for framing and error reporting.
const SECTIONS: [&str; 7] = [
    "entities",
    "properties",
    "templates",
    "pages",
    "values",
    "entity_meta",
    "changes",
];

/// Serialize `cube` into a byte buffer (format version 3, columnar
/// changes section).
pub fn encode(cube: &ChangeCube) -> Vec<u8> {
    encode_framed(cube, VERSION)
}

/// Serialize `cube` in the version-2 layout (framed, row-wise changes).
///
/// Kept so compatibility tests can prove v2 files still load and so
/// tooling can produce files for older readers.
pub fn encode_v2(cube: &ChangeCube) -> Vec<u8> {
    encode_framed(cube, 2)
}

/// Serialize `cube` in the legacy, checksum-free version-1 layout.
///
/// Kept so compatibility tests can prove v1 files still load and so
/// tooling can produce files for older readers.
pub fn encode_v1(cube: &ChangeCube) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + cube.num_changes() * 18);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&1u32.to_le_bytes());
    for payload in section_payloads(cube, 1) {
        buf.extend_from_slice(&payload);
    }
    buf
}

/// Shared writer for the framed (v2/v3) layouts.
fn encode_framed(cube: &ChangeCube, version: u32) -> Vec<u8> {
    let payloads = section_payloads(cube, version);
    debug_assert_eq!(payloads.len(), SECTIONS.len());
    let mut buf = Vec::with_capacity(128 + cube.num_changes() * 18);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    for payload in &payloads {
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    let mut file_crc = Crc32::new();
    file_crc.update(&buf);
    buf.extend_from_slice(&file_crc.finalize().to_le_bytes());
    buf
}

/// The seven section payloads in file order for `version`.
fn section_payloads(cube: &ChangeCube, version: u32) -> Vec<Vec<u8>> {
    let mut payloads = Vec::with_capacity(SECTIONS.len());
    for interner in [
        cube.entities(),
        cube.properties(),
        cube.templates(),
        cube.pages(),
        cube.values(),
    ] {
        let mut p = Vec::new();
        put_interner(&mut p, interner);
        payloads.push(p);
    }
    let mut meta = Vec::with_capacity(4 + cube.entity_meta().len() * 8);
    meta.extend_from_slice(&(cube.entity_meta().len() as u32).to_le_bytes());
    for m in cube.entity_meta() {
        meta.extend_from_slice(&m.template.0.to_le_bytes());
        meta.extend_from_slice(&m.page.0.to_le_bytes());
    }
    payloads.push(meta);
    let mut changes = Vec::with_capacity(8 + cube.num_changes() * 18);
    changes.extend_from_slice(&(cube.num_changes() as u64).to_le_bytes());
    if version >= 3 {
        // Columnar: six contiguous arrays straight from the cube's
        // struct-of-arrays change table.
        let cols = cube.columns();
        for &d in cols.days() {
            changes.extend_from_slice(&d.day_number().to_le_bytes());
        }
        for &e in cols.entities() {
            changes.extend_from_slice(&e.0.to_le_bytes());
        }
        for &p in cols.properties() {
            changes.extend_from_slice(&p.0.to_le_bytes());
        }
        for &v in cols.values() {
            changes.extend_from_slice(&v.0.to_le_bytes());
        }
        for &k in cols.kinds() {
            changes.push(k as u8);
        }
        for &f in cols.flags() {
            changes.push(f.bits());
        }
    } else {
        for c in cube.iter_changes() {
            changes.extend_from_slice(&c.day.day_number().to_le_bytes());
            changes.extend_from_slice(&c.entity.0.to_le_bytes());
            changes.extend_from_slice(&c.property.0.to_le_bytes());
            changes.extend_from_slice(&c.value.0.to_le_bytes());
            changes.push(c.kind as u8);
            changes.push(c.flags.bits());
        }
    }
    payloads.push(changes);
    payloads
}

/// Deserialize a cube from bytes produced by [`encode`] (v3),
/// [`encode_v2`], or [`encode_v1`].
pub fn decode(mut data: &[u8]) -> Result<ChangeCube, CubeError> {
    let buf = &mut data;
    let magic = take_bytes_in(buf, 8, "magic")?;
    if magic != MAGIC {
        return Err(CubeError::BadMagic);
    }
    let version = take_u32_in(buf, "magic")?;
    match version {
        1 => decode_v1(buf),
        2 | 3 => decode_framed(data, version),
        other => Err(CubeError::UnsupportedVersion(other)),
    }
}

/// Decode a checksummed v2/v3 body (`data` starts after magic + version,
/// but the file checksum covers them, so they are re-derived here). The
/// two versions differ only in the changes-section encoding: row-wise
/// records in v2, contiguous columns in v3.
fn decode_framed(body: &[u8], version: u32) -> Result<ChangeCube, CubeError> {
    // Pass 1 — frame walk. Establishes where every section lies and
    // reports truncation precisely (which section, how many bytes were
    // needed vs. present) before any checksum or content is examined.
    let mut frames: Vec<(&[u8], u32)> = Vec::with_capacity(SECTIONS.len());
    let mut rest = body;
    for name in SECTIONS {
        let (payload, stored_crc) = take_frame(&mut rest, name)?;
        frames.push((payload, stored_crc));
    }
    if rest.len() < 4 {
        return Err(CubeError::Truncated {
            section: "file",
            need: 4,
            got: rest.len(),
        });
    }
    if rest.len() > 4 {
        return Err(CubeError::Corrupt(format!(
            "{} trailing bytes after the file checksum",
            rest.len() - 4
        )));
    }

    // Pass 2 — whole-file checksum (covers magic, version, and all
    // section frames), then the per-section checksums that pinpoint
    // which section went bad.
    let stored = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let mut hasher = Crc32::new();
    hasher.update(MAGIC);
    hasher.update(&version.to_le_bytes());
    hasher.update(&body[..body.len() - 4]);
    let computed = hasher.finalize();
    if stored != computed {
        return Err(CubeError::ChecksumMismatch {
            section: "file",
            stored,
            computed,
        });
    }
    for (name, &(payload, stored)) in SECTIONS.iter().zip(&frames) {
        let computed = crc32(payload);
        if stored != computed {
            return Err(CubeError::ChecksumMismatch {
                section: name,
                stored,
                computed,
            });
        }
    }

    // Pass 3 — parse the now-verified payloads.
    let entities = parse_interner_section(frames[0].0, "entities")?;
    let properties = parse_interner_section(frames[1].0, "properties")?;
    let templates = parse_interner_section(frames[2].0, "templates")?;
    let pages = parse_interner_section(frames[3].0, "pages")?;
    let values = parse_interner_section(frames[4].0, "values")?;
    let entity_meta = parse_entity_meta_section(frames[5].0)?;
    let changes = if version >= 3 {
        parse_columnar_changes_section(frames[6].0)?
    } else {
        parse_changes_section(frames[6].0)?
    };
    ChangeCube::from_parts(
        entities,
        properties,
        templates,
        pages,
        values,
        entity_meta,
        changes,
    )
}

/// Decode the legacy unframed v1 body.
fn decode_v1(buf: &mut &[u8]) -> Result<ChangeCube, CubeError> {
    let entities = take_interner(buf, "entities")?;
    let properties = take_interner(buf, "properties")?;
    let templates = take_interner(buf, "templates")?;
    let pages = take_interner(buf, "pages")?;
    let values = take_interner(buf, "values")?;
    let entity_meta = take_entity_meta(buf)?;
    let changes = take_changes(buf)?;
    if !buf.is_empty() {
        return Err(CubeError::Corrupt(format!("{} trailing bytes", buf.len())));
    }
    ChangeCube::from_parts(
        entities,
        properties,
        templates,
        pages,
        values,
        entity_meta,
        changes,
    )
}

/// Read one framed section without verifying its checksum: length
/// prefix, payload slice, stored payload checksum.
fn take_frame<'a>(buf: &mut &'a [u8], name: &'static str) -> Result<(&'a [u8], u32), CubeError> {
    if buf.len() < 8 {
        return Err(CubeError::Truncated {
            section: name,
            need: 8,
            got: buf.len(),
        });
    }
    let (len_bytes, rest) = buf.split_at(8);
    let len = u64::from_le_bytes([
        len_bytes[0],
        len_bytes[1],
        len_bytes[2],
        len_bytes[3],
        len_bytes[4],
        len_bytes[5],
        len_bytes[6],
        len_bytes[7],
    ]);
    // A corrupt length can be astronomically large; compare in u128 so
    // `len + 4` cannot overflow, and never allocate based on it.
    if (len as u128) + 4 > rest.len() as u128 {
        return Err(CubeError::Truncated {
            section: name,
            need: (len as u128 + 4).min(usize::MAX as u128) as usize,
            got: rest.len(),
        });
    }
    let len = len as usize;
    let payload = &rest[..len];
    let crc_bytes = &rest[len..len + 4];
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    *buf = &rest[len + 4..];
    Ok((payload, stored))
}

fn parse_interner_section(mut payload: &[u8], name: &'static str) -> Result<Interner, CubeError> {
    let interner = take_interner(&mut payload, name)?;
    expect_consumed(payload, name)?;
    Ok(interner)
}

fn parse_entity_meta_section(mut payload: &[u8]) -> Result<Vec<EntityMeta>, CubeError> {
    let meta = take_entity_meta(&mut payload)?;
    expect_consumed(payload, "entity_meta")?;
    Ok(meta)
}

fn parse_changes_section(mut payload: &[u8]) -> Result<Vec<Change>, CubeError> {
    let changes = take_changes(&mut payload)?;
    expect_consumed(payload, "changes")?;
    Ok(changes)
}

/// Parse the v3 columnar changes payload: `u64 count`, then six column
/// arrays (day i32, entity u32, property u32, value u32, kind u8,
/// flags u8), each `count` elements long.
fn parse_columnar_changes_section(mut payload: &[u8]) -> Result<Vec<Change>, CubeError> {
    const SECTION: &str = "changes";
    let buf = &mut payload;
    let n_changes = take_u64_in(buf, SECTION)?;
    // Compare in u128: a corrupt u64 count can exceed usize on 32-bit.
    if (n_changes as u128) * 18 > buf.len() as u128 {
        return Err(CubeError::Truncated {
            section: SECTION,
            need: ((n_changes as u128) * 18).min(usize::MAX as u128) as usize,
            got: buf.len(),
        });
    }
    let n = n_changes as usize;
    let days = take_bytes_in(buf, n * 4, SECTION)?;
    let entities = take_bytes_in(buf, n * 4, SECTION)?;
    let properties = take_bytes_in(buf, n * 4, SECTION)?;
    let values = take_bytes_in(buf, n * 4, SECTION)?;
    let kinds = take_bytes_in(buf, n, SECTION)?;
    let flags = take_bytes_in(buf, n, SECTION)?;
    expect_consumed(buf, SECTION)?;
    let mut changes = Vec::with_capacity(n);
    for i in 0..n {
        let at = i * 4;
        let day = Date::from_day_number(i32::from_le_bytes([
            days[at],
            days[at + 1],
            days[at + 2],
            days[at + 3],
        ]));
        let entity = EntityId(u32::from_le_bytes([
            entities[at],
            entities[at + 1],
            entities[at + 2],
            entities[at + 3],
        ]));
        let property = PropertyId(u32::from_le_bytes([
            properties[at],
            properties[at + 1],
            properties[at + 2],
            properties[at + 3],
        ]));
        let value = ValueId(u32::from_le_bytes([
            values[at],
            values[at + 1],
            values[at + 2],
            values[at + 3],
        ]));
        let kind = ChangeKind::from_u8(kinds[i])
            .ok_or_else(|| CubeError::Corrupt(format!("unknown change kind {}", kinds[i])))?;
        changes.push(Change {
            day,
            entity,
            property,
            value,
            kind,
            flags: ChangeFlags::from_bits(flags[i]),
        });
    }
    Ok(changes)
}

fn expect_consumed(payload: &[u8], name: &'static str) -> Result<(), CubeError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(CubeError::Corrupt(format!(
            "{} trailing bytes in section {name}",
            payload.len()
        )))
    }
}

/// Write `cube` to `path` atomically and durably (temp file + fsync +
/// rename + directory fsync).
pub fn write_to_path(cube: &ChangeCube, path: &Path) -> Result<(), CubeError> {
    write_bytes_atomic(path, &encode(cube))?;
    Ok(())
}

/// Atomically replace `path` with `bytes`.
///
/// The bytes are written to a sibling temporary file (same directory, so
/// the rename cannot cross filesystems), flushed to stable storage with
/// `fsync`, renamed over `path`, and the parent directory is fsync'd so
/// the rename itself survives a crash. On any failure the temporary file
/// is removed and `path` is left untouched.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let written = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename durable. Directory fsync is best-effort: it can
    // fail on exotic filesystems, and by this point the data file itself
    // is already safe.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read a cube previously written with [`write_to_path`].
pub fn read_from_path(path: &Path) -> Result<ChangeCube, CubeError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode(&data)
}

fn put_interner(buf: &mut Vec<u8>, interner: &Interner) {
    buf.extend_from_slice(&(interner.len() as u32).to_le_bytes());
    for (_, s) in interner.iter() {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
}

/// Capacity to pre-reserve for `count` elements of at least
/// `min_elem_bytes` each, clamped to what `remaining` bytes can hold —
/// an untrusted count must never size an allocation.
fn clamped_capacity(count: usize, remaining: usize, min_elem_bytes: usize) -> usize {
    count.min(remaining / min_elem_bytes.max(1))
}

fn take_interner(buf: &mut &[u8], section: &'static str) -> Result<Interner, CubeError> {
    let count = take_u32_in(buf, section)? as usize;
    // Each string costs at least its 4-byte length prefix.
    let mut strings = Vec::with_capacity(clamped_capacity(count, buf.len(), 4));
    for _ in 0..count {
        let len = take_u32_in(buf, section)? as usize;
        let bytes = take_bytes_in(buf, len, section)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| CubeError::Corrupt(format!("invalid UTF-8 in interner: {e}")))?;
        strings.push(s.to_owned());
    }
    Interner::from_ordered(strings).map_err(CubeError::Corrupt)
}

fn take_entity_meta(buf: &mut &[u8]) -> Result<Vec<EntityMeta>, CubeError> {
    const SECTION: &str = "entity_meta";
    let n_entities = take_u32_in(buf, SECTION)? as usize;
    let mut entity_meta = Vec::with_capacity(clamped_capacity(n_entities, buf.len(), 8));
    for _ in 0..n_entities {
        entity_meta.push(EntityMeta {
            template: TemplateId(take_u32_in(buf, SECTION)?),
            page: PageId(take_u32_in(buf, SECTION)?),
        });
    }
    Ok(entity_meta)
}

fn take_changes(buf: &mut &[u8]) -> Result<Vec<Change>, CubeError> {
    const SECTION: &str = "changes";
    let n_changes = take_u64_in(buf, SECTION)?;
    // Compare in u128: a corrupt u64 count can exceed usize on 32-bit.
    if (n_changes as u128) * 18 > buf.len() as u128 {
        return Err(CubeError::Truncated {
            section: SECTION,
            need: ((n_changes as u128) * 18).min(usize::MAX as u128) as usize,
            got: buf.len(),
        });
    }
    let n_changes = n_changes as usize;
    let mut changes = Vec::with_capacity(clamped_capacity(n_changes, buf.len(), 18));
    for _ in 0..n_changes {
        let day = Date::from_day_number(take_i32_in(buf, SECTION)?);
        let entity = EntityId(take_u32_in(buf, SECTION)?);
        let property = PropertyId(take_u32_in(buf, SECTION)?);
        let value = ValueId(take_u32_in(buf, SECTION)?);
        let kind_raw = take_u8_in(buf, SECTION)?;
        let kind = ChangeKind::from_u8(kind_raw)
            .ok_or_else(|| CubeError::Corrupt(format!("unknown change kind {kind_raw}")))?;
        let flags = ChangeFlags::from_bits(take_u8_in(buf, SECTION)?);
        changes.push(Change {
            day,
            entity,
            property,
            value,
            kind,
            flags,
        });
    }
    Ok(changes)
}

fn take_bytes_in<'a>(
    buf: &mut &'a [u8],
    n: usize,
    section: &'static str,
) -> Result<&'a [u8], CubeError> {
    if buf.len() < n {
        return Err(CubeError::Truncated {
            section,
            need: n,
            got: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u8_in(buf: &mut &[u8], section: &'static str) -> Result<u8, CubeError> {
    Ok(take_bytes_in(buf, 1, section)?[0])
}

fn take_u32_in(buf: &mut &[u8], section: &'static str) -> Result<u32, CubeError> {
    let b = take_bytes_in(buf, 4, section)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_i32_in(buf: &mut &[u8], section: &'static str) -> Result<i32, CubeError> {
    let b = take_bytes_in(buf, 4, section)?;
    Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_u64_in(buf: &mut &[u8], section: &'static str) -> Result<u64, CubeError> {
    let b = take_bytes_in(buf, 8, section)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ChangeCubeBuilder;
    use proptest::prelude::*;

    fn sample_cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let wins = b.property("wins");
        let ko = b.property("ko");
        b.change(Date::EPOCH + 10, ali, wins, "56", ChangeKind::Update);
        b.change_full(
            Date::EPOCH + 11,
            ali,
            ko,
            "37",
            ChangeKind::Create,
            ChangeFlags::BOT_REVERTED,
        );
        b.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cube = sample_cube();
        let bytes = encode(&cube);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.changes_vec(), cube.changes_vec());
        assert_eq!(back.num_entities(), cube.num_entities());
        assert_eq!(back.entity_name(EntityId(0)), "Ali");
        assert_eq!(back.template_name(TemplateId(0)), "infobox boxer");
        assert_eq!(back.value_text(ValueId(0)), "56");
        assert!(back.change_at(1).flags.is_bot_reverted());
        // Deterministic: re-encoding is byte-identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn empty_cube_round_trips() {
        let cube = ChangeCubeBuilder::new().finish();
        let back = decode(&encode(&cube)).unwrap();
        assert_eq!(back.num_changes(), 0);
        assert_eq!(back.num_entities(), 0);
    }

    #[test]
    fn v1_files_still_load() {
        let cube = sample_cube();
        let v1 = encode_v1(&cube);
        assert_eq!(&v1[8..12], &1u32.to_le_bytes());
        let back = decode(&v1).unwrap();
        assert_eq!(back.changes_vec(), cube.changes_vec());
        assert_eq!(back.entity_name(EntityId(0)), "Ali");
        // Upgrading: re-encoding a v1-loaded cube produces the same v3
        // bytes as encoding the original.
        assert_eq!(encode(&back), encode(&cube));
    }

    #[test]
    fn v2_files_still_load() {
        let cube = sample_cube();
        let v2 = encode_v2(&cube);
        assert_eq!(&v2[8..12], &2u32.to_le_bytes());
        let back = decode(&v2).unwrap();
        assert_eq!(back.changes_vec(), cube.changes_vec());
        assert_eq!(back.entity_name(EntityId(0)), "Ali");
        assert!(back.change_at(1).flags.is_bot_reverted());
        // Upgrading: re-encoding a v2-loaded cube produces the same v3
        // bytes as encoding the original.
        assert_eq!(encode(&back), encode(&cube));
        // v2 and v3 carry the same payload bytes in different shapes,
        // so the encodings differ but have identical length.
        let v3 = encode(&cube);
        assert_ne!(v2, v3);
        assert_eq!(v2.len(), v3.len());
    }

    #[test]
    fn v2_empty_cube_round_trips() {
        let cube = ChangeCubeBuilder::new().finish();
        let back = decode(&encode_v2(&cube)).unwrap();
        assert_eq!(back.num_changes(), 0);
    }

    #[test]
    fn v2_bit_flips_are_detected() {
        let bytes = encode_v2(&sample_cube());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode(&flipped).is_err(),
                    "v2 bit flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn v1_empty_cube_round_trips() {
        let cube = ChangeCubeBuilder::new().finish();
        let back = decode(&encode_v1(&cube)).unwrap();
        assert_eq!(back.num_changes(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"NOTACUBE"), Err(CubeError::BadMagic)));
        assert!(matches!(decode(b""), Err(CubeError::Truncated { .. })));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = encode(&sample_cube()).to_vec();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(CubeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample_cube());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_v1_truncation_anywhere() {
        let bytes = encode_v1(&sample_cube());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "v1 truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The trailing file checksum covers every byte, so any one-bit
        // corruption must surface as a typed error.
        let bytes = encode(&sample_cube());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode(&flipped).is_err(),
                    "bit flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_error_names_section_and_counts() {
        let bytes = encode(&sample_cube());
        // Cut inside the trailing file checksum.
        match decode(&bytes[..bytes.len() - 2]) {
            Err(CubeError::Truncated { section, need, got }) => {
                assert_eq!(section, "file");
                assert!(need > got, "need {need} got {got}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn huge_counts_do_not_allocate() {
        // A v1 header whose interner count claims u32::MAX strings: the
        // decoder must fail on missing bytes without reserving gigabytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CubeError::Truncated { .. })));
        // Same for a v1 change count claiming u64::MAX records.
        let cube = ChangeCubeBuilder::new().finish();
        let mut v1 = encode_v1(&cube);
        let len = v1.len();
        v1[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode(&v1), Err(CubeError::Truncated { .. })));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample_cube()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
        let mut v1 = encode_v1(&sample_cube());
        v1.push(0);
        assert!(matches!(decode(&v1), Err(CubeError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let cube = sample_cube();
        let dir = std::env::temp_dir().join("wikicube-binio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.wcube");
        write_to_path(&cube, &path).unwrap();
        let back = read_from_path(&path).unwrap();
        assert_eq!(back.changes_vec(), cube.changes_vec());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("wikicube-binio-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.wcube");
        write_to_path(&sample_cube(), &path).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Overwrite with a different cube: reader sees old or new, and
        // no temporary files survive.
        let other = ChangeCubeBuilder::new().finish();
        write_to_path(&other, &path).unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_ne!(first, second);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_failure_keeps_old_file() {
        let dir = std::env::temp_dir().join("wikicube-binio-atomic-fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.wcube");
        write_to_path(&sample_cube(), &path).unwrap();
        // Writing into a directory that does not exist fails cleanly.
        let bad = dir.join("missing-subdir").join("cube.wcube");
        assert!(write_to_path(&sample_cube(), &bad).is_err());
        // The original is untouched and still valid.
        assert!(read_from_path(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_round_trip(
            days in proptest::collection::vec(0i32..2000, 1..60),
            n_entities in 1usize..6,
            n_props in 1usize..6,
        ) {
            let mut b = ChangeCubeBuilder::new();
            let entities: Vec<_> = (0..n_entities)
                .map(|i| b.entity(&format!("e{i}"), &format!("t{}", i % 2), &format!("pg{i}")))
                .collect();
            let props: Vec<_> = (0..n_props).map(|i| b.property(&format!("p{i}"))).collect();
            for (i, &d) in days.iter().enumerate() {
                let kind = match i % 3 {
                    0 => ChangeKind::Create,
                    1 => ChangeKind::Update,
                    _ => ChangeKind::Delete,
                };
                b.change(
                    Date::EPOCH + d,
                    entities[i % n_entities],
                    props[i % n_props],
                    &format!("v{i}"),
                    kind,
                );
            }
            let cube = b.finish();
            let back = decode(&encode(&cube)).unwrap();
            prop_assert_eq!(back.changes_vec(), cube.changes_vec());
            prop_assert_eq!(encode(&back), encode(&cube));
            // v1/v2 compatibility: the legacy encodings of the same cube
            // decode to the same changes.
            let v1_back = decode(&encode_v1(&cube)).unwrap();
            prop_assert_eq!(v1_back.changes_vec(), cube.changes_vec());
            let v2_back = decode(&encode_v2(&cube)).unwrap();
            prop_assert_eq!(v2_back.changes_vec(), cube.changes_vec());
        }

        // The corrupt-bytes mirror of `xml::prop_never_panics`: random
        // byte mutations of a valid framed encoding must return `Err`
        // (guaranteed by the file checksum), never panic.
        #[test]
        fn prop_corrupt_framed_bytes_always_err(
            seed_days in proptest::collection::vec(0i32..365, 1..10),
            offset_frac in 0.0f64..1.0,
            new_byte in 0u8..=255,
            cut_frac in 0.0f64..1.0,
        ) {
            let mut b = ChangeCubeBuilder::new();
            let e = b.entity("e", "t", "p");
            let prop = b.property("x");
            for &d in &seed_days {
                b.change(Date::EPOCH + d, e, prop, &format!("v{d}"), ChangeKind::Update);
            }
            let bytes = encode(&b.finish());

            // Mutation: overwrite one byte with a different value.
            let pos = ((bytes.len() - 1) as f64 * offset_frac) as usize;
            if bytes[pos] != new_byte {
                let mut mutated = bytes.clone();
                mutated[pos] = new_byte;
                prop_assert!(decode(&mutated).is_err(), "mutation at {pos} decoded");
            }

            // Truncation: any proper prefix fails.
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} decoded");
        }

        // v1 has no checksums, so a mutated v1 file may even decode to a
        // different valid cube — but it must never panic.
        #[test]
        fn prop_corrupt_v1_bytes_never_panic(
            mutations in proptest::collection::vec((0.0f64..1.0, 0u8..=255), 1..8),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut b = ChangeCubeBuilder::new();
            let e = b.entity("e", "t", "p");
            let prop = b.property("x");
            b.change(Date::EPOCH + 1, e, prop, "v", ChangeKind::Create);
            let bytes = encode_v1(&b.finish());
            let mut mutated = bytes.clone();
            for &(frac, val) in &mutations {
                let pos = ((bytes.len() - 1) as f64 * frac) as usize;
                mutated[pos] = val;
            }
            let _ = decode(&mutated);
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            let _ = decode(&mutated[..cut]);
        }
    }
}
