//! String interning for cube dimensions.
//!
//! The change cube stores one [`Interner`] per string-valued dimension
//! (entity names, property names, template names, page titles, values), so
//! the 100k–100M-row change table itself holds only dense `u32` ids.

use crate::fxhash::FxHashMap;

/// A bijective map between strings and dense `u32` ids.
///
/// Ids are assigned in first-seen order starting at 0, so they double as
/// indices into any side table sized with [`Interner::len`].
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Create an interner with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Interner {
        Interner {
            strings: Vec::with_capacity(cap),
            ids: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Intern `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Look up the id of `s` without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// Resolve an id back to its string. Panics if the id was not issued by
    /// this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Resolve an id, returning `None` for ids this interner never issued.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }

    /// Rebuild an interner from an id-ordered list of strings, as read back
    /// from persistent storage. Duplicate strings are rejected because they
    /// would break bijectivity.
    pub fn from_ordered(strings: Vec<String>) -> Result<Interner, String> {
        let mut interner = Interner::with_capacity(strings.len());
        for s in &strings {
            if interner.ids.contains_key(s.as_str()) {
                return Err(format!("duplicate interned string {s:?}"));
            }
            interner.intern(s);
        }
        Ok(interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("matches");
        let b = i.intern("goals");
        assert_eq!(i.intern("matches"), a);
        assert_eq!(i.intern("goals"), b);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for (expected, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(s) as usize, expected);
        }
    }

    #[test]
    fn resolve_round_trip() {
        let mut i = Interner::new();
        let id = i.intern("infobox settlement");
        assert_eq!(i.resolve(id), "infobox settlement");
        assert_eq!(i.get("infobox settlement"), Some(id));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.try_resolve(id), Some("infobox settlement"));
        assert_eq!(i.try_resolve(id + 1), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let pairs: Vec<(u32, String)> = i.iter().map(|(id, s)| (id, s.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn from_ordered_rejects_duplicates() {
        assert!(Interner::from_ordered(vec!["a".into(), "a".into()]).is_err());
        let ok = Interner::from_ordered(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(ok.get("b"), Some(1));
    }

    proptest! {
        #[test]
        fn prop_bijective(strings in proptest::collection::vec(".*", 0..50)) {
            let mut interner = Interner::new();
            let ids: Vec<u32> = strings.iter().map(|s| interner.intern(s)).collect();
            for (s, &id) in strings.iter().zip(&ids) {
                prop_assert_eq!(interner.resolve(id), s.as_str());
                prop_assert_eq!(interner.get(s), Some(id));
            }
            // Dense: ids cover 0..len.
            let mut sorted: Vec<u32> = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), interner.len());
            prop_assert!(sorted.iter().enumerate().all(|(i, &id)| id as usize == i));
        }

        #[test]
        fn prop_from_ordered_round_trip(strings in proptest::collection::hash_set(".*", 0..30)) {
            let ordered: Vec<String> = strings.into_iter().collect();
            let interner = Interner::from_ordered(ordered.clone()).unwrap();
            let back: Vec<String> = interner.iter().map(|(_, s)| s.to_owned()).collect();
            prop_assert_eq!(back, ordered);
        }
    }
}
