//! The change record: one edit to one infobox field on one day.

use crate::date::Date;
use crate::ids::{EntityId, FieldId, PropertyId, ValueId};
use std::fmt;

/// What kind of edit a change represents.
///
/// The paper's filter pipeline (§4) removes creations (50.6 % of raw
/// changes) and deletions (20.3 %) before training, because the predictors
/// only model *updates* to existing fields.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
#[repr(u8)]
pub enum ChangeKind {
    /// The property was added (or its infobox was created).
    Create = 0,
    /// The value of an existing property changed.
    Update = 1,
    /// The property was removed (or its infobox was deleted).
    Delete = 2,
}

impl ChangeKind {
    /// Decode from the wire representation used by [`crate::binio`].
    pub fn from_u8(v: u8) -> Option<ChangeKind> {
        match v {
            0 => Some(ChangeKind::Create),
            1 => Some(ChangeKind::Update),
            2 => Some(ChangeKind::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChangeKind::Create => "create",
            ChangeKind::Update => "update",
            ChangeKind::Delete => "delete",
        })
    }
}

/// Per-change flag bits.
///
/// Only one flag exists today: `BOT_REVERTED` marks changes that a Wikipedia
/// bot reverted shortly after they were made (0.008 % of the raw corpus,
/// §4); the filter pipeline drops them because they carry no update signal.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ChangeFlags(u8);

impl ChangeFlags {
    /// No flags set.
    pub const NONE: ChangeFlags = ChangeFlags(0);
    /// The change was reverted by a bot (vandalism or accident).
    pub const BOT_REVERTED: ChangeFlags = ChangeFlags(1);

    /// Raw bits (for serialization).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild from raw bits, masking out unknown flags.
    pub const fn from_bits(bits: u8) -> ChangeFlags {
        ChangeFlags(bits & 0b1)
    }

    /// Whether the bot-reverted flag is set.
    pub const fn is_bot_reverted(self) -> bool {
        self.0 & Self::BOT_REVERTED.0 != 0
    }

    /// Union of two flag sets.
    pub const fn union(self, other: ChangeFlags) -> ChangeFlags {
        ChangeFlags(self.0 | other.0)
    }
}

impl fmt::Debug for ChangeFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bot_reverted() {
            f.write_str("BOT_REVERTED")
        } else {
            f.write_str("NONE")
        }
    }
}

/// One change-cube tuple: on `day`, `entity`'s `property` was assigned
/// `value` by an edit of kind `kind`.
///
/// The struct is 20 bytes and `Copy`; the cube stores changes in a flat
/// `Vec<Change>` sorted by `(day, entity, property)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Change {
    /// Day of the edit (the cube's time resolution is one day).
    pub day: Date,
    /// The infobox that was edited.
    pub entity: EntityId,
    /// The attribute that was edited.
    pub property: PropertyId,
    /// The newly assigned value (interned).
    pub value: ValueId,
    /// Create / update / delete.
    pub kind: ChangeKind,
    /// Flag bits.
    pub flags: ChangeFlags,
}

impl Change {
    /// The field this change belongs to.
    #[inline]
    pub fn field(&self) -> FieldId {
        FieldId::new(self.entity, self.property)
    }

    /// Sort key used for the cube's canonical ordering.
    #[inline]
    pub fn sort_key(&self) -> (Date, EntityId, PropertyId) {
        (self.day, self.entity, self.property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Change {
        Change {
            day: Date::from_ymd(2019, 5, 12).unwrap(),
            entity: EntityId(3),
            property: PropertyId(7),
            value: ValueId(11),
            kind: ChangeKind::Update,
            flags: ChangeFlags::NONE,
        }
    }

    #[test]
    fn field_combines_entity_and_property() {
        let c = sample();
        assert_eq!(c.field(), FieldId::new(EntityId(3), PropertyId(7)));
    }

    #[test]
    fn kind_round_trip() {
        for kind in [ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete] {
            assert_eq!(ChangeKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(ChangeKind::from_u8(3), None);
        assert_eq!(ChangeKind::Update.to_string(), "update");
    }

    #[test]
    fn flags_round_trip() {
        assert!(!ChangeFlags::NONE.is_bot_reverted());
        assert!(ChangeFlags::BOT_REVERTED.is_bot_reverted());
        assert_eq!(
            ChangeFlags::from_bits(ChangeFlags::BOT_REVERTED.bits()),
            ChangeFlags::BOT_REVERTED
        );
        // Unknown bits are masked off.
        assert_eq!(ChangeFlags::from_bits(0xFE), ChangeFlags::NONE);
        assert_eq!(
            ChangeFlags::NONE.union(ChangeFlags::BOT_REVERTED),
            ChangeFlags::BOT_REVERTED
        );
    }

    #[test]
    fn change_struct_stays_compact() {
        // Sorting and scanning 10^8 of these is the hot path; keep it small.
        assert!(std::mem::size_of::<Change>() <= 20);
    }

    #[test]
    fn sort_key_orders_by_time_first() {
        let mut a = sample();
        let mut b = sample();
        a.day = Date::EPOCH;
        b.day = Date::EPOCH + 1;
        b.entity = EntityId(0);
        assert!(a.sort_key() < b.sort_key());
    }
}
