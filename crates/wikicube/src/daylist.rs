//! Shared, delta-encoded per-field day lists.
//!
//! Every stage of the pipeline needs "the sorted change days of field X":
//! the per-day index, the correlation pair search, the baselines and the
//! Apriori transaction builder. Before the columnar refactor each stage
//! re-derived those lists from the row table and kept them as one
//! `Vec<Date>` per field — 4 bytes per day plus a vector header per
//! field. [`DayListStore`] materializes them **once**, in a single CSR
//! arena of delta-encoded `u32` run words, and is shared by reference
//! (`Arc`) between the cube, the index and the predictors.
//!
//! # Encoding
//!
//! A field's days are strictly increasing (the cube is canonical: at most
//! one change per `(entity, property, day)`), so they decompose into
//! maximal runs of consecutive days. Each run is stored as one `u32`
//! word:
//!
//! ```text
//! w = gap << 8 | (len - 1)      gap < 0x00FF_FFFF, 1 <= len <= 256
//! ```
//!
//! `gap` is the distance from the *anchor* — the store-wide base day for
//! a field's first run, `previous run end + 1` afterwards — and `len` is
//! the number of consecutive days. Runs longer than 256 days continue
//! with `gap = 0` words; a gap too large for 24 bits (≈ 46 000 years)
//! escapes to the sentinel [`ESCAPE`] followed by raw `gap` and `len`
//! words. One day therefore costs at most one word (4 bytes, same as the
//! old `Vec<Date>` element) and a K-day consecutive run costs 4/K bytes
//! per day, with no per-field vector header either way.

use crate::change::ChangeKind;
use crate::cube::ChangeCube;
use crate::date::{Date, DateRange};
use crate::fxhash::FxHashMap;
use crate::ids::FieldId;
use std::sync::Arc;

/// Sentinel run word: the next two words are a raw `gap` and `len`.
const ESCAPE: u32 = 0xFFFF_FFFF;
/// Largest gap representable in a packed word.
const MAX_PACKED_GAP: u32 = 0x00FF_FFFE;
/// Largest run length representable in a packed word.
const MAX_PACKED_LEN: u32 = 256;

/// One delta-encoded day list per field, stored in a shared CSR arena.
///
/// Fields are sorted by `(entity, property)` and addressed by dense
/// position, exactly like [`crate::CubeIndex`] positions.
#[derive(Debug, Clone, Default)]
pub struct DayListStore {
    /// All fields with at least one stored day, sorted.
    fields: Vec<FieldId>,
    /// Field id → dense position in `fields`.
    field_pos: FxHashMap<FieldId, u32>,
    /// CSR offsets into `runs` (`fields.len() + 1` entries).
    run_offsets: Vec<u32>,
    /// Packed run words for all fields, concatenated.
    runs: Vec<u32>,
    /// Cumulative day counts (`fields.len() + 1` entries); gives O(1)
    /// per-list length and total.
    count_offsets: Vec<u32>,
    /// Store-wide base day: anchor of every field's first run.
    base: i32,
}

impl DayListStore {
    /// Build a store from per-field day lists. Each list must be strictly
    /// increasing; field order in the map does not matter.
    pub fn from_field_days(per_field: FxHashMap<FieldId, Vec<Date>>) -> DayListStore {
        let mut per_field = per_field;
        let mut fields: Vec<FieldId> = per_field.keys().copied().collect();
        fields.sort_unstable();
        let base = per_field
            .values()
            .filter_map(|d| d.first())
            .map(|d| d.day_number())
            .min()
            .unwrap_or(0);

        let mut field_pos = FxHashMap::default();
        field_pos.reserve(fields.len());
        let mut run_offsets = Vec::with_capacity(fields.len() + 1);
        let mut count_offsets = Vec::with_capacity(fields.len() + 1);
        let mut runs = Vec::new();
        run_offsets.push(0u32);
        count_offsets.push(0u32);
        let mut total = 0u32;
        for (pos, f) in fields.iter().enumerate() {
            field_pos.insert(*f, pos as u32);
            let days = per_field.remove(f).unwrap_or_default();
            encode_days(&mut runs, base, &days);
            total += days.len() as u32;
            run_offsets.push(runs.len() as u32);
            count_offsets.push(total);
        }
        runs.shrink_to_fit();
        DayListStore {
            fields,
            field_pos,
            run_offsets,
            runs,
            count_offsets,
            base,
        }
    }

    /// Number of fields with at least one stored day.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// All fields, sorted by `(entity, property)`.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// The field at dense position `pos`.
    pub fn field(&self, pos: usize) -> FieldId {
        self.fields[pos]
    }

    /// Dense position of `field`, if present.
    pub fn position(&self, field: FieldId) -> Option<usize> {
        self.field_pos.get(&field).map(|&p| p as usize)
    }

    /// The day list at dense position `pos`.
    pub fn list(&self, pos: usize) -> DayList<'_> {
        let lo = self.run_offsets[pos] as usize;
        let hi = self.run_offsets[pos + 1] as usize;
        DayList {
            runs: &self.runs[lo..hi],
            base: self.base,
            count: self.count_offsets[pos + 1] - self.count_offsets[pos],
        }
    }

    /// The day list of `field`, if present.
    pub fn get(&self, field: FieldId) -> Option<DayList<'_>> {
        self.position(field).map(|pos| self.list(pos))
    }

    /// Iterate `(position, field, day list)` in field order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FieldId, DayList<'_>)> {
        (0..self.fields.len()).map(move |pos| (pos, self.fields[pos], self.list(pos)))
    }

    /// Total number of stored days across all fields.
    pub fn total_days(&self) -> usize {
        self.count_offsets.last().copied().unwrap_or(0) as usize
    }

    /// Heap bytes held by the encoded store (arena vectors plus an
    /// estimate of the position map's table).
    pub fn heap_bytes(&self) -> usize {
        self.fields.len() * std::mem::size_of::<FieldId>()
            + self.runs.capacity() * 4
            + self.run_offsets.capacity() * 4
            + self.count_offsets.capacity() * 4
            + self.field_pos.capacity() * (std::mem::size_of::<FieldId>() + 4)
    }

    /// Heap bytes the same lists would occupy decoded, as one
    /// `Vec<Date>` per field (4 bytes per day plus a vector header per
    /// field) — the layout this store replaced.
    pub fn decoded_baseline_bytes(&self) -> usize {
        self.total_days() * 4 + self.num_fields() * std::mem::size_of::<Vec<Date>>()
    }
}

/// Build the per-field day-list map for `cube`, keeping only changes of
/// `kinds` (`None` keeps every kind). Chunks of the day-major change
/// table are scanned in parallel and merged in chunk order, so each
/// field's list stays day-sorted and the result is independent of the
/// thread count.
pub(crate) fn collect_field_days(
    cube: &ChangeCube,
    kinds: Option<&[ChangeKind]>,
) -> FxHashMap<FieldId, Vec<Date>> {
    let cols = cube.columns();
    let chunk_maps: Vec<FxHashMap<FieldId, Vec<Date>>> =
        wikistale_exec::par_ranges("day_lists", cols.len(), 16_384, |range| {
            let mut local: FxHashMap<FieldId, Vec<Date>> = FxHashMap::default();
            for i in range {
                if kinds.is_none_or(|ks| ks.contains(&cols.kinds()[i])) {
                    let field = FieldId::new(cols.entities()[i], cols.properties()[i]);
                    local.entry(field).or_default().push(cols.days()[i]);
                }
            }
            local
        });
    let mut per_field: FxHashMap<FieldId, Vec<Date>> = FxHashMap::default();
    for local in chunk_maps {
        for (field, mut field_days) in local {
            per_field.entry(field).or_default().append(&mut field_days);
        }
    }
    per_field
}

/// Build a store over `cube` restricted to changes of `kinds`.
pub(crate) fn store_for_kinds(cube: &ChangeCube, kinds: &[ChangeKind]) -> Arc<DayListStore> {
    Arc::new(DayListStore::from_field_days(collect_field_days(
        cube,
        Some(kinds),
    )))
}

/// Append the encoded runs of one strictly-increasing day list.
fn encode_days(runs: &mut Vec<u32>, base: i32, days: &[Date]) {
    let mut anchor = base as i64;
    let mut i = 0usize;
    while i < days.len() {
        let start = days[i].day_number() as i64;
        let mut end = i + 1;
        while end < days.len() && days[end].day_number() as i64 == start + (end - i) as i64 {
            end += 1;
        }
        let mut gap = (start - anchor) as u64 as u32;
        let mut len = (end - i) as u32;
        while len > 0 {
            let chunk = len.min(MAX_PACKED_LEN);
            if gap <= MAX_PACKED_GAP {
                runs.push((gap << 8) | (chunk - 1));
            } else {
                runs.push(ESCAPE);
                runs.push(gap);
                runs.push(chunk);
            }
            gap = 0;
            len -= chunk;
        }
        anchor = start + (end - i) as i64;
        i = end;
    }
}

/// Read one `(gap, len)` run starting at `runs[*idx]`, advancing `idx`.
#[inline]
fn read_run(runs: &[u32], idx: &mut usize) -> (u32, u32) {
    let w = runs[*idx];
    if w == ESCAPE {
        let gap = runs[*idx + 1];
        let len = runs[*idx + 2];
        *idx += 3;
        (gap, len)
    } else {
        *idx += 1;
        (w >> 8, (w & 0xFF) + 1)
    }
}

/// A borrowed view of one field's encoded day list.
#[derive(Debug, Clone, Copy)]
pub struct DayList<'a> {
    runs: &'a [u32],
    base: i32,
    count: u32,
}

impl<'a> DayList<'a> {
    /// An empty list (useful as a default when a field is absent).
    pub const EMPTY: DayList<'static> = DayList {
        runs: &[],
        base: 0,
        count: 0,
    };

    /// Number of days in the list.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the list has no days.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate `(start_day_number, len)` decoded runs.
    fn walk(&self) -> RunWalk<'a> {
        RunWalk {
            runs: self.runs,
            idx: 0,
            anchor: self.base as i64,
        }
    }

    /// Iterate the days in ascending order.
    pub fn iter(&self) -> DayIter<'a> {
        DayIter {
            walk: self.walk(),
            cur: 0,
            cur_left: 0,
            remaining: self.count,
        }
    }

    /// The earliest day, if any.
    pub fn first(&self) -> Option<Date> {
        self.walk()
            .next()
            .map(|(start, _)| Date::from_day_number(start as i32))
    }

    /// The latest day, if any.
    pub fn last(&self) -> Option<Date> {
        self.walk()
            .last()
            .map(|(start, len)| Date::from_day_number((start + len as i64 - 1) as i32))
    }

    /// Number of days strictly before `before`.
    pub fn count_before(&self, before: Date) -> usize {
        let b = before.day_number() as i64;
        let mut n = 0usize;
        for (start, len) in self.walk() {
            if start >= b {
                break;
            }
            n += (b - start).min(len as i64) as usize;
        }
        n
    }

    /// The latest day strictly before `before`, if any.
    pub fn last_before(&self, before: Date) -> Option<Date> {
        let b = before.day_number() as i64;
        let mut best: Option<i64> = None;
        for (start, len) in self.walk() {
            if start >= b {
                break;
            }
            best = Some(start + (b - start).min(len as i64) - 1);
        }
        best.map(|d| Date::from_day_number(d as i32))
    }

    /// Whether any day falls in the half-open window `[start, end)`.
    pub fn changed_in(&self, start: Date, end: Date) -> bool {
        let (s, e) = (start.day_number() as i64, end.day_number() as i64);
        if s >= e {
            return false;
        }
        for (run_start, len) in self.walk() {
            if run_start >= e {
                return false;
            }
            if run_start + len as i64 > s {
                return true;
            }
        }
        false
    }

    /// Iterate the days at or after `from`, ascending. Skips whole runs,
    /// so positioning costs O(runs), not O(days).
    pub fn iter_from(&self, from: Date) -> DayIter<'a> {
        let f = from.day_number() as i64;
        let mut walk = self.walk();
        let mut skipped = 0u32;
        loop {
            let before_idx = walk.idx;
            let before_anchor = walk.anchor;
            match walk.next() {
                None => {
                    return DayIter {
                        walk,
                        cur: 0,
                        cur_left: 0,
                        remaining: 0,
                    }
                }
                Some((start, len)) => {
                    if start + len as i64 <= f {
                        skipped += len;
                        continue;
                    }
                    // Re-enter this run, clipped to days >= from.
                    let clip = (f - start).max(0) as u32;
                    let rewound = RunWalk {
                        runs: walk.runs,
                        idx: before_idx,
                        anchor: before_anchor,
                    };
                    let mut it = DayIter {
                        walk: rewound,
                        cur: 0,
                        cur_left: 0,
                        remaining: self.count - skipped,
                    };
                    // Load the run and drop its clipped prefix.
                    it.load_next_run();
                    it.cur += clip as i64;
                    it.cur_left -= clip;
                    it.remaining -= clip;
                    return it;
                }
            }
        }
    }

    /// Iterate the days inside the half-open `range`, ascending.
    pub fn iter_in(&self, range: DateRange) -> impl Iterator<Item = Date> + use<'a> {
        let end = range.end();
        self.iter_from(range.start()).take_while(move |&d| d < end)
    }

    /// Decode the whole list into `buf` (cleared first) and return it as
    /// a slice — the bridge for kernels that need contiguous days.
    pub fn decode_into<'b>(&self, buf: &'b mut Vec<Date>) -> &'b [Date] {
        buf.clear();
        buf.reserve(self.len());
        buf.extend(self.iter());
        buf.as_slice()
    }

    /// Decode into a fresh vector.
    pub fn to_vec(&self) -> Vec<Date> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for DayList<'a> {
    type Item = Date;
    type IntoIter = DayIter<'a>;
    fn into_iter(self) -> DayIter<'a> {
        self.iter()
    }
}

/// Decoded-run iterator: yields `(start_day_number, len)`.
#[derive(Debug, Clone)]
struct RunWalk<'a> {
    runs: &'a [u32],
    idx: usize,
    /// Day number gaps are measured from.
    anchor: i64,
}

impl Iterator for RunWalk<'_> {
    type Item = (i64, u32);
    fn next(&mut self) -> Option<(i64, u32)> {
        if self.idx >= self.runs.len() {
            return None;
        }
        let (gap, len) = read_run(self.runs, &mut self.idx);
        let start = self.anchor + gap as i64;
        self.anchor = start + len as i64;
        Some((start, len))
    }
}

/// Iterator over the days of a [`DayList`].
#[derive(Debug, Clone)]
pub struct DayIter<'a> {
    walk: RunWalk<'a>,
    cur: i64,
    cur_left: u32,
    remaining: u32,
}

impl DayIter<'_> {
    fn load_next_run(&mut self) -> bool {
        match self.walk.next() {
            Some((start, len)) => {
                self.cur = start;
                self.cur_left = len;
                true
            }
            None => false,
        }
    }
}

impl Iterator for DayIter<'_> {
    type Item = Date;

    fn next(&mut self) -> Option<Date> {
        if self.remaining == 0 {
            return None;
        }
        if self.cur_left == 0 && !self.load_next_run() {
            self.remaining = 0;
            return None;
        }
        let day = Date::from_day_number(self.cur as i32);
        self.cur += 1;
        self.cur_left -= 1;
        self.remaining -= 1;
        Some(day)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for DayIter<'_> {}
impl std::iter::FusedIterator for DayIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn field(e: u32, p: u32) -> FieldId {
        FieldId::new(crate::ids::EntityId(e), crate::ids::PropertyId(p))
    }

    fn store_of(lists: &[(FieldId, Vec<i32>)]) -> DayListStore {
        let mut map = FxHashMap::default();
        for (f, days) in lists {
            map.insert(*f, days.iter().map(|&n| day(n)).collect());
        }
        DayListStore::from_field_days(map)
    }

    #[test]
    fn empty_store() {
        let store = DayListStore::from_field_days(FxHashMap::default());
        assert_eq!(store.num_fields(), 0);
        assert_eq!(store.total_days(), 0);
        assert!(store.get(field(0, 0)).is_none());
    }

    #[test]
    fn round_trips_simple_lists() {
        let store = store_of(&[
            (field(0, 0), vec![1, 2, 3, 10, 11, 40]),
            (field(0, 1), vec![5]),
            (field(1, 0), vec![0, 100, 200]),
        ]);
        assert_eq!(store.num_fields(), 3);
        assert_eq!(store.total_days(), 10);
        let l = store.get(field(0, 0)).unwrap();
        assert_eq!(l.len(), 6);
        assert_eq!(
            l.to_vec(),
            vec![day(1), day(2), day(3), day(10), day(11), day(40)]
        );
        assert_eq!(store.get(field(0, 1)).unwrap().to_vec(), vec![day(5)]);
        assert_eq!(
            store.get(field(1, 0)).unwrap().to_vec(),
            vec![day(0), day(100), day(200)]
        );
    }

    #[test]
    fn fields_are_sorted_and_positioned() {
        let store = store_of(&[
            (field(2, 0), vec![3]),
            (field(0, 5), vec![1]),
            (field(0, 1), vec![2]),
        ]);
        assert_eq!(store.fields(), &[field(0, 1), field(0, 5), field(2, 0)]);
        assert_eq!(store.position(field(0, 5)), Some(1));
        assert_eq!(store.field(2), field(2, 0));
        assert_eq!(store.position(field(9, 9)), None);
        let collected: Vec<FieldId> = store.iter().map(|(_, f, _)| f).collect();
        assert_eq!(collected, store.fields());
    }

    #[test]
    fn first_last_and_counts() {
        let store = store_of(&[(field(0, 0), vec![2, 3, 4, 9, 20, 21])]);
        let l = store.list(0);
        assert_eq!(l.first(), Some(day(2)));
        assert_eq!(l.last(), Some(day(21)));
        assert_eq!(l.count_before(day(2)), 0);
        assert_eq!(l.count_before(day(4)), 2);
        assert_eq!(l.count_before(day(10)), 4);
        assert_eq!(l.count_before(day(100)), 6);
        assert_eq!(l.last_before(day(2)), None);
        assert_eq!(l.last_before(day(9)), Some(day(4)));
        assert_eq!(l.last_before(day(21)), Some(day(20)));
        assert_eq!(l.last_before(day(500)), Some(day(21)));
        assert_eq!(DayList::EMPTY.first(), None);
        assert_eq!(DayList::EMPTY.last(), None);
        assert!(DayList::EMPTY.is_empty());
    }

    #[test]
    fn changed_in_windows() {
        let store = store_of(&[(field(0, 0), vec![5, 6, 7, 30])]);
        let l = store.list(0);
        assert!(l.changed_in(day(5), day(6)));
        assert!(l.changed_in(day(7), day(8)));
        assert!(l.changed_in(day(0), day(100)));
        assert!(l.changed_in(day(30), day(31)));
        assert!(!l.changed_in(day(8), day(30)));
        assert!(!l.changed_in(day(31), day(100)));
        assert!(!l.changed_in(day(6), day(6)));
    }

    #[test]
    fn iter_from_and_iter_in() {
        let store = store_of(&[(field(0, 0), vec![1, 2, 3, 10, 11, 40])]);
        let l = store.list(0);
        let from = |d: i32| l.iter_from(day(d)).collect::<Vec<_>>();
        assert_eq!(from(0), l.to_vec());
        assert_eq!(from(2), vec![day(2), day(3), day(10), day(11), day(40)]);
        assert_eq!(from(4), vec![day(10), day(11), day(40)]);
        assert_eq!(from(41), Vec::<Date>::new());
        let win: Vec<Date> = l.iter_in(DateRange::new(day(2), day(11))).collect();
        assert_eq!(win, vec![day(2), day(3), day(10)]);
        assert!(l.iter_in(DateRange::new(day(4), day(10))).next().is_none());
    }

    #[test]
    fn exact_size_iteration() {
        let store = store_of(&[(field(0, 0), vec![1, 2, 3, 50, 51])]);
        let l = store.list(0);
        let mut it = l.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        let rest: Vec<Date> = it.collect();
        assert_eq!(rest, vec![day(2), day(3), day(50), day(51)]);
        let mut from = l.iter_from(day(3));
        assert_eq!(from.len(), 3);
        from.next();
        assert_eq!(from.len(), 2);
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let store = store_of(&[(field(0, 0), vec![7, 9]), (field(0, 1), vec![1, 2, 3])]);
        let mut buf = Vec::new();
        assert_eq!(store.list(0).decode_into(&mut buf), &[day(7), day(9)]);
        assert_eq!(
            store.list(1).decode_into(&mut buf),
            &[day(1), day(2), day(3)]
        );
    }

    #[test]
    fn long_runs_split_into_continuation_words() {
        // 1000 consecutive days: needs ceil(1000/256) = 4 packed words.
        let days: Vec<i32> = (0..1000).collect();
        let store = store_of(&[(field(0, 0), days.clone())]);
        assert_eq!(store.runs.len(), 4);
        let l = store.list(0);
        assert_eq!(l.len(), 1000);
        let expected: Vec<Date> = days.iter().map(|&n| day(n)).collect();
        assert_eq!(l.to_vec(), expected);
        assert_eq!(l.count_before(day(500)), 500);
        assert_eq!(l.last_before(day(500)), Some(day(499)));
        assert_eq!(
            l.iter_from(day(998)).collect::<Vec<_>>(),
            vec![day(998), day(999)]
        );
    }

    #[test]
    fn huge_gaps_use_the_escape() {
        // A gap beyond the 24-bit packed limit forces the escape form.
        let days = vec![0, 20_000_000];
        let store = store_of(&[(field(0, 0), days)]);
        assert!(store.runs.contains(&ESCAPE));
        let l = store.list(0);
        assert_eq!(l.to_vec(), vec![day(0), day(20_000_000)]);
        assert_eq!(l.last_before(day(20_000_000)), Some(day(0)));
        assert_eq!(l.count_before(day(20_000_001)), 2);
        assert!(l.changed_in(day(19_999_999), day(20_000_001)));
        assert!(!l.changed_in(day(1), day(20_000_000)));
    }

    #[test]
    fn negative_days_round_trip() {
        let store = store_of(&[
            (field(0, 0), vec![-400, -399, -1]),
            (field(0, 1), vec![-5, 10]),
        ]);
        assert_eq!(store.list(0).to_vec(), vec![day(-400), day(-399), day(-1)]);
        assert_eq!(store.list(1).to_vec(), vec![day(-5), day(10)]);
    }

    #[test]
    fn memory_never_exceeds_decoded_baseline() {
        // Random-ish sparse lists: one packed word per isolated day is
        // the worst case, which matches the decoded 4 bytes/day without
        // the per-field vector headers.
        let lists: Vec<(FieldId, Vec<i32>)> = (0..50)
            .map(|i| {
                let days: Vec<i32> = (0..40).map(|k| k * (i + 2)).collect();
                (field(i as u32, 0), days)
            })
            .collect();
        let store = store_of(&lists);
        assert!(store.runs.len() * 4 <= store.total_days() * 4);
        assert!(store.heap_bytes() > 0);
        assert!(store.runs.len() * 4 < store.decoded_baseline_bytes());
    }

    mod props {
        use super::*;

        /// Strictly increasing day lists with adversarial gaps: dense
        /// runs, isolated days, and jumps beyond the 24-bit packed-gap
        /// and 256-day run-length boundaries. Each step is a (kind, raw)
        /// pair mapped to one of four gap classes.
        fn day_list_strategy() -> impl Strategy<Value = Vec<i32>> {
            (
                -50_000i32..50_000,
                proptest::collection::vec((0u8..4, 0i64..64), 0..40),
            )
                .prop_map(|(start, steps)| {
                    let mut d = start as i64;
                    let mut out = vec![start];
                    for (kind, raw) in steps {
                        let step = match kind {
                            0 => 1,                      // extend a run
                            1 => 1 + raw % 3,            // small gaps
                            2 => 250 + raw % 50,         // straddle run-length chunking
                            _ => 0xFF_FFF0 + raw % 0x20, // straddle the packed-gap limit
                        };
                        d += step;
                        if d > i32::MAX as i64 / 2 {
                            break;
                        }
                        out.push(d as i32);
                    }
                    out
                })
        }

        proptest! {
            /// encode → decode is the identity for any sorted day set.
            #[test]
            fn prop_round_trip(lists in proptest::collection::vec(day_list_strategy(), 1..8)) {
                let named: Vec<(FieldId, Vec<i32>)> = lists
                    .into_iter()
                    .enumerate()
                    .map(|(i, l)| (field(i as u32, i as u32 % 3), l))
                    .collect();
                let store = store_of(&named);
                for (f, days) in &named {
                    let expected: Vec<Date> = days.iter().map(|&n| day(n)).collect();
                    let l = store.get(*f).unwrap();
                    prop_assert_eq!(l.len(), expected.len());
                    prop_assert_eq!(l.to_vec(), expected.clone());
                    prop_assert_eq!(l.first(), expected.first().copied());
                    prop_assert_eq!(l.last(), expected.last().copied());
                }
            }

            /// Every navigation helper agrees with the decoded slice.
            #[test]
            fn prop_navigation_matches_decoded(days in day_list_strategy(), probe in -60_000i32..60_000) {
                let store = store_of(&[(field(0, 0), days.clone())]);
                let l = store.list(0);
                let decoded: Vec<i32> = days;
                let p = day(probe);
                let before: Vec<i32> = decoded.iter().copied().filter(|&d| d < probe).collect();
                prop_assert_eq!(l.count_before(p), before.len());
                prop_assert_eq!(l.last_before(p), before.last().map(|&n| day(n)));
                let after: Vec<Date> =
                    decoded.iter().copied().filter(|&d| d >= probe).map(day).collect();
                prop_assert_eq!(l.iter_from(p).collect::<Vec<_>>(), after);
                let end = p + 30;
                let range = DateRange::new(p, end);
                let inside: Vec<Date> = decoded
                    .iter()
                    .copied()
                    .map(day)
                    .filter(|&d| range.contains(d))
                    .collect();
                prop_assert_eq!(l.changed_in(p, end), !inside.is_empty());
                prop_assert_eq!(l.iter_in(range).collect::<Vec<_>>(), inside);
            }
        }
    }
}
