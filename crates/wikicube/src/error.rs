//! Error type shared by the cube container and its persistence layer.

use std::fmt;
use std::io;

/// Errors produced while building, reading, or writing change cubes.
#[derive(Debug)]
pub enum CubeError {
    /// An I/O error from the persistence layer.
    Io(io::Error),
    /// The on-disk data did not start with the expected magic bytes.
    BadMagic,
    /// The on-disk format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The on-disk data is structurally invalid.
    Corrupt(String),
    /// An id referenced a dimension entry that does not exist.
    DanglingId(String),
    /// The data ends before a section is complete — the signature of a
    /// truncated download or a partially written file.
    Truncated {
        /// Section being read when the data ran out.
        section: &'static str,
        /// Bytes the section still needed.
        need: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// A stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Section whose checksum failed (`"file"` for the trailing
        /// whole-file checksum).
        section: &'static str,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed from the payload.
        computed: u32,
    },
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Io(e) => write!(f, "i/o error: {e}"),
            CubeError::BadMagic => f.write_str("not a wikicube file (bad magic)"),
            CubeError::UnsupportedVersion(v) => {
                write!(f, "unsupported wikicube format version {v}")
            }
            CubeError::Corrupt(msg) => write!(f, "corrupt wikicube data: {msg}"),
            CubeError::DanglingId(msg) => write!(f, "dangling id: {msg}"),
            CubeError::Truncated { section, need, got } => write!(
                f,
                "truncated wikicube data in section {section}: need {need} bytes, {got} remain"
            ),
            CubeError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CubeError {
    fn from(e: io::Error) -> CubeError {
        CubeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CubeError::BadMagic.to_string().contains("magic"));
        assert!(CubeError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CubeError::Corrupt("x".into()).to_string().contains('x'));
        let truncated = CubeError::Truncated {
            section: "changes",
            need: 18,
            got: 3,
        };
        assert!(truncated.to_string().contains("changes"));
        assert!(truncated.to_string().contains("18"));
        let mismatch = CubeError::ChecksumMismatch {
            section: "file",
            stored: 1,
            computed: 2,
        };
        assert!(mismatch.to_string().contains("file"));
        assert!(mismatch.to_string().contains("checksum"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        use std::error::Error;
        let e: CubeError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
