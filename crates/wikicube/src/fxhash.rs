//! A fast, non-cryptographic hasher for hot id-keyed maps.
//!
//! This is the FxHash algorithm used throughout `rustc` (multiply-rotate
//! over machine words). The change-cube code paths hash millions of dense
//! `u32` ids while building indices and transactions; SipHash's HashDoS
//! protection is unnecessary there because keys come from our own interner,
//! never from an adversary. Implemented locally to keep the dependency set
//! to the approved offline list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: one `u64` word mixed per write.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"stale"), hash_of(&"stale"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that mixing happens.
        let h: FxHashSet<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(h.len(), 1000);
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Streams that differ only in the unaligned tail must differ.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9]), hash_of(&[0u8; 8]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("population_est", 1);
        m.insert("pop_est_as_of", 2);
        assert_eq!(m.get("population_est"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
