//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for persistence
//! checksums.
//!
//! The build environment cannot fetch crates, so this is a standard
//! table-driven implementation: 8 lookup tables generated at first use
//! (slicing-by-8), processing eight input bytes per iteration. That is
//! comfortably faster than the I/O it guards and needs no unsafe code.
//!
//! ```
//! use wikistale_wikicube::crc32::{crc32, Crc32};
//!
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
//! let mut hasher = Crc32::new();
//! hasher.update(b"1234");
//! hasher.update(b"56789");
//! assert_eq!(hasher.finalize(), crc32(b"123456789"));
//! ```

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        for slice in 1..8 {
            for i in 0..256 {
                let prev = t[slice - 1][i];
                t[slice][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib `crc32` function.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_007).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 8, 9, 5_000, 10_006, 10_007] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"wikistale cube payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
