//! Corpus statistics over a change cube.
//!
//! These are the quantities §4 of the paper reports about its dataset
//! (change-kind mix, bot reverts, same-day duplicate rate, field change
//! counts); the `dataset_stats` experiment binary prints them next to the
//! paper's numbers.

use crate::change::ChangeKind;
use crate::cube::ChangeCube;
use crate::date::DateRange;
use crate::fxhash::FxHashMap;
use crate::ids::FieldId;

/// Aggregate statistics of one cube snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total number of changes.
    pub total_changes: usize,
    /// Changes by kind: `[creates, updates, deletes]`.
    pub by_kind: [usize; 3],
    /// Changes flagged as bot-reverted.
    pub bot_reverted: usize,
    /// Changes that share field *and* day with an earlier change. Cube
    /// construction canonicalizes such writes away (last value wins), so
    /// this is 0 for any constructor-built cube; a nonzero value flags a
    /// change table that bypassed canonicalization.
    pub same_day_duplicates: usize,
    /// Number of distinct fields with at least one change.
    pub distinct_fields: usize,
    /// Number of distinct fields with fewer than `min_changes_threshold`
    /// changes.
    pub fields_below_min_changes: usize,
    /// Changes belonging to fields with fewer than `min_changes_threshold`
    /// changes.
    pub changes_in_sparse_fields: usize,
    /// The threshold used for the two sparse-field statistics (the paper
    /// uses 5).
    pub min_changes_threshold: usize,
    /// Distinct entities with at least one change.
    pub active_entities: usize,
    /// Distinct templates with at least one change.
    pub active_templates: usize,
    /// Day span covered, if any change exists.
    pub time_span: Option<DateRange>,
}

impl CorpusStats {
    /// Compute statistics with the paper's min-change threshold of 5.
    pub fn compute(cube: &ChangeCube) -> CorpusStats {
        CorpusStats::compute_with_threshold(cube, 5)
    }

    /// Compute statistics, counting fields with fewer than `min_changes`
    /// changes as sparse.
    pub fn compute_with_threshold(cube: &ChangeCube, min_changes: usize) -> CorpusStats {
        let mut by_kind = [0usize; 3];
        let mut bot_reverted = 0usize;
        let mut per_field: FxHashMap<FieldId, usize> = FxHashMap::default();
        let mut same_day_duplicates = 0usize;
        // Changes are (day, entity, property)-sorted, so same-day duplicates
        // of one field are adjacent.
        let mut prev: Option<(FieldId, crate::date::Date)> = None;
        let mut active_entities = crate::fxhash::FxHashSet::default();
        let mut active_templates = crate::fxhash::FxHashSet::default();
        for c in cube.iter_changes() {
            by_kind[c.kind as usize] += 1;
            if c.flags.is_bot_reverted() {
                bot_reverted += 1;
            }
            let key = (c.field(), c.day);
            if prev == Some(key) {
                same_day_duplicates += 1;
            }
            prev = Some(key);
            *per_field.entry(c.field()).or_insert(0) += 1;
            active_entities.insert(c.entity);
            active_templates.insert(cube.template_of(c.entity));
        }
        let fields_below_min_changes = per_field.values().filter(|&&n| n < min_changes).count();
        let changes_in_sparse_fields = per_field
            .values()
            .filter(|&&n| n < min_changes)
            .sum::<usize>();
        CorpusStats {
            total_changes: cube.num_changes(),
            by_kind,
            bot_reverted,
            same_day_duplicates,
            distinct_fields: per_field.len(),
            fields_below_min_changes,
            changes_in_sparse_fields,
            min_changes_threshold: min_changes,
            active_entities: active_entities.len(),
            active_templates: active_templates.len(),
            time_span: cube.time_span(),
        }
    }

    /// Creations as a fraction of all changes (paper: 50.6 % of raw data).
    pub fn create_fraction(&self) -> f64 {
        fraction(
            self.by_kind[ChangeKind::Create as usize],
            self.total_changes,
        )
    }

    /// Deletions as a fraction of all changes (paper: 20.3 % of raw data).
    pub fn delete_fraction(&self) -> f64 {
        fraction(
            self.by_kind[ChangeKind::Delete as usize],
            self.total_changes,
        )
    }

    /// Bot-reverted changes as a fraction of all changes (paper: 0.008 %).
    pub fn bot_reverted_fraction(&self) -> f64 {
        fraction(self.bot_reverted, self.total_changes)
    }

    /// Same-day duplicate changes as a fraction of all changes.
    pub fn same_day_duplicate_fraction(&self) -> f64 {
        fraction(self.same_day_duplicates, self.total_changes)
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeFlags;
    use crate::cube::ChangeCubeBuilder;
    use crate::date::Date;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    #[test]
    fn counts_kinds_flags_and_duplicates() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        let q = b.property("q");
        b.change(day(1), e, p, "a", ChangeKind::Create);
        b.change(day(2), e, p, "b", ChangeKind::Update);
        // Same-day duplicate: collapsed to the later value by cube
        // canonicalization, so it never reaches the statistics.
        b.change(day(2), e, p, "c", ChangeKind::Update);
        b.change(day(2), e, q, "x", ChangeKind::Update); // different field, same day
        b.change_full(
            day(3),
            e,
            p,
            "d",
            ChangeKind::Delete,
            ChangeFlags::BOT_REVERTED,
        );
        let stats = CorpusStats::compute(&b.finish());
        assert_eq!(stats.total_changes, 4);
        assert_eq!(stats.by_kind, [1, 2, 1]);
        assert_eq!(stats.bot_reverted, 1);
        assert_eq!(stats.same_day_duplicates, 0);
        assert_eq!(stats.distinct_fields, 2);
        assert_eq!(stats.active_entities, 1);
        assert_eq!(stats.active_templates, 1);
        assert!((stats.create_fraction() - 0.25).abs() < 1e-12);
        assert!((stats.delete_fraction() - 0.25).abs() < 1e-12);
        assert!((stats.bot_reverted_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sparse_field_accounting() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let busy = b.property("busy");
        let quiet = b.property("quiet");
        for d in 0..6 {
            b.change(day(d), e, busy, "v", ChangeKind::Update);
        }
        b.change(day(0), e, quiet, "v", ChangeKind::Update);
        let stats = CorpusStats::compute(&b.finish());
        assert_eq!(stats.distinct_fields, 2);
        assert_eq!(stats.fields_below_min_changes, 1);
        assert_eq!(stats.changes_in_sparse_fields, 1);
        assert_eq!(stats.min_changes_threshold, 5);
        let relaxed = CorpusStats::compute_with_threshold(&b_cube_for_threshold_test(), 1);
        assert_eq!(relaxed.fields_below_min_changes, 0);
    }

    fn b_cube_for_threshold_test() -> crate::cube::ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("E", "t", "P");
        let p = b.property("p");
        b.change(day(0), e, p, "v", ChangeKind::Update);
        b.finish()
    }

    #[test]
    fn empty_cube_stats() {
        let stats = CorpusStats::compute(&ChangeCubeBuilder::new().finish());
        assert_eq!(stats.total_changes, 0);
        assert_eq!(stats.create_fraction(), 0.0);
        assert!(stats.time_span.is_none());
    }
}
