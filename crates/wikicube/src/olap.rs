//! Exploration queries over the change cube.
//!
//! The change cube of Bleifuß et al. (PVLDB 2018) is an analysis
//! structure, not just storage: "exploring change" means rolling the
//! change set up along its dimensions. This module provides the rollups
//! the `wikistale` tooling (and a curious analyst) needs: counts grouped
//! by time bucket, template, property, page, or change kind, with
//! range/kind filtering and top-k helpers.
//!
//! ```
//! use wikistale_wikicube::{olap::CubeQuery, ChangeCubeBuilder, ChangeKind, Date};
//!
//! let mut b = ChangeCubeBuilder::new();
//! let e = b.entity("London", "infobox settlement", "London");
//! let p = b.property("population_est");
//! b.change(Date::EPOCH, e, p, "8M", ChangeKind::Update);
//! b.change(Date::EPOCH + 400, e, p, "9M", ChangeKind::Update);
//! let cube = b.finish();
//!
//! let per_year = CubeQuery::new(&cube).counts_by_time_bucket(365);
//! assert_eq!(per_year.len(), 2);
//! ```

use crate::change::ChangeKind;
use crate::cube::ChangeCube;
use crate::date::{Date, DateRange};
use crate::fxhash::FxHashMap;
use crate::ids::{PageId, PropertyId, TemplateId};

/// A filtered view over a cube's changes, ready to roll up.
#[derive(Clone, Copy)]
pub struct CubeQuery<'a> {
    cube: &'a ChangeCube,
    range: Option<DateRange>,
    kind: Option<ChangeKind>,
}

impl<'a> CubeQuery<'a> {
    /// Query over all changes of `cube`.
    pub fn new(cube: &'a ChangeCube) -> CubeQuery<'a> {
        CubeQuery {
            cube,
            range: None,
            kind: None,
        }
    }

    /// Restrict to changes whose day lies in `range`.
    pub fn in_range(mut self, range: DateRange) -> CubeQuery<'a> {
        self.range = Some(range);
        self
    }

    /// Restrict to one change kind.
    pub fn of_kind(mut self, kind: ChangeKind) -> CubeQuery<'a> {
        self.kind = Some(kind);
        self
    }

    fn changes(&self) -> impl Iterator<Item = crate::change::Change> + 'a {
        let iter = match self.range {
            Some(range) => self.cube.changes_in(range),
            None => self.cube.iter_changes(),
        };
        let kind = self.kind;
        iter.filter(move |c| kind.is_none_or(|k| c.kind == k))
    }

    /// Number of changes matching the filters.
    pub fn count(&self) -> usize {
        self.changes().count()
    }

    /// Counts per `bucket_days`-sized time bucket. Buckets are anchored at
    /// the first matching change; empty buckets are included so the result
    /// is a dense series `(bucket start, count)`.
    pub fn counts_by_time_bucket(&self, bucket_days: u32) -> Vec<(Date, u64)> {
        assert!(bucket_days > 0, "bucket size must be positive");
        let mut iter = self.changes().peekable();
        let Some(first) = iter.peek() else {
            return Vec::new();
        };
        let origin = first.day;
        let mut counts: Vec<(Date, u64)> = Vec::new();
        for c in iter {
            let bucket = (c.day - origin) as u32 / bucket_days;
            while counts.len() <= bucket as usize {
                let start = origin + (counts.len() as u32 * bucket_days) as i32;
                counts.push((start, 0));
            }
            counts[bucket as usize].1 += 1;
        }
        counts
    }

    /// Counts per template, unsorted.
    pub fn counts_by_template(&self) -> FxHashMap<TemplateId, u64> {
        let mut counts = FxHashMap::default();
        for c in self.changes() {
            *counts.entry(self.cube.template_of(c.entity)).or_insert(0) += 1;
        }
        counts
    }

    /// Counts per property, unsorted.
    pub fn counts_by_property(&self) -> FxHashMap<PropertyId, u64> {
        let mut counts = FxHashMap::default();
        for c in self.changes() {
            *counts.entry(c.property).or_insert(0) += 1;
        }
        counts
    }

    /// Counts per page, unsorted.
    pub fn counts_by_page(&self) -> FxHashMap<PageId, u64> {
        let mut counts = FxHashMap::default();
        for c in self.changes() {
            *counts.entry(self.cube.page_of(c.entity)).or_insert(0) += 1;
        }
        counts
    }

    /// Counts per change kind as `[creates, updates, deletes]`.
    pub fn counts_by_kind(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for c in self.changes() {
            counts[c.kind as usize] += 1;
        }
        counts
    }
}

/// The `k` highest-count entries of a rollup, ties broken by key for
/// determinism.
pub fn top_k<K: Copy + Ord>(counts: &FxHashMap<K, u64>, k: usize) -> Vec<(K, u64)> {
    let mut entries: Vec<(K, u64)> = counts.iter().map(|(&key, &n)| (key, n)).collect();
    entries.sort_unstable_by_key(|&(key, n)| (std::cmp::Reverse(n), key));
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ChangeCubeBuilder;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let london = b.entity("London", "infobox settlement", "London");
        let paris = b.entity("Paris", "infobox settlement", "Paris");
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let pop = b.property("population");
        let wins = b.property("wins");
        b.change(day(0), london, pop, "1", ChangeKind::Create);
        b.change(day(10), london, pop, "2", ChangeKind::Update);
        b.change(day(40), paris, pop, "3", ChangeKind::Update);
        b.change(day(70), ali, wins, "4", ChangeKind::Update);
        b.change(day(71), ali, wins, "", ChangeKind::Delete);
        b.finish()
    }

    #[test]
    fn count_with_filters() {
        let cube = cube();
        assert_eq!(CubeQuery::new(&cube).count(), 5);
        assert_eq!(CubeQuery::new(&cube).of_kind(ChangeKind::Update).count(), 3);
        assert_eq!(
            CubeQuery::new(&cube)
                .in_range(DateRange::new(day(5), day(50)))
                .count(),
            2
        );
        assert_eq!(
            CubeQuery::new(&cube)
                .in_range(DateRange::new(day(5), day(50)))
                .of_kind(ChangeKind::Delete)
                .count(),
            0
        );
    }

    #[test]
    fn time_buckets_are_dense() {
        let cube = cube();
        let buckets = CubeQuery::new(&cube).counts_by_time_bucket(30);
        // Days 0,10 → bucket 0; 40 → bucket 1; 70,71 → bucket 2.
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (day(0), 2));
        assert_eq!(buckets[1], (day(30), 1));
        assert_eq!(buckets[2], (day(60), 2));
        // Empty cube → empty series.
        let empty = ChangeCubeBuilder::new().finish();
        assert!(CubeQuery::new(&empty).counts_by_time_bucket(7).is_empty());
    }

    #[test]
    fn rollups_by_dimension() {
        let cube = cube();
        let q = CubeQuery::new(&cube);
        let by_template = q.counts_by_template();
        let settlement = cube.template_id("infobox settlement").unwrap();
        let boxer = cube.template_id("infobox boxer").unwrap();
        assert_eq!(by_template[&settlement], 3);
        assert_eq!(by_template[&boxer], 2);

        let by_property = q.counts_by_property();
        assert_eq!(by_property[&cube.property_id("population").unwrap()], 3);

        let by_page = q.counts_by_page();
        assert_eq!(by_page[&cube.page_id("London").unwrap()], 2);

        assert_eq!(q.counts_by_kind(), [1, 3, 1]);
    }

    #[test]
    fn top_k_is_deterministic() {
        let cube = cube();
        let by_template = CubeQuery::new(&cube).counts_by_template();
        let top = top_k(&by_template, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(cube.template_name(top[0].0), "infobox settlement");
        // k larger than the universe returns everything, ordered.
        let all = top_k(&by_template, 10);
        assert_eq!(all.len(), 2);
        assert!(all[0].1 >= all[1].1);
    }
}
