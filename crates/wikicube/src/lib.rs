//! # wikistale-wikicube
//!
//! The *change-cube* substrate used by the `wikistale` system, modelled after
//! Bleifuß et al., "Exploring Change: A New Dimension of Data Analytics"
//! (PVLDB 2018), as employed by Barth et al., "Detecting Stale Data in
//! Wikipedia Infoboxes" (EDBT 2023).
//!
//! A change cube records every change to every Wikipedia infobox as a tuple
//! of four dimensions:
//!
//! * **time** — the civil day the change happened ([`Date`]),
//! * **entity** — the infobox the change belongs to ([`EntityId`]),
//! * **property** — the infobox attribute that changed ([`PropertyId`]),
//! * **value** — the newly assigned value ([`ValueId`]).
//!
//! In addition each entity belongs to exactly one *template*
//! ([`TemplateId`]), which defines the shared property schema of a group of
//! infoboxes, and lives on exactly one *page* ([`PageId`]). The combination
//! of entity and property is called a *field* ([`FieldId`]); fields are the
//! unit on which staleness predictions are made.
//!
//! The crate provides:
//!
//! * [`date`] — allocation-free proleptic-Gregorian day arithmetic,
//! * [`ids`] — dense `u32` newtype identifiers for every dimension,
//! * [`intern`] — string interning so the cube stores ids, not strings,
//! * [`fxhash`] — a fast non-cryptographic hasher for hot id-keyed maps,
//! * [`change`] — the [`Change`] record and its [`ChangeKind`],
//! * [`cube`] — the [`ChangeCube`] container (columnar, struct-of-arrays
//!   change table) and its builder,
//! * [`daylist`] — shared, delta-encoded per-field day lists
//!   ([`DayListStore`]), built once and reused by every stage,
//! * [`index`] — derived access paths (field → change days, page → fields,
//!   template → entities/properties) in compressed-sparse-row layout,
//! * [`binio`] — a versioned, checksummed binary persistence format
//!   with atomic writes,
//! * [`crc32`] — the CRC-32 implementation backing those checksums,
//! * [`stats`] — corpus statistics used by the dataset experiments.
//!
//! ## Example
//!
//! ```
//! use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, Date};
//!
//! let mut b = ChangeCubeBuilder::new();
//! let infobox = b.entity("Premier League", "infobox football league", "Premier League");
//! let champions = b.property("current_champions");
//! b.change(
//!     Date::from_ymd(2019, 5, 12).unwrap(),
//!     infobox,
//!     champions,
//!     "Manchester City",
//!     ChangeKind::Update,
//! );
//! let cube = b.finish();
//! assert_eq!(cube.num_changes(), 1);
//! assert_eq!(cube.num_entities(), 1);
//! ```

pub mod binio;
pub mod change;
pub mod crc32;
pub mod cube;
pub mod date;
pub mod daylist;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod index;
pub mod intern;
pub mod olap;
pub mod ops;
pub mod stats;

pub use change::{Change, ChangeFlags, ChangeKind};
pub use cube::{ChangeColumns, ChangeCube, ChangeCubeBuilder, Changes, EntityMeta};
pub use date::{Date, DateRange, Weekday};
pub use daylist::{DayList, DayListStore};
pub use error::CubeError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{EntityId, FieldId, PageId, PropertyId, TemplateId, ValueId};
pub use index::CubeIndex;
pub use intern::Interner;
pub use ops::{merge, slice};
pub use stats::CorpusStats;
