//! The [`ChangeCube`] container and its builder.

use crate::change::{Change, ChangeFlags, ChangeKind};
use crate::date::{Date, DateRange};
use crate::daylist::DayListStore;
use crate::error::CubeError;
use crate::ids::{EntityId, PageId, PropertyId, TemplateId, ValueId};
use crate::intern::Interner;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Per-entity metadata: every infobox belongs to exactly one template and
/// lives on exactly one page (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EntityMeta {
    /// The infobox template defining the entity's schema.
    pub template: TemplateId,
    /// The page the infobox appears on.
    pub page: PageId,
}

/// Struct-of-arrays change table: one column per [`Change`] component,
/// all the same length, in canonical `(day, entity, property)` order.
///
/// Columnar storage keeps each scan's working set to the columns it
/// actually reads (a day-range probe touches only the 4-byte day column
/// instead of dragging 20-byte rows through cache) and drops the 2 bytes
/// of padding per change the row layout paid for alignment.
#[derive(Debug, Clone, Default)]
pub struct ChangeColumns {
    days: Vec<Date>,
    entities: Vec<EntityId>,
    properties: Vec<PropertyId>,
    values: Vec<ValueId>,
    kinds: Vec<ChangeKind>,
    flags: Vec<ChangeFlags>,
}

impl ChangeColumns {
    /// Split a row table into columns. The rows must already be in
    /// canonical order.
    fn from_rows(rows: &[Change]) -> ChangeColumns {
        let mut cols = ChangeColumns {
            days: Vec::with_capacity(rows.len()),
            entities: Vec::with_capacity(rows.len()),
            properties: Vec::with_capacity(rows.len()),
            values: Vec::with_capacity(rows.len()),
            kinds: Vec::with_capacity(rows.len()),
            flags: Vec::with_capacity(rows.len()),
        };
        for c in rows {
            cols.push(*c);
        }
        cols
    }

    fn push(&mut self, c: Change) {
        self.days.push(c.day);
        self.entities.push(c.entity);
        self.properties.push(c.property);
        self.values.push(c.value);
        self.kinds.push(c.kind);
        self.flags.push(c.flags);
    }

    /// Give back the growth slack of incrementally built columns. Cubes
    /// are immutable once constructed, so there is nothing to grow into.
    fn shrink_to_fit(&mut self) {
        self.days.shrink_to_fit();
        self.entities.shrink_to_fit();
        self.properties.shrink_to_fit();
        self.values.shrink_to_fit();
        self.kinds.shrink_to_fit();
        self.flags.shrink_to_fit();
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The day column.
    pub fn days(&self) -> &[Date] {
        &self.days
    }

    /// The entity column.
    pub fn entities(&self) -> &[EntityId] {
        &self.entities
    }

    /// The property column.
    pub fn properties(&self) -> &[PropertyId] {
        &self.properties
    }

    /// The value column.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// The change-kind column.
    pub fn kinds(&self) -> &[ChangeKind] {
        &self.kinds
    }

    /// The flag column.
    pub fn flags(&self) -> &[ChangeFlags] {
        &self.flags
    }

    /// Materialize the change at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Change {
        Change {
            day: self.days[i],
            entity: self.entities[i],
            property: self.properties[i],
            value: self.values[i],
            kind: self.kinds[i],
            flags: self.flags[i],
        }
    }

    /// Heap bytes held by the six column vectors (18 per change; the row
    /// layout's `Vec<Change>` pays `size_of::<Change>()` = 20).
    pub fn heap_bytes(&self) -> usize {
        self.days.capacity() * std::mem::size_of::<Date>()
            + self.entities.capacity() * std::mem::size_of::<EntityId>()
            + self.properties.capacity() * std::mem::size_of::<PropertyId>()
            + self.values.capacity() * std::mem::size_of::<ValueId>()
            + self.kinds.capacity()
            + self.flags.capacity()
    }
}

/// Double-ended, exact-size iterator materializing [`Change`]s on demand
/// from a [`ChangeColumns`] row range.
#[derive(Debug, Clone)]
pub struct Changes<'a> {
    cols: &'a ChangeColumns,
    range: Range<usize>,
}

impl Iterator for Changes<'_> {
    type Item = Change;

    #[inline]
    fn next(&mut self) -> Option<Change> {
        self.range.next().map(|i| self.cols.get(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for Changes<'_> {
    fn next_back(&mut self) -> Option<Change> {
        self.range.next_back().map(|i| self.cols.get(i))
    }
}

impl ExactSizeIterator for Changes<'_> {}
impl std::iter::FusedIterator for Changes<'_> {}

/// An immutable, canonically-ordered collection of infobox changes together
/// with the dimension tables (interners) its ids refer to.
///
/// The change table is columnar (see [`ChangeColumns`]), sorted by
/// `(day, entity, property)` and holds at most one change per key: when
/// several same-day changes hit one (entity, property) slot, the last
/// value written wins (matching how an infobox read at end of day sees
/// only the final revision). Sorting makes time-range scans a binary
/// search plus a linear walk and lets the filter pipeline stream in one
/// pass. The cube also owns the canonical per-field day lists
/// ([`ChangeCube::day_lists`]), built lazily once and shared by the
/// index, the correlation search and the Apriori transaction builder.
#[derive(Debug, Clone, Default)]
pub struct ChangeCube {
    entities: Interner,
    properties: Interner,
    templates: Interner,
    pages: Interner,
    values: Interner,
    entity_meta: Vec<EntityMeta>,
    columns: ChangeColumns,
    day_store: OnceLock<Arc<DayListStore>>,
}

impl ChangeCube {
    /// Assemble a cube from already-built parts. Used by the builder and by
    /// the persistence layer; validates referential integrity and restores
    /// the canonical form (sorted, one change per `(day, entity, property)`
    /// with the last value winning).
    pub(crate) fn from_parts(
        entities: Interner,
        properties: Interner,
        templates: Interner,
        pages: Interner,
        values: Interner,
        entity_meta: Vec<EntityMeta>,
        mut changes: Vec<Change>,
    ) -> Result<ChangeCube, CubeError> {
        if entity_meta.len() != entities.len() {
            return Err(CubeError::Corrupt(format!(
                "{} entities but {} metadata rows",
                entities.len(),
                entity_meta.len()
            )));
        }
        for (i, meta) in entity_meta.iter().enumerate() {
            if meta.template.index() >= templates.len() {
                return Err(CubeError::DanglingId(format!(
                    "entity {i} references template {}",
                    meta.template
                )));
            }
            if meta.page.index() >= pages.len() {
                return Err(CubeError::DanglingId(format!(
                    "entity {i} references page {}",
                    meta.page
                )));
            }
        }
        for c in &changes {
            if c.entity.index() >= entities.len() {
                return Err(CubeError::DanglingId(format!("change entity {}", c.entity)));
            }
            if c.property.index() >= properties.len() {
                return Err(CubeError::DanglingId(format!(
                    "change property {}",
                    c.property
                )));
            }
            if c.value.index() >= values.len() {
                return Err(CubeError::DanglingId(format!("change value {}", c.value)));
            }
        }
        if !changes.is_sorted_by_key(|c| c.sort_key()) {
            // Stable, so same-key changes keep their input order and the
            // last-wins dedup below resolves to the latest write.
            changes = stable_sort_changes(changes);
        }
        changes.dedup_by(|cur, prev| {
            if cur.sort_key() == prev.sort_key() {
                *prev = *cur;
                true
            } else {
                false
            }
        });
        Ok(ChangeCube {
            entities,
            properties,
            templates,
            pages,
            values,
            entity_meta,
            columns: ChangeColumns::from_rows(&changes),
            day_store: OnceLock::new(),
        })
    }

    /// The columnar change table, in canonical order.
    pub fn columns(&self) -> &ChangeColumns {
        &self.columns
    }

    /// Iterate all changes in canonical `(day, entity, property)` order,
    /// materializing each [`Change`] from the columns on demand.
    pub fn iter_changes(&self) -> Changes<'_> {
        Changes {
            cols: &self.columns,
            range: 0..self.columns.len(),
        }
    }

    /// Materialize the change at row `i` of the canonical order.
    pub fn change_at(&self, i: usize) -> Change {
        self.columns.get(i)
    }

    /// Collect all changes into a row vector (test and interop helper;
    /// hot paths should iterate or use the columns directly).
    pub fn changes_vec(&self) -> Vec<Change> {
        self.iter_changes().collect()
    }

    /// Number of changes.
    pub fn num_changes(&self) -> usize {
        self.columns.len()
    }

    /// Number of distinct entities (infoboxes).
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct property names.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Number of distinct templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Number of distinct pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of distinct interned values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The template an entity belongs to.
    pub fn template_of(&self, entity: EntityId) -> TemplateId {
        self.entity_meta[entity.index()].template
    }

    /// The page an entity lives on.
    pub fn page_of(&self, entity: EntityId) -> PageId {
        self.entity_meta[entity.index()].page
    }

    /// Per-entity metadata table, indexed by [`EntityId`].
    pub fn entity_meta(&self) -> &[EntityMeta] {
        &self.entity_meta
    }

    /// Resolve an entity id to its name.
    pub fn entity_name(&self, id: EntityId) -> &str {
        self.entities.resolve(id.0)
    }

    /// Resolve a property id to its name.
    pub fn property_name(&self, id: PropertyId) -> &str {
        self.properties.resolve(id.0)
    }

    /// Resolve a template id to its name.
    pub fn template_name(&self, id: TemplateId) -> &str {
        self.templates.resolve(id.0)
    }

    /// Resolve a page id to its title.
    pub fn page_title(&self, id: PageId) -> &str {
        self.pages.resolve(id.0)
    }

    /// Resolve a value id to its text.
    pub fn value_text(&self, id: ValueId) -> &str {
        self.values.resolve(id.0)
    }

    /// Look up an entity by name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Look up a property by name.
    pub fn property_id(&self, name: &str) -> Option<PropertyId> {
        self.properties.get(name).map(PropertyId)
    }

    /// Look up a template by name.
    pub fn template_id(&self, name: &str) -> Option<TemplateId> {
        self.templates.get(name).map(TemplateId)
    }

    /// Look up a page by title.
    pub fn page_id(&self, title: &str) -> Option<PageId> {
        self.pages.get(title).map(PageId)
    }

    /// The entity-name interner (id-ordered).
    pub fn entities(&self) -> &Interner {
        &self.entities
    }

    /// The property-name interner (id-ordered).
    pub fn properties(&self) -> &Interner {
        &self.properties
    }

    /// The template-name interner (id-ordered).
    pub fn templates(&self) -> &Interner {
        &self.templates
    }

    /// The page-title interner (id-ordered).
    pub fn pages(&self) -> &Interner {
        &self.pages
    }

    /// The value interner (id-ordered).
    pub fn values(&self) -> &Interner {
        &self.values
    }

    /// Half-open day range `[first change day, last change day + 1)`, or
    /// `None` for an empty cube.
    pub fn time_span(&self) -> Option<DateRange> {
        match (self.columns.days.first(), self.columns.days.last()) {
            (Some(&first), Some(&last)) => Some(DateRange::new(first, last.plus_days(1))),
            _ => None,
        }
    }

    /// Row range of the changes whose day lies in `range`.
    ///
    /// O(log n) thanks to the canonical time-major ordering; only the
    /// 4-byte day column is probed.
    pub fn change_range(&self, range: DateRange) -> Range<usize> {
        let days = &self.columns.days;
        let lo = days.partition_point(|&d| d < range.start());
        let hi = days.partition_point(|&d| d < range.end());
        lo..hi
    }

    /// Iterate the changes whose day lies in `range`, in canonical order.
    pub fn changes_in(&self, range: DateRange) -> Changes<'_> {
        Changes {
            cols: &self.columns,
            range: self.change_range(range),
        }
    }

    /// The canonical per-field day lists: for every `(entity, property)`
    /// field, its strictly-increasing change days across **all** change
    /// kinds, delta-encoded (see [`DayListStore`]). Built lazily on first
    /// use and shared by `Arc` — the index, the Apriori transaction
    /// builder and the statistics all read this one copy instead of
    /// re-deriving day lists from the change table.
    pub fn day_lists(&self) -> &Arc<DayListStore> {
        self.day_store.get_or_init(|| {
            Arc::new(DayListStore::from_field_days(
                crate::daylist::collect_field_days(self, None),
            ))
        })
    }

    /// Heap bytes of the columnar change table.
    pub fn change_table_bytes(&self) -> usize {
        self.columns.heap_bytes()
    }

    /// Heap bytes the change table would occupy in the row layout this
    /// cube replaced (`Vec<Change>`, 20 bytes per change) — the baseline
    /// the pipeline benchmark compares against.
    pub fn row_layout_baseline_bytes(&self) -> usize {
        self.num_changes() * std::mem::size_of::<Change>()
    }

    /// A new cube over the same dimension tables keeping only changes for
    /// which `keep` returns `true`. This is the primitive the filter
    /// pipeline is built on; dimension tables are shared unchanged so ids
    /// remain stable across filtering.
    pub fn retain_changes(&self, mut keep: impl FnMut(&Change) -> bool) -> ChangeCube {
        let mut columns = ChangeColumns::default();
        for c in self.iter_changes() {
            if keep(&c) {
                columns.push(c);
            }
        }
        columns.shrink_to_fit();
        ChangeCube {
            entities: self.entities.clone(),
            properties: self.properties.clone(),
            templates: self.templates.clone(),
            pages: self.pages.clone(),
            values: self.values.clone(),
            entity_meta: self.entity_meta.clone(),
            columns,
            day_store: OnceLock::new(),
        }
    }

    /// A new cube over the same dimension tables with `changes` as the
    /// change table (re-sorted and same-day duplicates collapsed if
    /// needed). Ids must refer to this cube's tables.
    pub fn with_changes(&self, changes: Vec<Change>) -> Result<ChangeCube, CubeError> {
        ChangeCube::from_parts(
            self.entities.clone(),
            self.properties.clone(),
            self.templates.clone(),
            self.pages.clone(),
            self.values.clone(),
            self.entity_meta.clone(),
            changes,
        )
    }
}

/// Incremental constructor for [`ChangeCube`]s.
///
/// The builder interns strings on the fly, enforces the one-template /
/// one-page invariant per entity, and sorts the change table once on
/// [`ChangeCubeBuilder::finish`].
#[derive(Debug, Default)]
pub struct ChangeCubeBuilder {
    entities: Interner,
    properties: Interner,
    templates: Interner,
    pages: Interner,
    values: Interner,
    entity_meta: Vec<EntityMeta>,
    changes: Vec<Change>,
}

impl ChangeCubeBuilder {
    /// Create an empty builder.
    pub fn new() -> ChangeCubeBuilder {
        ChangeCubeBuilder::default()
    }

    /// Pre-reserve space for `n` changes.
    pub fn reserve_changes(&mut self, n: usize) {
        self.changes.reserve(n);
    }

    /// Register (or look up) the entity `name` belonging to `template` on
    /// `page`.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different template
    /// or page: each infobox belongs to exactly one of each.
    pub fn entity(&mut self, name: &str, template: &str, page: &str) -> EntityId {
        let template = TemplateId(self.templates.intern(template));
        let page = PageId(self.pages.intern(page));
        let id = self.entities.intern(name);
        let meta = EntityMeta { template, page };
        if let Some(existing) = self.entity_meta.get(id as usize) {
            assert_eq!(
                *existing, meta,
                "entity {name:?} re-registered with different template or page"
            );
        } else {
            self.entity_meta.push(meta);
        }
        EntityId(id)
    }

    /// Register (or look up) a property name.
    pub fn property(&mut self, name: &str) -> PropertyId {
        PropertyId(self.properties.intern(name))
    }

    /// Record an update change. Convenience wrapper around
    /// [`ChangeCubeBuilder::change_full`].
    pub fn change(
        &mut self,
        day: Date,
        entity: EntityId,
        property: PropertyId,
        value: &str,
        kind: ChangeKind,
    ) -> &mut Self {
        self.change_full(day, entity, property, value, kind, ChangeFlags::NONE)
    }

    /// Record a change with explicit flags.
    ///
    /// # Panics
    /// Panics if `entity` was not registered via
    /// [`ChangeCubeBuilder::entity`].
    pub fn change_full(
        &mut self,
        day: Date,
        entity: EntityId,
        property: PropertyId,
        value: &str,
        kind: ChangeKind,
        flags: ChangeFlags,
    ) -> &mut Self {
        assert!(
            entity.index() < self.entity_meta.len(),
            "change references unregistered entity {entity}"
        );
        assert!(
            property.index() < self.properties.len(),
            "change references unregistered property {property}"
        );
        let value = ValueId(self.values.intern(value));
        self.changes.push(Change {
            day,
            entity,
            property,
            value,
            kind,
            flags,
        });
        self
    }

    /// Number of changes recorded so far.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// The (template, page) membership an already-registered entity name
    /// has, if any — lets callers check consistency without triggering the
    /// panic in [`ChangeCubeBuilder::entity`].
    pub fn entity_membership(&self, name: &str) -> Option<(&str, &str)> {
        let id = self.entities.get(name)?;
        let meta = self.entity_meta[id as usize];
        Some((
            self.templates.resolve(meta.template.0),
            self.pages.resolve(meta.page.0),
        ))
    }

    /// Finalize into an immutable, canonically-ordered cube.
    pub fn finish(self) -> ChangeCube {
        ChangeCube::from_parts(
            self.entities,
            self.properties,
            self.templates,
            self.pages,
            self.values,
            self.entity_meta,
            self.changes,
        )
        .unwrap_or_else(|e| panic!("builder maintains referential integrity: {e}"))
    }
}

/// Changes per sort chunk. Large enough that chunk sort dominates the
/// serial k-way merge; small enough for stealing to balance skewed data.
const SORT_CHUNK: usize = 32_768;

/// Stable sort by [`Change::sort_key`]: fixed contiguous chunks are sorted
/// in parallel, then k-way merged with ties broken by chunk index.
///
/// Because chunks are contiguous input ranges taken in order, "smaller
/// chunk index" equals "earlier original position" for equal keys, so the
/// merge reproduces a global stable sort exactly — for any chunk size and
/// any worker count. That is what keeps the last-wins dedup in
/// [`ChangeCube::from_parts`] independent of `--threads`.
fn stable_sort_changes(mut changes: Vec<Change>) -> Vec<Change> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if wikistale_exec::threads() <= 1 || changes.len() <= wikistale_exec::chunk_size(SORT_CHUNK) {
        changes.sort_by_key(|c| c.sort_key());
        return changes;
    }
    let sorted_chunks: Vec<Vec<Change>> =
        wikistale_exec::par_ranges("cube_sort", changes.len(), SORT_CHUNK, |range| {
            let mut part = changes[range].to_vec();
            part.sort_by_key(|c| c.sort_key());
            part
        });

    let mut heap = BinaryHeap::with_capacity(sorted_chunks.len());
    for (idx, chunk) in sorted_chunks.iter().enumerate() {
        if let Some(first) = chunk.first() {
            heap.push(Reverse((first.sort_key(), idx)));
        }
    }
    let mut merged = Vec::with_capacity(changes.len());
    let mut cursors = vec![0usize; sorted_chunks.len()];
    while let Some(Reverse((_, idx))) = heap.pop() {
        let chunk = &sorted_chunks[idx];
        merged.push(chunk[cursors[idx]]);
        cursors[idx] += 1;
        if let Some(next) = chunk.get(cursors[idx]) {
            heap.push(Reverse((next.sort_key(), idx)));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FieldId;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn small_cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let boxer = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let city = b.entity("London", "infobox settlement", "London");
        let wins = b.property("wins");
        let ko = b.property("ko");
        let pop = b.property("population_est");
        b.change(day(10), boxer, wins, "56", ChangeKind::Update);
        b.change(day(10), boxer, ko, "37", ChangeKind::Update);
        b.change(day(5), city, pop, "8,900,000", ChangeKind::Update);
        b.change(day(20), city, pop, "9,000,000", ChangeKind::Update);
        b.finish()
    }

    #[test]
    fn builder_produces_sorted_cube() {
        let cube = small_cube();
        assert_eq!(cube.num_changes(), 4);
        let keys: Vec<_> = cube.iter_changes().map(|c| c.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(cube.change_at(0).day, day(5));
    }

    #[test]
    fn columns_match_materialized_rows() {
        let cube = small_cube();
        let cols = cube.columns();
        assert_eq!(cols.len(), cube.num_changes());
        assert!(!cols.is_empty());
        for (i, c) in cube.iter_changes().enumerate() {
            assert_eq!(cols.days()[i], c.day);
            assert_eq!(cols.entities()[i], c.entity);
            assert_eq!(cols.properties()[i], c.property);
            assert_eq!(cols.values()[i], c.value);
            assert_eq!(cols.kinds()[i], c.kind);
            assert_eq!(cols.flags()[i], c.flags);
            assert_eq!(cols.get(i), c);
        }
    }

    #[test]
    fn iterator_is_double_ended_and_exact_size() {
        let cube = small_cube();
        let mut it = cube.iter_changes();
        assert_eq!(it.len(), 4);
        let first = it.next().unwrap();
        let last = it.next_back().unwrap();
        assert_eq!(it.len(), 2);
        assert_eq!(first, cube.change_at(0));
        assert_eq!(last, cube.change_at(3));
        let rev: Vec<Change> = cube.iter_changes().rev().collect();
        let mut fwd = cube.changes_vec();
        fwd.reverse();
        assert_eq!(rev, fwd);
    }

    #[test]
    fn columnar_table_is_smaller_than_row_layout() {
        let cube = small_cube();
        // 18 bytes/change in columns vs 20 in Vec<Change>.
        assert!(cube.change_table_bytes() < cube.row_layout_baseline_bytes());
    }

    #[test]
    fn day_lists_cover_all_kinds_once_per_day() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let p = b.property("wins");
        b.change(day(1), e, p, "1", ChangeKind::Create);
        b.change(day(2), e, p, "2", ChangeKind::Update);
        b.change(day(4), e, p, "", ChangeKind::Delete);
        let cube = b.finish();
        let store = cube.day_lists();
        let list = store.get(FieldId::new(e, p)).unwrap();
        assert_eq!(list.to_vec(), vec![day(1), day(2), day(4)]);
        // Shared: a second call returns the same Arc allocation.
        assert!(Arc::ptr_eq(cube.day_lists(), store));
    }

    #[test]
    fn dimension_lookups() {
        let cube = small_cube();
        assert_eq!(cube.num_entities(), 2);
        assert_eq!(cube.num_properties(), 3);
        assert_eq!(cube.num_templates(), 2);
        assert_eq!(cube.num_pages(), 2);
        let ali = cube.entity_id("Ali").unwrap();
        assert_eq!(cube.entity_name(ali), "Ali");
        assert_eq!(cube.template_name(cube.template_of(ali)), "infobox boxer");
        assert_eq!(cube.page_title(cube.page_of(ali)), "Muhammad Ali");
        assert_eq!(
            cube.property_id("wins").map(|p| cube.property_name(p)),
            Some("wins")
        );
        assert!(cube.entity_id("nobody").is_none());
        assert!(cube.template_id("infobox boxer").is_some());
        assert!(cube.page_id("London").is_some());
    }

    #[test]
    fn values_are_interned_and_resolvable() {
        let cube = small_cube();
        let c = cube.iter_changes().find(|c| c.day == day(20)).unwrap();
        assert_eq!(cube.value_text(c.value), "9,000,000");
        assert_eq!(cube.num_values(), 4);
    }

    #[test]
    fn time_span_and_range_scan() {
        let cube = small_cube();
        let span = cube.time_span().unwrap();
        assert_eq!(span.start(), day(5));
        assert_eq!(span.end(), day(21));
        assert_eq!(cube.changes_in(DateRange::new(day(5), day(11))).len(), 3);
        assert_eq!(cube.changes_in(DateRange::new(day(6), day(10))).len(), 0);
        assert_eq!(cube.changes_in(DateRange::new(day(0), day(100))).len(), 4);
        assert_eq!(cube.change_range(DateRange::new(day(5), day(11))), 0..3);
        let empty = ChangeCubeBuilder::new().finish();
        assert!(empty.time_span().is_none());
    }

    #[test]
    fn retain_changes_keeps_dimensions() {
        let cube = small_cube();
        let only_pop = cube.retain_changes(|c| cube.property_name(c.property) == "population_est");
        assert_eq!(only_pop.num_changes(), 2);
        assert_eq!(only_pop.num_entities(), cube.num_entities());
        assert_eq!(only_pop.num_properties(), cube.num_properties());
    }

    #[test]
    fn with_changes_re_sorts() {
        let cube = small_cube();
        let mut reversed: Vec<Change> = cube.changes_vec();
        reversed.reverse();
        let rebuilt = cube.with_changes(reversed).unwrap();
        assert_eq!(rebuilt.changes_vec(), cube.changes_vec());
    }

    #[test]
    fn same_day_same_slot_keeps_last_value() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let p = b.property("wins");
        b.change(day(10), e, p, "55", ChangeKind::Create);
        b.change(day(10), e, p, "56", ChangeKind::Update);
        b.change(day(11), e, p, "57", ChangeKind::Update);
        let cube = b.finish();
        assert_eq!(cube.num_changes(), 2);
        assert_eq!(cube.value_text(cube.change_at(0).value), "56");
        assert_eq!(cube.change_at(0).kind, ChangeKind::Update);
        assert_eq!(cube.value_text(cube.change_at(1).value), "57");
    }

    #[test]
    fn dedup_is_stable_under_unsorted_input() {
        // Feed with_changes an unsorted table containing a duplicate key;
        // the stable sort must preserve write order within the key so the
        // later write survives.
        let cube = small_cube();
        let mut changes = cube.changes_vec();
        let mut dup = changes[2];
        dup.value = changes[3].value; // different value, same key as [2]
        changes.insert(3, dup);
        changes.reverse();
        let rebuilt = cube.with_changes(changes).unwrap();
        assert_eq!(rebuilt.num_changes(), cube.num_changes());
        // Reversing flipped the write order of the duplicate pair, so the
        // original write (now last) wins.
        let survivor = rebuilt
            .iter_changes()
            .find(|c| c.sort_key() == cube.change_at(2).sort_key())
            .unwrap();
        assert_eq!(survivor.value, cube.change_at(2).value);
    }

    #[test]
    fn entity_reregistration_is_idempotent() {
        let mut b = ChangeCubeBuilder::new();
        let a = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let again = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        assert_eq!(a, again);
    }

    #[test]
    #[should_panic(expected = "different template")]
    fn entity_reregistration_with_new_template_panics() {
        let mut b = ChangeCubeBuilder::new();
        b.entity("Ali", "infobox boxer", "Muhammad Ali");
        b.entity("Ali", "infobox settlement", "Muhammad Ali");
    }

    #[test]
    #[should_panic(expected = "unregistered entity")]
    fn change_for_unknown_entity_panics() {
        let mut b = ChangeCubeBuilder::new();
        let p = b.property("wins");
        b.change(day(0), EntityId(7), p, "1", ChangeKind::Update);
    }

    #[test]
    fn from_parts_rejects_dangling_ids() {
        let cube = small_cube();
        let mut bad = cube.changes_vec();
        bad[0].entity = EntityId(99);
        assert!(matches!(
            cube.with_changes(bad),
            Err(CubeError::DanglingId(_))
        ));
    }
}
