//! The [`ChangeCube`] container and its builder.

use crate::change::{Change, ChangeFlags, ChangeKind};
use crate::date::{Date, DateRange};
use crate::error::CubeError;
use crate::ids::{EntityId, PageId, PropertyId, TemplateId, ValueId};
use crate::intern::Interner;

/// Per-entity metadata: every infobox belongs to exactly one template and
/// lives on exactly one page (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EntityMeta {
    /// The infobox template defining the entity's schema.
    pub template: TemplateId,
    /// The page the infobox appears on.
    pub page: PageId,
}

/// An immutable, canonically-ordered collection of infobox changes together
/// with the dimension tables (interners) its ids refer to.
///
/// The change table is sorted by `(day, entity, property)` and holds at
/// most one change per key: when several same-day changes hit one
/// (entity, property) slot, the last value written wins (matching how an
/// infobox read at end of day sees only the final revision). Sorting makes
/// time-range scans a binary search plus a linear walk and lets the filter
/// pipeline stream in one pass.
#[derive(Debug, Clone, Default)]
pub struct ChangeCube {
    entities: Interner,
    properties: Interner,
    templates: Interner,
    pages: Interner,
    values: Interner,
    entity_meta: Vec<EntityMeta>,
    changes: Vec<Change>,
}

impl ChangeCube {
    /// Assemble a cube from already-built parts. Used by the builder and by
    /// the persistence layer; validates referential integrity and restores
    /// the canonical form (sorted, one change per `(day, entity, property)`
    /// with the last value winning).
    pub(crate) fn from_parts(
        entities: Interner,
        properties: Interner,
        templates: Interner,
        pages: Interner,
        values: Interner,
        entity_meta: Vec<EntityMeta>,
        mut changes: Vec<Change>,
    ) -> Result<ChangeCube, CubeError> {
        if entity_meta.len() != entities.len() {
            return Err(CubeError::Corrupt(format!(
                "{} entities but {} metadata rows",
                entities.len(),
                entity_meta.len()
            )));
        }
        for (i, meta) in entity_meta.iter().enumerate() {
            if meta.template.index() >= templates.len() {
                return Err(CubeError::DanglingId(format!(
                    "entity {i} references template {}",
                    meta.template
                )));
            }
            if meta.page.index() >= pages.len() {
                return Err(CubeError::DanglingId(format!(
                    "entity {i} references page {}",
                    meta.page
                )));
            }
        }
        for c in &changes {
            if c.entity.index() >= entities.len() {
                return Err(CubeError::DanglingId(format!("change entity {}", c.entity)));
            }
            if c.property.index() >= properties.len() {
                return Err(CubeError::DanglingId(format!(
                    "change property {}",
                    c.property
                )));
            }
            if c.value.index() >= values.len() {
                return Err(CubeError::DanglingId(format!("change value {}", c.value)));
            }
        }
        if !changes.is_sorted_by_key(|c| c.sort_key()) {
            // Stable, so same-key changes keep their input order and the
            // last-wins dedup below resolves to the latest write.
            changes = stable_sort_changes(changes);
        }
        changes.dedup_by(|cur, prev| {
            if cur.sort_key() == prev.sort_key() {
                *prev = *cur;
                true
            } else {
                false
            }
        });
        Ok(ChangeCube {
            entities,
            properties,
            templates,
            pages,
            values,
            entity_meta,
            changes,
        })
    }

    /// All changes in canonical `(day, entity, property)` order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Number of changes.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// Number of distinct entities (infoboxes).
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct property names.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Number of distinct templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Number of distinct pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of distinct interned values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The template an entity belongs to.
    pub fn template_of(&self, entity: EntityId) -> TemplateId {
        self.entity_meta[entity.index()].template
    }

    /// The page an entity lives on.
    pub fn page_of(&self, entity: EntityId) -> PageId {
        self.entity_meta[entity.index()].page
    }

    /// Per-entity metadata table, indexed by [`EntityId`].
    pub fn entity_meta(&self) -> &[EntityMeta] {
        &self.entity_meta
    }

    /// Resolve an entity id to its name.
    pub fn entity_name(&self, id: EntityId) -> &str {
        self.entities.resolve(id.0)
    }

    /// Resolve a property id to its name.
    pub fn property_name(&self, id: PropertyId) -> &str {
        self.properties.resolve(id.0)
    }

    /// Resolve a template id to its name.
    pub fn template_name(&self, id: TemplateId) -> &str {
        self.templates.resolve(id.0)
    }

    /// Resolve a page id to its title.
    pub fn page_title(&self, id: PageId) -> &str {
        self.pages.resolve(id.0)
    }

    /// Resolve a value id to its text.
    pub fn value_text(&self, id: ValueId) -> &str {
        self.values.resolve(id.0)
    }

    /// Look up an entity by name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Look up a property by name.
    pub fn property_id(&self, name: &str) -> Option<PropertyId> {
        self.properties.get(name).map(PropertyId)
    }

    /// Look up a template by name.
    pub fn template_id(&self, name: &str) -> Option<TemplateId> {
        self.templates.get(name).map(TemplateId)
    }

    /// Look up a page by title.
    pub fn page_id(&self, title: &str) -> Option<PageId> {
        self.pages.get(title).map(PageId)
    }

    /// The entity-name interner (id-ordered).
    pub fn entities(&self) -> &Interner {
        &self.entities
    }

    /// The property-name interner (id-ordered).
    pub fn properties(&self) -> &Interner {
        &self.properties
    }

    /// The template-name interner (id-ordered).
    pub fn templates(&self) -> &Interner {
        &self.templates
    }

    /// The page-title interner (id-ordered).
    pub fn pages(&self) -> &Interner {
        &self.pages
    }

    /// The value interner (id-ordered).
    pub fn values(&self) -> &Interner {
        &self.values
    }

    /// Half-open day range `[first change day, last change day + 1)`, or
    /// `None` for an empty cube.
    pub fn time_span(&self) -> Option<DateRange> {
        let first = self.changes.first()?.day;
        let last = self.changes.last().expect("non-empty").day;
        Some(DateRange::new(first, last.plus_days(1)))
    }

    /// The contiguous slice of changes whose day lies in `range`.
    ///
    /// O(log n) thanks to the canonical time-major ordering.
    pub fn changes_in(&self, range: DateRange) -> &[Change] {
        let lo = self.changes.partition_point(|c| c.day < range.start());
        let hi = self.changes.partition_point(|c| c.day < range.end());
        &self.changes[lo..hi]
    }

    /// A new cube over the same dimension tables keeping only changes for
    /// which `keep` returns `true`. This is the primitive the filter
    /// pipeline is built on; dimension tables are shared unchanged so ids
    /// remain stable across filtering.
    pub fn retain_changes(&self, mut keep: impl FnMut(&Change) -> bool) -> ChangeCube {
        let changes = self.changes.iter().copied().filter(|c| keep(c)).collect();
        ChangeCube {
            changes,
            ..self.clone()
        }
    }

    /// A new cube over the same dimension tables with `changes` as the
    /// change table (re-sorted and same-day duplicates collapsed if
    /// needed). Ids must refer to this cube's tables.
    pub fn with_changes(&self, changes: Vec<Change>) -> Result<ChangeCube, CubeError> {
        ChangeCube::from_parts(
            self.entities.clone(),
            self.properties.clone(),
            self.templates.clone(),
            self.pages.clone(),
            self.values.clone(),
            self.entity_meta.clone(),
            changes,
        )
    }
}

/// Incremental constructor for [`ChangeCube`]s.
///
/// The builder interns strings on the fly, enforces the one-template /
/// one-page invariant per entity, and sorts the change table once on
/// [`ChangeCubeBuilder::finish`].
#[derive(Debug, Default)]
pub struct ChangeCubeBuilder {
    entities: Interner,
    properties: Interner,
    templates: Interner,
    pages: Interner,
    values: Interner,
    entity_meta: Vec<EntityMeta>,
    changes: Vec<Change>,
}

impl ChangeCubeBuilder {
    /// Create an empty builder.
    pub fn new() -> ChangeCubeBuilder {
        ChangeCubeBuilder::default()
    }

    /// Pre-reserve space for `n` changes.
    pub fn reserve_changes(&mut self, n: usize) {
        self.changes.reserve(n);
    }

    /// Register (or look up) the entity `name` belonging to `template` on
    /// `page`.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different template
    /// or page: each infobox belongs to exactly one of each.
    pub fn entity(&mut self, name: &str, template: &str, page: &str) -> EntityId {
        let template = TemplateId(self.templates.intern(template));
        let page = PageId(self.pages.intern(page));
        let id = self.entities.intern(name);
        let meta = EntityMeta { template, page };
        if let Some(existing) = self.entity_meta.get(id as usize) {
            assert_eq!(
                *existing, meta,
                "entity {name:?} re-registered with different template or page"
            );
        } else {
            self.entity_meta.push(meta);
        }
        EntityId(id)
    }

    /// Register (or look up) a property name.
    pub fn property(&mut self, name: &str) -> PropertyId {
        PropertyId(self.properties.intern(name))
    }

    /// Record an update change. Convenience wrapper around
    /// [`ChangeCubeBuilder::change_full`].
    pub fn change(
        &mut self,
        day: Date,
        entity: EntityId,
        property: PropertyId,
        value: &str,
        kind: ChangeKind,
    ) -> &mut Self {
        self.change_full(day, entity, property, value, kind, ChangeFlags::NONE)
    }

    /// Record a change with explicit flags.
    ///
    /// # Panics
    /// Panics if `entity` was not registered via
    /// [`ChangeCubeBuilder::entity`].
    pub fn change_full(
        &mut self,
        day: Date,
        entity: EntityId,
        property: PropertyId,
        value: &str,
        kind: ChangeKind,
        flags: ChangeFlags,
    ) -> &mut Self {
        assert!(
            entity.index() < self.entity_meta.len(),
            "change references unregistered entity {entity}"
        );
        assert!(
            property.index() < self.properties.len(),
            "change references unregistered property {property}"
        );
        let value = ValueId(self.values.intern(value));
        self.changes.push(Change {
            day,
            entity,
            property,
            value,
            kind,
            flags,
        });
        self
    }

    /// Number of changes recorded so far.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// The (template, page) membership an already-registered entity name
    /// has, if any — lets callers check consistency without triggering the
    /// panic in [`ChangeCubeBuilder::entity`].
    pub fn entity_membership(&self, name: &str) -> Option<(&str, &str)> {
        let id = self.entities.get(name)?;
        let meta = self.entity_meta[id as usize];
        Some((
            self.templates.resolve(meta.template.0),
            self.pages.resolve(meta.page.0),
        ))
    }

    /// Finalize into an immutable, canonically-ordered cube.
    pub fn finish(self) -> ChangeCube {
        ChangeCube::from_parts(
            self.entities,
            self.properties,
            self.templates,
            self.pages,
            self.values,
            self.entity_meta,
            self.changes,
        )
        .expect("builder maintains referential integrity")
    }
}

/// Changes per sort chunk. Large enough that chunk sort dominates the
/// serial k-way merge; small enough for stealing to balance skewed data.
const SORT_CHUNK: usize = 32_768;

/// Stable sort by [`Change::sort_key`]: fixed contiguous chunks are sorted
/// in parallel, then k-way merged with ties broken by chunk index.
///
/// Because chunks are contiguous input ranges taken in order, "smaller
/// chunk index" equals "earlier original position" for equal keys, so the
/// merge reproduces a global stable sort exactly — for any chunk size and
/// any worker count. That is what keeps the last-wins dedup in
/// [`ChangeCube::from_parts`] independent of `--threads`.
fn stable_sort_changes(mut changes: Vec<Change>) -> Vec<Change> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if wikistale_exec::threads() <= 1 || changes.len() <= wikistale_exec::chunk_size(SORT_CHUNK) {
        changes.sort_by_key(|c| c.sort_key());
        return changes;
    }
    let sorted_chunks: Vec<Vec<Change>> =
        wikistale_exec::par_ranges("cube_sort", changes.len(), SORT_CHUNK, |range| {
            let mut part = changes[range].to_vec();
            part.sort_by_key(|c| c.sort_key());
            part
        });

    let mut heap = BinaryHeap::with_capacity(sorted_chunks.len());
    for (idx, chunk) in sorted_chunks.iter().enumerate() {
        if let Some(first) = chunk.first() {
            heap.push(Reverse((first.sort_key(), idx)));
        }
    }
    let mut merged = Vec::with_capacity(changes.len());
    let mut cursors = vec![0usize; sorted_chunks.len()];
    while let Some(Reverse((_, idx))) = heap.pop() {
        let chunk = &sorted_chunks[idx];
        merged.push(chunk[cursors[idx]]);
        cursors[idx] += 1;
        if let Some(next) = chunk.get(cursors[idx]) {
            heap.push(Reverse((next.sort_key(), idx)));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn small_cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let boxer = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let city = b.entity("London", "infobox settlement", "London");
        let wins = b.property("wins");
        let ko = b.property("ko");
        let pop = b.property("population_est");
        b.change(day(10), boxer, wins, "56", ChangeKind::Update);
        b.change(day(10), boxer, ko, "37", ChangeKind::Update);
        b.change(day(5), city, pop, "8,900,000", ChangeKind::Update);
        b.change(day(20), city, pop, "9,000,000", ChangeKind::Update);
        b.finish()
    }

    #[test]
    fn builder_produces_sorted_cube() {
        let cube = small_cube();
        assert_eq!(cube.num_changes(), 4);
        let keys: Vec<_> = cube.changes().iter().map(|c| c.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(cube.changes()[0].day, day(5));
    }

    #[test]
    fn dimension_lookups() {
        let cube = small_cube();
        assert_eq!(cube.num_entities(), 2);
        assert_eq!(cube.num_properties(), 3);
        assert_eq!(cube.num_templates(), 2);
        assert_eq!(cube.num_pages(), 2);
        let ali = cube.entity_id("Ali").unwrap();
        assert_eq!(cube.entity_name(ali), "Ali");
        assert_eq!(cube.template_name(cube.template_of(ali)), "infobox boxer");
        assert_eq!(cube.page_title(cube.page_of(ali)), "Muhammad Ali");
        assert_eq!(
            cube.property_id("wins").map(|p| cube.property_name(p)),
            Some("wins")
        );
        assert!(cube.entity_id("nobody").is_none());
        assert!(cube.template_id("infobox boxer").is_some());
        assert!(cube.page_id("London").is_some());
    }

    #[test]
    fn values_are_interned_and_resolvable() {
        let cube = small_cube();
        let c = cube
            .changes()
            .iter()
            .find(|c| c.day == day(20))
            .copied()
            .unwrap();
        assert_eq!(cube.value_text(c.value), "9,000,000");
        assert_eq!(cube.num_values(), 4);
    }

    #[test]
    fn time_span_and_range_scan() {
        let cube = small_cube();
        let span = cube.time_span().unwrap();
        assert_eq!(span.start(), day(5));
        assert_eq!(span.end(), day(21));
        assert_eq!(cube.changes_in(DateRange::new(day(5), day(11))).len(), 3);
        assert_eq!(cube.changes_in(DateRange::new(day(6), day(10))).len(), 0);
        assert_eq!(cube.changes_in(DateRange::new(day(0), day(100))).len(), 4);
        let empty = ChangeCubeBuilder::new().finish();
        assert!(empty.time_span().is_none());
    }

    #[test]
    fn retain_changes_keeps_dimensions() {
        let cube = small_cube();
        let only_pop = cube.retain_changes(|c| cube.property_name(c.property) == "population_est");
        assert_eq!(only_pop.num_changes(), 2);
        assert_eq!(only_pop.num_entities(), cube.num_entities());
        assert_eq!(only_pop.num_properties(), cube.num_properties());
    }

    #[test]
    fn with_changes_re_sorts() {
        let cube = small_cube();
        let mut reversed: Vec<Change> = cube.changes().to_vec();
        reversed.reverse();
        let rebuilt = cube.with_changes(reversed).unwrap();
        assert_eq!(rebuilt.changes(), cube.changes());
    }

    #[test]
    fn same_day_same_slot_keeps_last_value() {
        let mut b = ChangeCubeBuilder::new();
        let e = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let p = b.property("wins");
        b.change(day(10), e, p, "55", ChangeKind::Create);
        b.change(day(10), e, p, "56", ChangeKind::Update);
        b.change(day(11), e, p, "57", ChangeKind::Update);
        let cube = b.finish();
        assert_eq!(cube.num_changes(), 2);
        assert_eq!(cube.value_text(cube.changes()[0].value), "56");
        assert_eq!(cube.changes()[0].kind, ChangeKind::Update);
        assert_eq!(cube.value_text(cube.changes()[1].value), "57");
    }

    #[test]
    fn dedup_is_stable_under_unsorted_input() {
        // Feed with_changes an unsorted table containing a duplicate key;
        // the stable sort must preserve write order within the key so the
        // later write survives.
        let cube = small_cube();
        let mut changes = cube.changes().to_vec();
        let mut dup = changes[2];
        dup.value = changes[3].value; // different value, same key as [2]
        changes.insert(3, dup);
        changes.reverse();
        let rebuilt = cube.with_changes(changes).unwrap();
        assert_eq!(rebuilt.num_changes(), cube.num_changes());
        // Reversing flipped the write order of the duplicate pair, so the
        // original write (now last) wins.
        let survivor = rebuilt
            .changes()
            .iter()
            .find(|c| c.sort_key() == cube.changes()[2].sort_key())
            .unwrap();
        assert_eq!(survivor.value, cube.changes()[2].value);
    }

    #[test]
    fn entity_reregistration_is_idempotent() {
        let mut b = ChangeCubeBuilder::new();
        let a = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let again = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        assert_eq!(a, again);
    }

    #[test]
    #[should_panic(expected = "different template")]
    fn entity_reregistration_with_new_template_panics() {
        let mut b = ChangeCubeBuilder::new();
        b.entity("Ali", "infobox boxer", "Muhammad Ali");
        b.entity("Ali", "infobox settlement", "Muhammad Ali");
    }

    #[test]
    #[should_panic(expected = "unregistered entity")]
    fn change_for_unknown_entity_panics() {
        let mut b = ChangeCubeBuilder::new();
        let p = b.property("wins");
        b.change(day(0), EntityId(7), p, "1", ChangeKind::Update);
    }

    #[test]
    fn from_parts_rejects_dangling_ids() {
        let cube = small_cube();
        let mut bad = cube.changes().to_vec();
        bad[0].entity = EntityId(99);
        assert!(matches!(
            cube.with_changes(bad),
            Err(CubeError::DanglingId(_))
        ));
    }
}
