//! Derived access paths over a [`ChangeCube`].
//!
//! The predictors need three views that the canonical time-major change
//! table does not give directly:
//!
//! * **field → change days** (field-correlation vectors, baselines),
//! * **page → fields** (the per-page correlation search of §3.2),
//! * **template → entities / properties** (transaction building of §3.3).
//!
//! The field → days view is the shared delta-encoded [`DayListStore`]:
//! when the index covers every change kind it borrows the cube's own
//! canonical store by `Arc` instead of re-deriving it, and the
//! kind-filtered view the predictors use is derived once here. Page and
//! template views are materialized in compressed-sparse-row layout.
//! Fields get a dense index (`usize` position in [`CubeIndex::fields`])
//! so downstream code can use plain vectors keyed by field position.

use crate::change::ChangeKind;
use crate::cube::ChangeCube;
use crate::date::Date;
use crate::daylist::{store_for_kinds, DayList, DayListStore};
use crate::ids::{EntityId, FieldId, PageId, PropertyId, TemplateId};
use std::sync::Arc;

/// CSR-layout index over a cube snapshot.
///
/// The index is a *snapshot*: it refers to the change table of the cube it
/// was built from and must be rebuilt after filtering.
#[derive(Debug, Clone)]
pub struct CubeIndex {
    /// Per-field day lists, shared with the cube when the index covers
    /// all change kinds. Also owns the sorted `fields` vector and the
    /// field → position map.
    store: Arc<DayListStore>,
    /// CSR page → field positions.
    page_offsets: Vec<u32>,
    page_fields: Vec<u32>,
    /// CSR template → entities (entities that have ≥ 1 change).
    template_entity_offsets: Vec<u32>,
    template_entities: Vec<EntityId>,
    /// CSR template → distinct changed properties.
    template_property_offsets: Vec<u32>,
    template_properties: Vec<PropertyId>,
}

impl CubeIndex {
    /// Build the index for `cube`, considering only changes of `kinds`
    /// (most callers want updates only — pass
    /// `&[ChangeKind::Update]` — but the dataset statistics want all).
    pub fn build_for_kinds(cube: &ChangeCube, kinds: &[ChangeKind]) -> CubeIndex {
        let all_kinds = [ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete]
            .iter()
            .all(|k| kinds.contains(k));
        let store = if all_kinds {
            // The cube's canonical day lists are exactly this view; share
            // the encoded store instead of rebuilding it.
            Arc::clone(cube.day_lists())
        } else {
            store_for_kinds(cube, kinds)
        };
        CubeIndex::from_store(cube, store)
    }

    /// Assemble the page and template CSR views around a day-list store.
    fn from_store(cube: &ChangeCube, store: Arc<DayListStore>) -> CubeIndex {
        // Page → fields. Fields are already entity-sorted, so pushing in
        // order keeps each page's field list sorted by position.
        let mut page_lists: Vec<Vec<u32>> = vec![Vec::new(); cube.num_pages()];
        for (pos, f) in store.fields().iter().enumerate() {
            page_lists[cube.page_of(f.entity).index()].push(pos as u32);
        }
        let (page_offsets, page_fields) = to_csr(page_lists);

        // Template → entities and → properties.
        let mut template_entity_lists: Vec<Vec<EntityId>> = vec![Vec::new(); cube.num_templates()];
        let mut template_property_lists: Vec<Vec<PropertyId>> =
            vec![Vec::new(); cube.num_templates()];
        let mut last_entity: Option<EntityId> = None;
        for f in store.fields() {
            let t = cube.template_of(f.entity).index();
            if last_entity != Some(f.entity) {
                template_entity_lists[t].push(f.entity);
                last_entity = Some(f.entity);
            }
            template_property_lists[t].push(f.property);
        }
        for props in &mut template_property_lists {
            props.sort_unstable();
            props.dedup();
        }
        let (template_entity_offsets, template_entities) = to_csr(template_entity_lists);
        let (template_property_offsets, template_properties) = to_csr(template_property_lists);

        CubeIndex {
            store,
            page_offsets,
            page_fields,
            template_entity_offsets,
            template_entities,
            template_property_offsets,
            template_properties,
        }
    }

    /// Build the index over update changes only (the predictors' view).
    pub fn build(cube: &ChangeCube) -> CubeIndex {
        CubeIndex::build_for_kinds(cube, &[ChangeKind::Update])
    }

    /// The underlying shared day-list store.
    pub fn day_lists(&self) -> &Arc<DayListStore> {
        &self.store
    }

    /// Number of indexed fields.
    pub fn num_fields(&self) -> usize {
        self.store.num_fields()
    }

    /// All indexed fields, sorted by `(entity, property)`.
    pub fn fields(&self) -> &[FieldId] {
        self.store.fields()
    }

    /// The field at dense position `pos`.
    pub fn field(&self, pos: usize) -> FieldId {
        self.store.field(pos)
    }

    /// Dense position of `field`, if it has any indexed change.
    pub fn position(&self, field: FieldId) -> Option<usize> {
        self.store.position(field)
    }

    /// Sorted change days of the field at `pos`, as a delta-encoded view.
    pub fn days(&self, pos: usize) -> DayList<'_> {
        self.store.list(pos)
    }

    /// Whether the field at `pos` changed on any day in `[start, end)`.
    pub fn changed_in(&self, pos: usize, start: Date, end: Date) -> bool {
        self.store.list(pos).changed_in(start, end)
    }

    /// Dense positions of all fields on `page`, ascending.
    pub fn fields_on_page(&self, page: PageId) -> &[u32] {
        let lo = self.page_offsets[page.index()] as usize;
        let hi = self.page_offsets[page.index() + 1] as usize;
        &self.page_fields[lo..hi]
    }

    /// Number of pages the index knows about (same as the cube's).
    pub fn num_pages(&self) -> usize {
        self.page_offsets.len() - 1
    }

    /// Entities of `template` that have at least one indexed change.
    pub fn entities_of_template(&self, template: TemplateId) -> &[EntityId] {
        let lo = self.template_entity_offsets[template.index()] as usize;
        let hi = self.template_entity_offsets[template.index() + 1] as usize;
        &self.template_entities[lo..hi]
    }

    /// Distinct changed properties of `template`, sorted.
    pub fn properties_of_template(&self, template: TemplateId) -> &[PropertyId] {
        let lo = self.template_property_offsets[template.index()] as usize;
        let hi = self.template_property_offsets[template.index() + 1] as usize;
        &self.template_properties[lo..hi]
    }

    /// Number of templates the index knows about (same as the cube's).
    pub fn num_templates(&self) -> usize {
        self.template_entity_offsets.len() - 1
    }

    /// Total number of indexed change days across all fields.
    pub fn total_days(&self) -> usize {
        self.store.total_days()
    }
}

/// Convert per-row lists into CSR `(offsets, data)`.
fn to_csr<T>(lists: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    let mut data = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    offsets.push(0u32);
    for list in lists {
        data.extend(list);
        offsets.push(data.len() as u32);
    }
    (offsets, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ChangeCubeBuilder;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let tyson = b.entity("Tyson", "infobox boxer", "Mike Tyson");
        let london = b.entity("London", "infobox settlement", "London");
        let wins = b.property("wins");
        let ko = b.property("ko");
        let pop = b.property("population_est");
        for d in [3, 1, 2] {
            b.change(day(d), ali, wins, "w", ChangeKind::Update);
        }
        b.change(day(1), ali, ko, "k", ChangeKind::Update);
        b.change(day(9), tyson, wins, "w", ChangeKind::Update);
        b.change(day(0), london, pop, "p", ChangeKind::Create);
        b.change(day(4), london, pop, "p2", ChangeKind::Update);
        b.change(day(8), london, pop, "", ChangeKind::Delete);
        b.finish()
    }

    #[test]
    fn fields_are_update_only_by_default() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        // Fields: Ali/wins, Ali/ko, Tyson/wins, London/pop → 4 fields.
        assert_eq!(idx.num_fields(), 4);
        let london = cube.entity_id("London").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        let pos = idx.position(FieldId::new(london, pop)).unwrap();
        // Only the update on day 4 is indexed; create/delete are not.
        assert_eq!(idx.days(pos).to_vec(), vec![day(4)]);
    }

    #[test]
    fn all_kinds_index_sees_creates_and_deletes() {
        let cube = cube();
        let idx = CubeIndex::build_for_kinds(
            &cube,
            &[ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete],
        );
        let london = cube.entity_id("London").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        let pos = idx.position(FieldId::new(london, pop)).unwrap();
        assert_eq!(idx.days(pos).to_vec(), vec![day(0), day(4), day(8)]);
    }

    #[test]
    fn all_kinds_index_shares_the_cube_store() {
        let cube = cube();
        let idx = CubeIndex::build_for_kinds(
            &cube,
            &[ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete],
        );
        assert!(Arc::ptr_eq(idx.day_lists(), cube.day_lists()));
        // The kind-filtered view is a distinct, smaller store.
        let update_only = CubeIndex::build(&cube);
        assert!(!Arc::ptr_eq(update_only.day_lists(), cube.day_lists()));
        assert!(update_only.total_days() < idx.total_days());
    }

    #[test]
    fn days_are_sorted_per_field() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let wins = cube.property_id("wins").unwrap();
        let pos = idx.position(FieldId::new(ali, wins)).unwrap();
        assert_eq!(idx.days(pos).to_vec(), vec![day(1), day(2), day(3)]);
        assert_eq!(idx.days(pos).last_before(day(3)), Some(day(2)));
        assert_eq!(idx.days(pos).count_before(day(3)), 2);
        assert_eq!(idx.days(pos).last_before(day(0)), None);
    }

    #[test]
    fn changed_in_half_open_window() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let wins = cube.property_id("wins").unwrap();
        let pos = idx.position(FieldId::new(ali, wins)).unwrap();
        assert!(idx.changed_in(pos, day(1), day(2)));
        assert!(idx.changed_in(pos, day(3), day(10)));
        assert!(!idx.changed_in(pos, day(4), day(10)));
        assert!(!idx.changed_in(pos, day(0), day(1)));
    }

    #[test]
    fn page_field_lists() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali_page = cube.page_id("Muhammad Ali").unwrap();
        let on_page = idx.fields_on_page(ali_page);
        assert_eq!(on_page.len(), 2);
        for &pos in on_page {
            assert_eq!(
                idx.field(pos as usize).entity,
                cube.entity_id("Ali").unwrap()
            );
        }
        assert_eq!(idx.num_pages(), 3);
    }

    #[test]
    fn template_views() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let boxer = cube.template_id("infobox boxer").unwrap();
        let entities = idx.entities_of_template(boxer);
        assert_eq!(entities.len(), 2);
        let props = idx.properties_of_template(boxer);
        assert_eq!(props.len(), 2); // wins, ko (deduplicated across entities)
        let settlement = cube.template_id("infobox settlement").unwrap();
        assert_eq!(idx.properties_of_template(settlement).len(), 1);
        assert_eq!(idx.num_templates(), 2);
    }

    #[test]
    fn unknown_field_has_no_position() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        assert_eq!(idx.position(FieldId::new(ali, pop)), None);
    }

    #[test]
    fn empty_cube_yields_empty_index() {
        let cube = ChangeCubeBuilder::new().finish();
        let idx = CubeIndex::build(&cube);
        assert_eq!(idx.num_fields(), 0);
        assert_eq!(idx.total_days(), 0);
        assert_eq!(idx.num_pages(), 0);
        assert_eq!(idx.num_templates(), 0);
    }
}
