//! Derived access paths over a [`ChangeCube`].
//!
//! The predictors need three views that the canonical time-major change
//! table does not give directly:
//!
//! * **field → change days** (field-correlation vectors, baselines),
//! * **page → fields** (the per-page correlation search of §3.2),
//! * **template → entities / properties** (transaction building of §3.3).
//!
//! [`CubeIndex`] materializes all three in compressed-sparse-row layout.
//! Fields get a dense index (`usize` position in [`CubeIndex::fields`]) so
//! downstream code can use plain vectors keyed by field position.

use crate::change::ChangeKind;
use crate::cube::ChangeCube;
use crate::date::Date;
use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, FieldId, PageId, PropertyId, TemplateId};

/// CSR-layout index over a cube snapshot.
///
/// The index is a *snapshot*: it refers to the change table of the cube it
/// was built from and must be rebuilt after filtering.
#[derive(Debug, Clone)]
pub struct CubeIndex {
    /// All distinct fields with at least one change, sorted by
    /// `(entity, property)`.
    fields: Vec<FieldId>,
    /// Lookup from field id to its dense position in `fields`.
    field_pos: FxHashMap<FieldId, u32>,
    /// CSR offsets into `days`; `days[offsets[i]..offsets[i+1]]` are the
    /// change days of field `i`, sorted ascending (duplicates possible if
    /// the cube was not day-deduplicated).
    day_offsets: Vec<u32>,
    days: Vec<Date>,
    /// CSR page → field positions.
    page_offsets: Vec<u32>,
    page_fields: Vec<u32>,
    /// CSR template → entities (entities that have ≥ 1 change).
    template_entity_offsets: Vec<u32>,
    template_entities: Vec<EntityId>,
    /// CSR template → distinct changed properties.
    template_property_offsets: Vec<u32>,
    template_properties: Vec<PropertyId>,
}

impl CubeIndex {
    /// Build the index for `cube`, considering only changes of `kinds`
    /// (most callers want updates only — pass
    /// `&[ChangeKind::Update]` — but the dataset statistics want all).
    pub fn build_for_kinds(cube: &ChangeCube, kinds: &[ChangeKind]) -> CubeIndex {
        // Per-chunk field → days maps, merged by appending day lists in
        // chunk order. Chunks are contiguous ranges of the day-major
        // change table, so appended lists stay day-sorted; everything the
        // index exposes is keyed by the sorted `fields` vector below, so
        // hash-map iteration order never reaches the output.
        let chunk_maps: Vec<FxHashMap<FieldId, Vec<Date>>> =
            wikistale_exec::par_ranges("cube_index", cube.num_changes(), 16_384, |range| {
                let mut local: FxHashMap<FieldId, Vec<Date>> = FxHashMap::default();
                for c in &cube.changes()[range] {
                    if kinds.contains(&c.kind) {
                        local.entry(c.field()).or_default().push(c.day);
                    }
                }
                local
            });
        let mut per_field: FxHashMap<FieldId, Vec<Date>> = FxHashMap::default();
        for local in chunk_maps {
            for (field, mut field_days) in local {
                per_field.entry(field).or_default().append(&mut field_days);
            }
        }
        let mut fields: Vec<FieldId> = per_field.keys().copied().collect();
        fields.sort_unstable();

        let mut field_pos = FxHashMap::default();
        field_pos.reserve(fields.len());
        let mut day_offsets = Vec::with_capacity(fields.len() + 1);
        let mut days = Vec::new();
        day_offsets.push(0u32);
        for (pos, f) in fields.iter().enumerate() {
            field_pos.insert(*f, pos as u32);
            let mut d = per_field.remove(f).expect("field present");
            d.sort_unstable();
            days.extend_from_slice(&d);
            day_offsets.push(days.len() as u32);
        }

        // Page → fields. Fields are already entity-sorted, so pushing in
        // order keeps each page's field list sorted by position.
        let mut page_lists: Vec<Vec<u32>> = vec![Vec::new(); cube.num_pages()];
        for (pos, f) in fields.iter().enumerate() {
            page_lists[cube.page_of(f.entity).index()].push(pos as u32);
        }
        let (page_offsets, page_fields) = to_csr(page_lists);

        // Template → entities and → properties.
        let mut template_entity_lists: Vec<Vec<EntityId>> = vec![Vec::new(); cube.num_templates()];
        let mut template_property_lists: Vec<Vec<PropertyId>> =
            vec![Vec::new(); cube.num_templates()];
        let mut last_entity: Option<EntityId> = None;
        for f in &fields {
            let t = cube.template_of(f.entity).index();
            if last_entity != Some(f.entity) {
                template_entity_lists[t].push(f.entity);
                last_entity = Some(f.entity);
            }
            template_property_lists[t].push(f.property);
        }
        for props in &mut template_property_lists {
            props.sort_unstable();
            props.dedup();
        }
        let (template_entity_offsets, template_entities) = to_csr(template_entity_lists);
        let (template_property_offsets, template_properties) = to_csr(template_property_lists);

        CubeIndex {
            fields,
            field_pos,
            day_offsets,
            days,
            page_offsets,
            page_fields,
            template_entity_offsets,
            template_entities,
            template_property_offsets,
            template_properties,
        }
    }

    /// Build the index over update changes only (the predictors' view).
    pub fn build(cube: &ChangeCube) -> CubeIndex {
        CubeIndex::build_for_kinds(cube, &[ChangeKind::Update])
    }

    /// Number of indexed fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// All indexed fields, sorted by `(entity, property)`.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// The field at dense position `pos`.
    pub fn field(&self, pos: usize) -> FieldId {
        self.fields[pos]
    }

    /// Dense position of `field`, if it has any indexed change.
    pub fn position(&self, field: FieldId) -> Option<usize> {
        self.field_pos.get(&field).map(|&p| p as usize)
    }

    /// Sorted change days of the field at `pos`.
    pub fn days(&self, pos: usize) -> &[Date] {
        let lo = self.day_offsets[pos] as usize;
        let hi = self.day_offsets[pos + 1] as usize;
        &self.days[lo..hi]
    }

    /// Sorted change days of the field at `pos` strictly before `before`.
    pub fn days_before(&self, pos: usize, before: Date) -> &[Date] {
        let days = self.days(pos);
        &days[..days.partition_point(|&d| d < before)]
    }

    /// Whether the field at `pos` changed on any day in `[start, end)`.
    pub fn changed_in(&self, pos: usize, start: Date, end: Date) -> bool {
        let days = self.days(pos);
        let lo = days.partition_point(|&d| d < start);
        lo < days.len() && days[lo] < end
    }

    /// Dense positions of all fields on `page`, ascending.
    pub fn fields_on_page(&self, page: PageId) -> &[u32] {
        let lo = self.page_offsets[page.index()] as usize;
        let hi = self.page_offsets[page.index() + 1] as usize;
        &self.page_fields[lo..hi]
    }

    /// Number of pages the index knows about (same as the cube's).
    pub fn num_pages(&self) -> usize {
        self.page_offsets.len() - 1
    }

    /// Entities of `template` that have at least one indexed change.
    pub fn entities_of_template(&self, template: TemplateId) -> &[EntityId] {
        let lo = self.template_entity_offsets[template.index()] as usize;
        let hi = self.template_entity_offsets[template.index() + 1] as usize;
        &self.template_entities[lo..hi]
    }

    /// Distinct changed properties of `template`, sorted.
    pub fn properties_of_template(&self, template: TemplateId) -> &[PropertyId] {
        let lo = self.template_property_offsets[template.index()] as usize;
        let hi = self.template_property_offsets[template.index() + 1] as usize;
        &self.template_properties[lo..hi]
    }

    /// Number of templates the index knows about (same as the cube's).
    pub fn num_templates(&self) -> usize {
        self.template_entity_offsets.len() - 1
    }

    /// Total number of indexed change days across all fields.
    pub fn total_days(&self) -> usize {
        self.days.len()
    }
}

/// Convert per-row lists into CSR `(offsets, data)`.
fn to_csr<T>(lists: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    let mut data = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    offsets.push(0u32);
    for list in lists {
        data.extend(list);
        offsets.push(data.len() as u32);
    }
    (offsets, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ChangeCubeBuilder;

    fn day(n: i32) -> Date {
        Date::EPOCH + n
    }

    fn cube() -> ChangeCube {
        let mut b = ChangeCubeBuilder::new();
        let ali = b.entity("Ali", "infobox boxer", "Muhammad Ali");
        let tyson = b.entity("Tyson", "infobox boxer", "Mike Tyson");
        let london = b.entity("London", "infobox settlement", "London");
        let wins = b.property("wins");
        let ko = b.property("ko");
        let pop = b.property("population_est");
        for d in [3, 1, 2] {
            b.change(day(d), ali, wins, "w", ChangeKind::Update);
        }
        b.change(day(1), ali, ko, "k", ChangeKind::Update);
        b.change(day(9), tyson, wins, "w", ChangeKind::Update);
        b.change(day(0), london, pop, "p", ChangeKind::Create);
        b.change(day(4), london, pop, "p2", ChangeKind::Update);
        b.change(day(8), london, pop, "", ChangeKind::Delete);
        b.finish()
    }

    #[test]
    fn fields_are_update_only_by_default() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        // Fields: Ali/wins, Ali/ko, Tyson/wins, London/pop → 4 fields.
        assert_eq!(idx.num_fields(), 4);
        let london = cube.entity_id("London").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        let pos = idx.position(FieldId::new(london, pop)).unwrap();
        // Only the update on day 4 is indexed; create/delete are not.
        assert_eq!(idx.days(pos), &[day(4)]);
    }

    #[test]
    fn all_kinds_index_sees_creates_and_deletes() {
        let cube = cube();
        let idx = CubeIndex::build_for_kinds(
            &cube,
            &[ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete],
        );
        let london = cube.entity_id("London").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        let pos = idx.position(FieldId::new(london, pop)).unwrap();
        assert_eq!(idx.days(pos), &[day(0), day(4), day(8)]);
    }

    #[test]
    fn days_are_sorted_per_field() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let wins = cube.property_id("wins").unwrap();
        let pos = idx.position(FieldId::new(ali, wins)).unwrap();
        assert_eq!(idx.days(pos), &[day(1), day(2), day(3)]);
        assert_eq!(idx.days_before(pos, day(3)), &[day(1), day(2)]);
        assert_eq!(idx.days_before(pos, day(0)), &[] as &[Date]);
    }

    #[test]
    fn changed_in_half_open_window() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let wins = cube.property_id("wins").unwrap();
        let pos = idx.position(FieldId::new(ali, wins)).unwrap();
        assert!(idx.changed_in(pos, day(1), day(2)));
        assert!(idx.changed_in(pos, day(3), day(10)));
        assert!(!idx.changed_in(pos, day(4), day(10)));
        assert!(!idx.changed_in(pos, day(0), day(1)));
    }

    #[test]
    fn page_field_lists() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali_page = cube.page_id("Muhammad Ali").unwrap();
        let on_page = idx.fields_on_page(ali_page);
        assert_eq!(on_page.len(), 2);
        for &pos in on_page {
            assert_eq!(
                idx.field(pos as usize).entity,
                cube.entity_id("Ali").unwrap()
            );
        }
        assert_eq!(idx.num_pages(), 3);
    }

    #[test]
    fn template_views() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let boxer = cube.template_id("infobox boxer").unwrap();
        let entities = idx.entities_of_template(boxer);
        assert_eq!(entities.len(), 2);
        let props = idx.properties_of_template(boxer);
        assert_eq!(props.len(), 2); // wins, ko (deduplicated across entities)
        let settlement = cube.template_id("infobox settlement").unwrap();
        assert_eq!(idx.properties_of_template(settlement).len(), 1);
        assert_eq!(idx.num_templates(), 2);
    }

    #[test]
    fn unknown_field_has_no_position() {
        let cube = cube();
        let idx = CubeIndex::build(&cube);
        let ali = cube.entity_id("Ali").unwrap();
        let pop = cube.property_id("population_est").unwrap();
        assert_eq!(idx.position(FieldId::new(ali, pop)), None);
    }

    #[test]
    fn empty_cube_yields_empty_index() {
        let cube = ChangeCubeBuilder::new().finish();
        let idx = CubeIndex::build(&cube);
        assert_eq!(idx.num_fields(), 0);
        assert_eq!(idx.total_days(), 0);
        assert_eq!(idx.num_pages(), 0);
        assert_eq!(idx.num_templates(), 0);
    }
}
