//! Day-resolution civil (proleptic Gregorian) date arithmetic.
//!
//! The change cube only ever needs day resolution: the stale-data filters
//! collapse all edits of a field on one day into a single representative
//! change, and every window granularity evaluated in the paper (1, 7, 30 and
//! 365 days) is a whole number of days. A [`Date`] is therefore a single
//! `i32` counting days since the Unix epoch (1970-01-01), which keeps the
//! hot structures compact and comparison/window math branch-free.
//!
//! Conversions between day numbers and calendar dates use Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, which are exact over
//! the entire `i32` range used here.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

/// A civil date with day resolution, stored as days since 1970-01-01.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(i32);

/// Day of the week. ISO numbering: Monday is the first day.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// ISO weekday number, Monday = 1 … Sunday = 7.
    pub fn iso_number(self) -> u8 {
        match self {
            Weekday::Monday => 1,
            Weekday::Tuesday => 2,
            Weekday::Wednesday => 3,
            Weekday::Thursday => 4,
            Weekday::Friday => 5,
            Weekday::Saturday => 6,
            Weekday::Sunday => 7,
        }
    }
}

/// Number of days from 1970-01-01 to `y-m-d` (proleptic Gregorian).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = if m > 2 { m - 3 } else { m + 9 }; // [0, 11], March-based
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as i32; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Number of days in month `m` of year `y`.
fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Whether `y` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

impl Date {
    /// The Unix epoch, 1970-01-01.
    pub const EPOCH: Date = Date(0);

    /// First day of the exported Wikipedia infobox history (2003-01-04).
    pub const WIKI_HISTORY_START: Date = Date(12_056);

    /// Last day of the exported Wikipedia infobox history (2019-09-02).
    pub const WIKI_HISTORY_END: Date = Date(18_141);

    /// Start of the paper's training set (2004-06-05).
    pub const TRAINING_START: Date = Date(12_574);

    /// Start of the paper's test set (2018-09-01); the validation set is the
    /// 365 days immediately before this day.
    pub const TEST_START: Date = Date(17_775);

    /// Construct a date from a raw day number (days since 1970-01-01).
    pub const fn from_day_number(days: i32) -> Date {
        Date(days)
    }

    /// The raw day number (days since 1970-01-01).
    pub const fn day_number(self) -> i32 {
        self.0
    }

    /// Construct from calendar year/month/day; `None` if the combination is
    /// not a real calendar day.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date(days_from_civil(year, month, day)))
    }

    /// Calendar `(year, month, day)` of this date.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month, 1-based.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Calendar day of month, 1-based.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday; keep the remainder non-negative.
        match (self.0.rem_euclid(7) + 3) % 7 {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// The date `n` days later (earlier for negative `n`).
    pub const fn plus_days(self, n: i32) -> Date {
        Date(self.0 + n)
    }

    /// Signed number of days from `other` to `self`.
    pub const fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// Day of year, 1-based (1..=365/366).
    pub fn ordinal(self) -> u32 {
        let (y, _, _) = self.ymd();
        let jan1 = days_from_civil(y, 1, 1);
        (self.0 - jan1 + 1) as u32
    }

    /// Clamp this date into `[lo, hi]`.
    pub fn clamp(self, lo: Date, hi: Date) -> Date {
        Date(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<i32> for Date {
    type Output = Date;
    fn add(self, rhs: i32) -> Date {
        self.plus_days(rhs)
    }
}

impl AddAssign<i32> for Date {
    fn add_assign(&mut self, rhs: i32) {
        self.0 += rhs;
    }
}

impl Sub<i32> for Date {
    type Output = Date;
    fn sub(self, rhs: i32) -> Date {
        self.plus_days(-rhs)
    }
}

impl SubAssign<i32> for Date {
    fn sub_assign(&mut self, rhs: i32) {
        self.0 -= rhs;
    }
}

impl Sub<Date> for Date {
    type Output = i32;
    fn sub(self, rhs: Date) -> i32 {
        self.days_since(rhs)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

/// Error returned when parsing a [`Date`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError {
    input: String,
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date {:?}, expected YYYY-MM-DD", self.input)
    }
}

impl std::error::Error for ParseDateError {}

impl FromStr for Date {
    type Err = ParseDateError;

    /// Parse `YYYY-MM-DD`, strictly: exactly four, two, and two ASCII
    /// digits separated by `-`. Splitting on `-` and delegating to
    /// integer `parse` is not enough — `parse` accepts a leading sign,
    /// which would let `+2018-+09-+01` through.
    fn from_str(s: &str) -> Result<Date, ParseDateError> {
        let err = || ParseDateError {
            input: s.to_owned(),
        };
        let b = s.as_bytes();
        if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
            return Err(err());
        }
        let digits = |r: std::ops::Range<usize>| -> Result<u32, ParseDateError> {
            if !b[r.clone()].iter().all(u8::is_ascii_digit) {
                return Err(err());
            }
            s[r].parse().map_err(|_| err())
        };
        let y = digits(0..4)? as i32;
        let m = digits(5..7)?;
        let d = digits(8..10)?;
        Date::from_ymd(y, m, d).ok_or_else(err)
    }
}

/// A half-open range of days `[start, end)`.
///
/// Ranges are the basic vocabulary of the evaluation harness: train /
/// validation / test splits and tumbling windows are all `DateRange`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DateRange {
    start: Date,
    end: Date,
}

impl DateRange {
    /// Create the half-open range `[start, end)`. `end` is clamped to be at
    /// least `start`, so an inverted input yields an empty range.
    pub fn new(start: Date, end: Date) -> DateRange {
        DateRange {
            start,
            end: if end < start { start } else { end },
        }
    }

    /// Range covering `len_days` days starting at `start`.
    pub fn with_len(start: Date, len_days: u32) -> DateRange {
        DateRange {
            start,
            end: start.plus_days(len_days as i32),
        }
    }

    /// Inclusive start day.
    pub fn start(self) -> Date {
        self.start
    }

    /// Exclusive end day.
    pub fn end(self) -> Date {
        self.end
    }

    /// Number of days covered.
    pub fn len_days(self) -> u32 {
        (self.end.0 - self.start.0) as u32
    }

    /// Whether the range covers no day at all.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `day` falls inside the range.
    pub fn contains(self, day: Date) -> bool {
        self.start <= day && day < self.end
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(self, other: DateRange) -> DateRange {
        DateRange::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Iterate over each day in the range.
    pub fn days(self) -> impl Iterator<Item = Date> {
        (self.start.0..self.end.0).map(Date)
    }

    /// Split into tumbling windows of `window_days` days each, left to
    /// right. A final window that would exceed the range is *disregarded*,
    /// matching the paper's evaluation protocol ("windows that would exceed
    /// the validation and test set limit are disregarded").
    pub fn tumbling_windows(self, window_days: u32) -> impl Iterator<Item = DateRange> {
        assert!(window_days > 0, "window size must be positive");
        let n = self.len_days() / window_days;
        let start = self.start;
        (0..n).map(move |i| {
            DateRange::with_len(start.plus_days((i * window_days) as i32), window_days)
        })
    }
}

impl fmt::Display for DateRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Debug for DateRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DateRange{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Date::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Date::from_ymd(1970, 1, 1), Some(Date::EPOCH));
    }

    #[test]
    fn paper_constants_match_calendar() {
        assert_eq!(
            Date::from_ymd(2003, 1, 4).unwrap(),
            Date::WIKI_HISTORY_START
        );
        assert_eq!(Date::from_ymd(2019, 9, 2).unwrap(), Date::WIKI_HISTORY_END);
        assert_eq!(Date::from_ymd(2004, 6, 5).unwrap(), Date::TRAINING_START);
        assert_eq!(Date::from_ymd(2018, 9, 1).unwrap(), Date::TEST_START);
    }

    #[test]
    fn training_set_spans_paper_day_count() {
        // Paper §5.1: "a training set of 4,835 days beginning June 5, 2004"
        // up to the validation set, which starts 730 days before the end of
        // the test year.
        let validation_start = Date::TEST_START - 365;
        assert_eq!(validation_start - Date::TRAINING_START, 4_836);
        // The training range [2004-06-05, validation_start) has 4,836 days;
        // the paper counts 4,835, i.e. an inclusive-exclusive off-by-one in
        // the prose. We standardize on half-open ranges.
    }

    #[test]
    fn ymd_round_trip_sample() {
        for &(y, m, d) in &[
            (2000, 2, 29),
            (1999, 12, 31),
            (2019, 9, 2),
            (1970, 1, 1),
            (1969, 12, 31),
            (1600, 3, 1),
            (2400, 2, 29),
        ] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d), "round trip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert_eq!(Date::from_ymd(2019, 2, 29), None);
        assert_eq!(Date::from_ymd(2019, 0, 1), None);
        assert_eq!(Date::from_ymd(2019, 13, 1), None);
        assert_eq!(Date::from_ymd(2019, 4, 31), None);
        assert_eq!(Date::from_ymd(2100, 2, 29), None); // not a leap year
        assert!(Date::from_ymd(2000, 2, 29).is_some()); // leap century
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(Date::EPOCH.weekday(), Weekday::Thursday);
        // 2019-09-02 was a Monday.
        assert_eq!(Date::WIKI_HISTORY_END.weekday(), Weekday::Monday);
        // 2003-01-04 was a Saturday.
        assert_eq!(Date::WIKI_HISTORY_START.weekday(), Weekday::Saturday);
        assert_eq!(Weekday::Monday.iso_number(), 1);
        assert_eq!(Weekday::Sunday.iso_number(), 7);
    }

    #[test]
    fn weekday_negative_days() {
        // 1969-12-31 was a Wednesday.
        assert_eq!(Date::from_day_number(-1).weekday(), Weekday::Wednesday);
    }

    #[test]
    fn display_and_parse() {
        let d = Date::from_ymd(2018, 9, 1).unwrap();
        assert_eq!(d.to_string(), "2018-09-01");
        assert_eq!("2018-09-01".parse::<Date>().unwrap(), d);
        assert!("2018-13-01".parse::<Date>().is_err());
        assert!("hello".parse::<Date>().is_err());
        assert!("2018-09".parse::<Date>().is_err());
    }

    /// Signed or mis-shaped components must not parse: the previous
    /// `splitn` + `parse` implementation accepted `+2018-+09-+01`.
    #[test]
    fn parse_rejects_signed_and_loose_components() {
        assert!("+2018-+09-+01".parse::<Date>().is_err());
        assert!("+2018-09-01".parse::<Date>().is_err());
        assert!("2018-+9-01".parse::<Date>().is_err());
        assert!("2018-9-1".parse::<Date>().is_err()); // must be zero-padded
        assert!("02018-09-01".parse::<Date>().is_err());
        assert!("2018-09-011".parse::<Date>().is_err());
        assert!(" 2018-09-01".parse::<Date>().is_err());
        assert!("2018-09-01 ".parse::<Date>().is_err());
        assert_eq!(
            "0001-01-01".parse::<Date>().unwrap(),
            Date::from_ymd(1, 1, 1).unwrap()
        );
    }

    #[test]
    fn ordinal_day_of_year() {
        assert_eq!(Date::from_ymd(2019, 1, 1).unwrap().ordinal(), 1);
        assert_eq!(Date::from_ymd(2019, 12, 31).unwrap().ordinal(), 365);
        assert_eq!(Date::from_ymd(2020, 12, 31).unwrap().ordinal(), 366);
    }

    #[test]
    fn arithmetic_operators() {
        let d = Date::from_ymd(2018, 9, 1).unwrap();
        assert_eq!((d + 365).to_string(), "2019-09-01");
        assert_eq!((d - 1).to_string(), "2018-08-31");
        assert_eq!((d + 365) - d, 365);
        let mut m = d;
        m += 30;
        assert_eq!(m.to_string(), "2018-10-01");
        m -= 30;
        assert_eq!(m, d);
    }

    #[test]
    fn range_basics() {
        let start = Date::from_ymd(2018, 9, 1).unwrap();
        let r = DateRange::with_len(start, 365);
        assert_eq!(r.len_days(), 365);
        assert!(r.contains(start));
        assert!(r.contains(start + 364));
        assert!(!r.contains(start + 365));
        assert!(!r.contains(start - 1));
        assert!(!r.is_empty());
        assert!(DateRange::new(start, start).is_empty());
        // Inverted inputs collapse to empty.
        assert!(DateRange::new(start, start - 10).is_empty());
    }

    #[test]
    fn range_intersection() {
        let a = DateRange::with_len(Date::EPOCH, 100);
        let b = DateRange::with_len(Date::EPOCH + 50, 100);
        let i = a.intersect(b);
        assert_eq!(i.start(), Date::EPOCH + 50);
        assert_eq!(i.len_days(), 50);
        let disjoint = DateRange::with_len(Date::EPOCH + 500, 10);
        assert!(a.intersect(disjoint).is_empty());
    }

    #[test]
    fn tumbling_windows_match_paper_counts() {
        // Paper §5.1: a 365-day test year yields 365 one-day, 52 seven-day,
        // 12 thirty-day, and 1 yearly window (incomplete trailing windows
        // are disregarded).
        let year = DateRange::with_len(Date::TEST_START, 365);
        assert_eq!(year.tumbling_windows(1).count(), 365);
        assert_eq!(year.tumbling_windows(7).count(), 52);
        assert_eq!(year.tumbling_windows(30).count(), 12);
        assert_eq!(year.tumbling_windows(365).count(), 1);
        let total: usize = [1u32, 7, 30, 365]
            .iter()
            .map(|&w| year.tumbling_windows(w).count())
            .sum();
        assert_eq!(total, 430);
    }

    #[test]
    fn tumbling_windows_are_contiguous() {
        let year = DateRange::with_len(Date::TEST_START, 365);
        let mut prev_end = year.start();
        for w in year.tumbling_windows(30) {
            assert_eq!(w.start(), prev_end);
            assert_eq!(w.len_days(), 30);
            prev_end = w.end();
        }
        assert!(prev_end <= year.end());
    }

    #[test]
    fn days_iterator() {
        let r = DateRange::with_len(Date::EPOCH, 3);
        let days: Vec<String> = r.days().map(|d| d.to_string()).collect();
        assert_eq!(days, ["1970-01-01", "1970-01-02", "1970-01-03"]);
    }

    #[test]
    fn clamp_date() {
        let lo = Date::EPOCH;
        let hi = Date::EPOCH + 10;
        assert_eq!((Date::EPOCH - 5).clamp(lo, hi), lo);
        assert_eq!((Date::EPOCH + 15).clamp(lo, hi), hi);
        assert_eq!((Date::EPOCH + 5).clamp(lo, hi), Date::EPOCH + 5);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2019));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Day number ↔ calendar round trip over ±500 years.
            #[test]
            fn prop_day_number_round_trip(n in -182_000i32..182_000) {
                let d = Date::from_day_number(n);
                let (y, m, dd) = d.ymd();
                prop_assert_eq!(Date::from_ymd(y, m, dd), Some(d));
                prop_assert_eq!(d.day_number(), n);
            }

            /// Display ↔ parse round trip.
            #[test]
            fn prop_display_parse_round_trip(n in -100_000i32..100_000) {
                let d = Date::from_day_number(n);
                prop_assert_eq!(d.to_string().parse::<Date>(), Ok(d));
            }

            /// Successive days differ by exactly one calendar position.
            #[test]
            fn prop_successor_is_calendar_successor(n in -50_000i32..50_000) {
                let today = Date::from_day_number(n);
                let tomorrow = today + 1;
                prop_assert_eq!(tomorrow - today, 1);
                let (y, m, d) = today.ymd();
                let (y2, m2, d2) = tomorrow.ymd();
                let same_month = y2 == y && m2 == m && d2 == d + 1;
                let next_month = y2 == y && m2 == m + 1 && d2 == 1;
                let next_year = y2 == y + 1 && m2 == 1 && d2 == 1;
                prop_assert!(same_month || next_month || next_year);
                // Weekdays cycle.
                let wd = today.weekday().iso_number() % 7 + 1;
                prop_assert_eq!(tomorrow.weekday().iso_number(), wd);
            }

            /// Tumbling windows tile the range without gaps or overlaps.
            #[test]
            fn prop_tumbling_windows_tile(len in 1u32..800, w in 1u32..100) {
                let range = DateRange::with_len(Date::EPOCH, len);
                let windows: Vec<DateRange> = range.tumbling_windows(w).collect();
                prop_assert_eq!(windows.len() as u32, len / w);
                for (i, win) in windows.iter().enumerate() {
                    prop_assert_eq!(win.len_days(), w);
                    prop_assert_eq!(win.start(), range.start() + (i as u32 * w) as i32);
                    prop_assert!(win.end() <= range.end());
                }
            }
        }
    }
}
