//! Typed CLI failures with distinct process exit codes, so scripts and
//! the fault-injection harness can tell *why* a run died without
//! scraping stderr:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | success                                   |
//! | 1    | other failure                             |
//! | 2    | usage error (bad flag, bad value)         |
//! | 3    | i/o error (missing file, failed write)    |
//! | 4    | corrupt input (bad cube file, bad XML)    |
//! | 5    | ingest error budget exceeded              |

use wikistale_core::checkpoint::CheckpointError;
use wikistale_serve::ArtifactError;
use wikistale_wikicube::CubeError;
use wikistale_wikitext::StreamError;

/// A CLI failure, classified for the process exit code.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (exit 2).
    Usage(String),
    /// The filesystem failed us (exit 3).
    Io(String),
    /// An input exists but its contents are broken (exit 4).
    Corrupt(String),
    /// Lossy ingest quarantined more than the error budget (exit 5).
    BudgetExceeded(String),
    /// Anything else (exit 1).
    Other(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::BudgetExceeded(_) => 5,
        }
    }

    /// Classify a cube read/write failure: transport problems are
    /// [`CliError::Io`], everything else means the bytes are bad.
    pub fn from_cube(context: &str, e: CubeError) -> CliError {
        match e {
            CubeError::Io(io) => CliError::Io(format!("{context}: {io}")),
            other => CliError::Corrupt(format!("{context}: {other}")),
        }
    }

    /// Classify a streaming-ingest failure.
    pub fn from_stream(context: &str, e: StreamError) -> CliError {
        match e {
            StreamError::Io(io) => CliError::Io(format!("{context}: {io}")),
            StreamError::Xml(xml) => CliError::Corrupt(format!("{context}: {xml}")),
            budget @ StreamError::BudgetExceeded { .. } => {
                CliError::BudgetExceeded(format!("{context}: {budget}"))
            }
        }
    }

    /// Classify a serving-artifact load failure: missing files are
    /// [`CliError::Io`], failed verification or decoding is
    /// [`CliError::Corrupt`].
    pub fn from_artifact(e: ArtifactError) -> CliError {
        match e {
            ArtifactError::Io(why) => CliError::Io(why),
            ArtifactError::Corrupt(why) => CliError::Corrupt(why),
        }
    }

    /// Classify a checkpoint failure. A fingerprint mismatch is the
    /// user's flags disagreeing with the stored run, i.e. a usage error.
    pub fn from_checkpoint(e: CheckpointError) -> CliError {
        match e {
            CheckpointError::Io(io) => CliError::Io(format!("checkpoint: {io}")),
            CheckpointError::Corrupt(why) => CliError::Corrupt(why),
            mismatch @ CheckpointError::FingerprintMismatch { .. } => {
                CliError::Usage(mismatch.to_string())
            }
        }
    }
}

// `Display` just prints the carried message; the classification shows
// up in the exit code, not the text.
impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (CliError::Usage(m)
        | CliError::Io(m)
        | CliError::Corrupt(m)
        | CliError::BudgetExceeded(m)
        | CliError::Other(m)) = self;
        write!(f, "{m}")
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Other(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let all = [
            CliError::Other("o".into()),
            CliError::Usage("u".into()),
            CliError::Io("i".into()),
            CliError::Corrupt("c".into()),
            CliError::BudgetExceeded("b".into()),
        ];
        let codes: Vec<u8> = all.iter().map(CliError::exit_code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cube_errors_split_io_from_corruption() {
        let io = CubeError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(CliError::from_cube("x", io).exit_code(), 3);
        assert_eq!(CliError::from_cube("x", CubeError::BadMagic).exit_code(), 4);
        let trunc = CubeError::Truncated {
            section: "changes",
            need: 18,
            got: 3,
        };
        assert_eq!(CliError::from_cube("x", trunc).exit_code(), 4);
    }

    #[test]
    fn stream_errors_map_to_their_codes() {
        let budget = StreamError::BudgetExceeded {
            quarantined: 5,
            seen: 10,
            max_fraction: 0.01,
        };
        assert_eq!(CliError::from_stream("x", budget).exit_code(), 5);
        let xml = StreamError::Xml(wikistale_wikitext::XmlError::MissingTitle);
        assert_eq!(CliError::from_stream("x", xml).exit_code(), 4);
    }

    #[test]
    fn artifact_errors_split_io_from_corruption() {
        let io = ArtifactError::Io("no checkpoint manifest".into());
        assert_eq!(CliError::from_artifact(io).exit_code(), 3);
        let bad = ArtifactError::Corrupt("CRC-32 mismatch".into());
        assert_eq!(CliError::from_artifact(bad).exit_code(), 4);
    }

    #[test]
    fn messages_pass_through_display() {
        let e = CliError::Corrupt("bad bytes at offset 7".into());
        assert_eq!(e.to_string(), "bad bytes at offset 7");
    }
}
