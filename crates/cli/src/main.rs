//! `wikistale` — detect stale data in Wikipedia infoboxes.
//!
//! End-to-end command-line front end for the `wikistale` crates:
//!
//! ```text
//! wikistale generate --preset small --out raw.wcube
//! wikistale ingest   --xml dump.xml --out raw.wcube
//! wikistale stats    --in raw.wcube
//! wikistale filter   --in raw.wcube --out filtered.wcube
//! wikistale evaluate --in filtered.wcube [--vs-paper]
//! wikistale monitor  --in filtered.wcube --at 2019-06-01 --window 7
//! ```
//!
//! Failures exit with a classified code (see `wikistale help`):
//! 1 other, 2 usage, 3 i/o, 4 corrupt input, 5 error budget exceeded.

mod args;
mod commands;
mod error;

use std::process::ExitCode;

/// Count heap usage process-wide so `bench pipeline` can report per-stage
/// peak allocator bytes. The counter is a pair of relaxed atomics per
/// allocation — cheap enough to leave on for every subcommand.
#[global_allocator]
static ALLOC: wikistale_obs::alloc::CountingAlloc = wikistale_obs::alloc::CountingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
