//! Subcommand implementations.

use crate::args::Args;
use std::path::Path;
use wikistale_apriori::Support;
use wikistale_core::experiment::{
    run_paper_evaluation, run_paper_evaluation_serial, ExperimentConfig,
};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictors::DistanceNorm;
use wikistale_core::report;
use wikistale_core::split::EvalSplit;
use wikistale_synth::SynthConfig;
use wikistale_wikicube::{binio, ChangeCube, CorpusStats, CubeIndex, Date, DateRange};

const USAGE: &str = "\
wikistale — detect stale data in Wikipedia infoboxes (EDBT 2023 reproduction)

USAGE:
  wikistale generate --out <cube> [--preset tiny|small|medium] [--seed N] [--scale F]
  wikistale ingest   --xml <dump.xml> --out <cube>
  wikistale stats    --in <cube>
  wikistale filter   --in <cube> --out <cube> [--no-min-changes]
  wikistale evaluate --in <filtered-cube> [--vs-paper] [--theta F]
                     [--support F] [--confidence F] [--day-count-norm]
  wikistale monitor  --in <filtered-cube> --at YYYY-MM-DD [--window DAYS]
  wikistale export   --in <cube> --xml <dump.xml>
  wikistale slice    --in <cube> --from YYYY-MM-DD --to YYYY-MM-DD --out <cube>
  wikistale merge    --out <cube> <cube…>
  wikistale anomalies --in <cube> [--limit N]
  wikistale top      --in <cube> --by template|property|page [--k N] [--kind create|update|delete]
  wikistale figures  --in <filtered-cube> --out-dir <dir>
  wikistale experiment [--preset tiny|small|medium] [--seed N] [--scale F]
                     [--no-min-changes] [--vs-paper] [--theta F]
                     [--support F] [--confidence F] [--day-count-norm]

Every subcommand additionally accepts:
  --metrics <path>            write a pipeline-stage metrics report
                              (use `-` for stdout)
  --metrics-format json|table report format (default json)

`experiment` runs the whole pipeline — generate, filter, train, predict,
evaluate — serially in one process, so the metrics stage tree nests and
its top-level stage times sum to the wall time.

Cube files use the versioned wikicube binary format (.wcube).
";

/// Dispatch `argv`; returns an error message for the user on failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    // Each invocation reports its own pipeline run (tests call `run`
    // several times per process).
    wikistale_obs::MetricsRegistry::global().reset();
    let result = match args.positional(0) {
        None | Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("generate") => cmd_generate(&args),
        Some("ingest") => cmd_ingest(&args),
        Some("stats") => cmd_stats(&args),
        Some("filter") => cmd_filter(&args),
        Some("evaluate") => cmd_evaluate(&args),
        Some("experiment") => cmd_experiment(&args),
        Some("monitor") => cmd_monitor(&args),
        Some("export") => cmd_export(&args),
        Some("slice") => cmd_slice(&args),
        Some("merge") => cmd_merge(&args),
        Some("anomalies") => cmd_anomalies(&args),
        Some("top") => cmd_top(&args),
        Some("figures") => cmd_figures(&args),
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if result.is_ok() {
        write_metrics(&args)?;
    }
    result
}

fn reject_unknown(args: &Args, known: &[&str]) -> Result<(), String> {
    // The metrics flags are accepted by every subcommand.
    let mut known: Vec<&str> = known.to_vec();
    known.extend(["metrics", "metrics-format"]);
    let unknown = args.unknown_flags(&known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(format!("unknown flag(s): --{}", unknown.join(", --")))
    }
}

/// Honor `--metrics <path>` / `--metrics-format {json,table}` after a
/// successful command: render the global registry and write it out
/// (`-` or an empty value prints to stdout).
fn write_metrics(args: &Args) -> Result<(), String> {
    let Some(path) = args.get("metrics") else {
        if args.has("metrics-format") {
            return Err("--metrics-format needs --metrics".into());
        }
        return Ok(());
    };
    let registry = wikistale_obs::MetricsRegistry::global();
    let rendered = match args.get("metrics-format").unwrap_or("json") {
        "json" => registry.render_json(),
        "table" => registry.render_table(),
        other => return Err(format!("unknown metrics format {other:?} (json|table)")),
    };
    if path.is_empty() || path == "-" {
        print!("{rendered}");
    } else {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote metrics → {path}");
    }
    Ok(())
}

fn load_cube(path: &str) -> Result<ChangeCube, String> {
    binio::read_from_path(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}

fn save_cube(cube: &ChangeCube, path: &str) -> Result<(), String> {
    binio::write_to_path(cube, Path::new(path)).map_err(|e| format!("cannot write {path}: {e}"))
}

fn synth_config(args: &Args) -> Result<SynthConfig, String> {
    let mut config = match args.get("preset").unwrap_or("small") {
        "tiny" => SynthConfig::tiny(),
        "small" => SynthConfig::small(),
        "medium" => SynthConfig::medium(),
        other => return Err(format!("unknown preset {other:?} (tiny|small|medium)")),
    };
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        config.seed = seed;
    }
    if let Some(scale) = args.get_parsed::<f64>("scale")? {
        if scale <= 0.0 {
            return Err("--scale must be positive".into());
        }
        config = config.scaled(scale);
    }
    Ok(config)
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["preset", "seed", "scale", "out"])?;
    let config = synth_config(args)?;
    let out = args.require("out")?;
    let corpus = wikistale_synth::try_generate(&config)?;
    save_cube(&corpus.cube, out)?;
    println!(
        "generated {} changes over {} entities / {} templates → {out}",
        corpus.cube.num_changes(),
        corpus.cube.num_entities(),
        corpus.cube.num_templates()
    );
    println!(
        "ground truth: {} forgotten updates (true staleness)",
        corpus.ground_truth.len()
    );
    Ok(())
}

fn cmd_ingest(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["xml", "out", "all-namespaces"])?;
    let xml_path = args.require("xml")?;
    let out = args.require("out")?;
    let all_namespaces = args.has("all-namespaces");
    // Stream page by page: full-history dumps do not fit in memory.
    let file = std::fs::File::open(xml_path).map_err(|e| format!("cannot read {xml_path}: {e}"))?;
    let mut acc = wikistale_wikitext::diff::CubeAccumulator::new();
    let mut skipped = 0usize;
    for page in wikistale_wikitext::PageStream::new(std::io::BufReader::new(file)) {
        let page = page.map_err(|e| e.to_string())?;
        if all_namespaces || wikistale_wikitext::diff::is_article_title(&page.title) {
            acc.add_page(&page);
        } else {
            skipped += 1;
        }
    }
    let pages = acc.pages_seen();
    let cube = acc.finish();
    save_cube(&cube, out)?;
    println!(
        "ingested {} pages ({} non-article pages skipped) → {} changes over {} infoboxes → {out}",
        pages,
        skipped,
        cube.num_changes(),
        cube.num_entities()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in"])?;
    let cube = load_cube(args.require("in")?)?;
    let stats = CorpusStats::compute(&cube);
    println!("changes        {}", stats.total_changes);
    println!(
        "  creates      {} ({:.2} %)   [paper: 50.6 %]",
        stats.by_kind[0],
        100.0 * stats.create_fraction()
    );
    println!(
        "  updates      {} ({:.2} %)",
        stats.by_kind[1],
        100.0 * stats.by_kind[1] as f64 / stats.total_changes.max(1) as f64
    );
    println!(
        "  deletes      {} ({:.2} %)   [paper: 20.3 %]",
        stats.by_kind[2],
        100.0 * stats.delete_fraction()
    );
    println!(
        "bot-reverted   {} ({:.4} %)  [paper: 0.008 %]",
        stats.bot_reverted,
        100.0 * stats.bot_reverted_fraction()
    );
    println!(
        "same-day dups  {} ({:.2} %)  [paper: 19.185 %]",
        stats.same_day_duplicates,
        100.0 * stats.same_day_duplicate_fraction()
    );
    println!("fields         {}", stats.distinct_fields);
    println!(
        "  sparse (<{}) {}",
        stats.min_changes_threshold, stats.fields_below_min_changes
    );
    println!("entities       {}", stats.active_entities);
    println!("templates      {}", stats.active_templates);
    if let Some(span) = stats.time_span {
        println!("span           {span}");
    }
    Ok(())
}

fn cmd_filter(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "out", "no-min-changes"])?;
    let cube = load_cube(args.require("in")?)?;
    let out = args.require("out")?;
    let pipeline = if args.has("no-min-changes") {
        FilterPipeline::without_min_changes()
    } else {
        FilterPipeline::paper()
    };
    let (filtered, report) = pipeline.apply(&cube);
    for (i, stage) in report.stages.iter().enumerate() {
        println!(
            "{:<28} removed {:>9} ({:>6.3} % of original)",
            stage.name,
            stage.removed,
            100.0 * report.removed_fraction_of_original(i)
        );
    }
    println!(
        "surviving                    {:>9} ({:>6.3} % of original)  [paper: 9.2 %]",
        filtered.num_changes(),
        100.0 * report.surviving_fraction()
    );
    save_cube(&filtered, out)?;
    println!("wrote {out}");
    Ok(())
}

fn experiment_config(args: &Args) -> Result<ExperimentConfig, String> {
    let mut config = ExperimentConfig::default();
    if let Some(theta) = args.get_parsed::<f64>("theta")? {
        config.field_corr.theta = theta;
    }
    if args.has("day-count-norm") {
        config.field_corr.norm = DistanceNorm::DayCount;
    }
    if let Some(support) = args.get_parsed::<f64>("support")? {
        config.assoc.apriori.min_support = Support::Fraction(support);
    }
    if let Some(confidence) = args.get_parsed::<f64>("confidence")? {
        config.assoc.apriori.min_confidence = confidence;
    }
    Ok(config)
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        &[
            "in",
            "vs-paper",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
        ],
    )?;
    let cube = load_cube(args.require("in")?)?;
    let span = cube
        .time_span()
        .ok_or("cube is empty — nothing to evaluate")?;
    let split = EvalSplit::for_span(span)
        .ok_or("cube spans less than the two years needed for validation + test")?;
    let config = experiment_config(args)?;
    let results = run_paper_evaluation(&cube, &split, &config);
    if args.has("vs-paper") {
        println!("{}", report::render_table1_vs_paper(&results));
    } else {
        println!("{}", report::render_table1(&results));
    }
    println!("{}", report::render_overlap(&results));
    println!("{}", report::render_figure3(&results));
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        &[
            "preset",
            "seed",
            "scale",
            "no-min-changes",
            "vs-paper",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
        ],
    )?;
    let config = synth_config(args)?;
    let wall = std::time::Instant::now();
    let corpus = wikistale_synth::try_generate(&config)?;
    let pipeline = if args.has("no-min-changes") {
        FilterPipeline::without_min_changes()
    } else {
        FilterPipeline::paper()
    };
    let (filtered, _report) = pipeline.apply(&corpus.cube);
    let span = filtered
        .time_span()
        .ok_or("filtered cube is empty — nothing to evaluate")?;
    let split = EvalSplit::for_span(span)
        .ok_or("corpus spans less than the two years needed for validation + test")?;
    let exp_config = experiment_config(args)?;
    // Serial on purpose: the metrics stage tree then nests under one
    // thread and its top-level stage times sum to the wall time.
    let results = run_paper_evaluation_serial(&filtered, &split, &exp_config);
    // Reference point for the stage breakdown: generate → evaluate,
    // excluding report rendering below.
    wikistale_obs::MetricsRegistry::global()
        .gauge_set("experiment/wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    if args.has("vs-paper") {
        println!("{}", report::render_table1_vs_paper(&results));
    } else {
        println!("{}", report::render_table1(&results));
    }
    println!("{}", report::render_overlap(&results));
    Ok(())
}

fn cmd_monitor(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        &[
            "in",
            "at",
            "window",
            "theta",
            "support",
            "confidence",
            "limit",
        ],
    )?;
    let cube = load_cube(args.require("in")?)?;
    let at: Date = args
        .require("at")?
        .parse()
        .map_err(|e| format!("--at: {e}"))?;
    let window: u32 = args.get_parsed::<u32>("window")?.unwrap_or(7);
    if window == 0 {
        return Err("--window must be positive".into());
    }
    let limit: usize = args.get_parsed::<usize>("limit")?.unwrap_or(25);
    let span = cube.time_span().ok_or("cube is empty")?;
    let window_range = DateRange::new(at - window as i32, at);
    if window_range.start() <= span.start() {
        return Err(format!(
            "--at {at} leaves no history before the window (corpus starts {})",
            span.start()
        ));
    }

    // The deployment facade: filter (idempotent on already-filtered
    // cubes), train on everything before the window, flag with
    // explanations. The §6 seasonal extension is enabled — it only adds
    // banners.
    let detector_config = wikistale_core::DetectorConfig {
        experiment: experiment_config(args)?,
        seasonal: Some(wikistale_core::predictors::SeasonalParams::default()),
        ..Default::default()
    };
    let detector = wikistale_core::StalenessDetector::train_until(
        &cube,
        window_range.start(),
        &detector_config,
    )
    .map_err(|e| e.to_string())?;
    let flags = detector.flag(window_range);
    println!(
        "{} stale-candidate banners in [{} .. {}) — showing up to {limit}:",
        flags.len(),
        window_range.start(),
        window_range.end()
    );
    for flag in flags.iter().take(limit) {
        print!("{}", flag.render(&detector.data()));
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "xml"])?;
    let cube = load_cube(args.require("in")?)?;
    let xml_path = args.require("xml")?;
    let pages = wikistale_wikitext::cube_to_dump(&cube);
    let xml = wikistale_wikitext::render_export(&pages);
    std::fs::write(xml_path, xml).map_err(|e| format!("cannot write {xml_path}: {e}"))?;
    println!(
        "exported {} changes as {} pages → {xml_path}",
        cube.num_changes(),
        pages.len()
    );
    Ok(())
}

fn cmd_slice(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "from", "to", "out"])?;
    let cube = load_cube(args.require("in")?)?;
    let from: Date = args
        .require("from")?
        .parse()
        .map_err(|e| format!("--from: {e}"))?;
    let to: Date = args
        .require("to")?
        .parse()
        .map_err(|e| format!("--to: {e}"))?;
    if to <= from {
        return Err("--to must be after --from".into());
    }
    let out = args.require("out")?;
    let sliced = wikistale_wikicube::slice(&cube, DateRange::new(from, to));
    save_cube(&sliced, out)?;
    println!(
        "sliced [{from} .. {to}): {} of {} changes → {out}",
        sliced.num_changes(),
        cube.num_changes()
    );
    Ok(())
}

fn cmd_merge(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["out"])?;
    let out = args.require("out")?;
    let mut inputs = Vec::new();
    let mut i = 1;
    while let Some(path) = args.positional(i) {
        inputs.push(load_cube(path)?);
        i += 1;
    }
    if inputs.len() < 2 {
        return Err("merge needs at least two input cubes".into());
    }
    let merged = wikistale_wikicube::merge(inputs.iter()).map_err(|e| e.to_string())?;
    save_cube(&merged, out)?;
    println!(
        "merged {} cubes into {} changes over {} entities → {out}",
        inputs.len(),
        merged.num_changes(),
        merged.num_entities()
    );
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "by", "k", "kind"])?;
    let cube = load_cube(args.require("in")?)?;
    let k: usize = args.get_parsed::<usize>("k")?.unwrap_or(20);
    let mut query = wikistale_wikicube::olap::CubeQuery::new(&cube);
    if let Some(kind) = args.get("kind") {
        query = query.of_kind(match kind {
            "create" => wikistale_wikicube::ChangeKind::Create,
            "update" => wikistale_wikicube::ChangeKind::Update,
            "delete" => wikistale_wikicube::ChangeKind::Delete,
            other => return Err(format!("unknown kind {other:?} (create|update|delete)")),
        });
    }
    use wikistale_wikicube::olap::top_k;
    match args.require("by")? {
        "template" => {
            for (id, n) in top_k(&query.counts_by_template(), k) {
                println!("{n:>10}  {}", cube.template_name(id));
            }
        }
        "property" => {
            for (id, n) in top_k(&query.counts_by_property(), k) {
                println!("{n:>10}  {}", cube.property_name(id));
            }
        }
        "page" => {
            for (id, n) in top_k(&query.counts_by_page(), k) {
                println!("{n:>10}  {}", cube.page_title(id));
            }
        }
        other => {
            return Err(format!(
                "unknown dimension {other:?} (template|property|page)"
            ))
        }
    }
    Ok(())
}

fn cmd_figures(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "out-dir"])?;
    let cube = load_cube(args.require("in")?)?;
    let out_dir = std::path::Path::new(args.require("out-dir")?);
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let span = cube.time_span().ok_or("cube is empty")?;
    let split = EvalSplit::for_span(span)
        .ok_or("cube spans less than the two years needed for validation + test")?;
    let results = run_paper_evaluation(&cube, &split, &ExperimentConfig::default());
    let f3 = out_dir.join("figure3.svg");
    std::fs::write(&f3, wikistale_core::figures::figure3_svg(&results))
        .map_err(|e| format!("cannot write {}: {e}", f3.display()))?;
    println!("wrote {}", f3.display());
    if let Some(svg) = wikistale_core::figures::figure4_svg(&results) {
        let f4 = out_dir.join("figure4.svg");
        std::fs::write(&f4, svg).map_err(|e| format!("cannot write {}: {e}", f4.display()))?;
        println!("wrote {}", f4.display());
    }
    Ok(())
}

fn cmd_anomalies(args: &Args) -> Result<(), String> {
    reject_unknown(args, &["in", "limit"])?;
    let cube = load_cube(args.require("in")?)?;
    let limit: usize = args.get_parsed::<usize>("limit")?.unwrap_or(25);
    let index = CubeIndex::build(&cube);
    let anomalies = wikistale_core::find_counter_anomalies(
        &cube,
        &index,
        &wikistale_core::AnomalyParams::default(),
    );
    println!(
        "{} counter anomalies (the §5.4 typo pattern) — showing up to {limit}:",
        anomalies.len()
    );
    for a in anomalies.iter().take(limit) {
        println!(
            "  {} {:<40} {:<24} {} → {} ({})",
            a.day,
            cube.page_title(cube.page_of(a.field.entity)),
            cube.property_name(a.field.property),
            a.previous,
            a.value,
            match a.kind {
                wikistale_core::AnomalyKind::Collapse => "suspicious collapse",
                wikistale_core::AnomalyKind::Correction => "likely bulk correction",
            }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<(), String> {
        run(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run_words(&[]).is_ok());
        assert!(run_words(&["help"]).is_ok());
        let err = run_words(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = run_words(&["generate", "--ouput", "x"]).unwrap_err();
        assert!(err.contains("--ouput"), "{err}");
    }

    #[test]
    fn generate_requires_out() {
        let err = run_words(&["generate", "--preset", "tiny"]).unwrap_err();
        assert!(err.contains("--out"));
        let err = run_words(&["generate", "--preset", "nope", "--out", "/tmp/x"]).unwrap_err();
        assert!(err.contains("unknown preset"));
    }

    #[test]
    fn full_cli_round_trip_on_tiny_corpus() {
        let dir = std::env::temp_dir().join("wikistale-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let filtered = dir.join("filtered.wcube");
        run_words(&[
            "generate",
            "--preset",
            "tiny",
            "--out",
            raw.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&["stats", "--in", raw.to_str().unwrap()]).unwrap();
        run_words(&[
            "filter",
            "--in",
            raw.to_str().unwrap(),
            "--out",
            filtered.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&["evaluate", "--in", filtered.to_str().unwrap(), "--vs-paper"]).unwrap();
        run_words(&[
            "monitor",
            "--in",
            filtered.to_str().unwrap(),
            "--at",
            "2019-06-01",
            "--window",
            "7",
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitor_rejects_bad_dates_and_windows() {
        let dir = std::env::temp_dir().join("wikistale-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        run_words(&[
            "generate",
            "--preset",
            "tiny",
            "--out",
            raw.to_str().unwrap(),
        ])
        .unwrap();
        let raw = raw.to_str().unwrap();
        assert!(run_words(&["monitor", "--in", raw, "--at", "junk"]).is_err());
        assert!(run_words(&[
            "monitor",
            "--in",
            raw,
            "--at",
            "2019-06-01",
            "--window",
            "0"
        ])
        .is_err());
        assert!(run_words(&["monitor", "--in", raw, "--at", "1990-01-01"]).is_err());
        std::fs::remove_dir_all(std::env::temp_dir().join("wikistale-cli-test2")).ok();
    }

    #[test]
    fn evaluate_rejects_missing_file() {
        assert!(run_words(&["evaluate", "--in", "/nonexistent/x.wcube"]).is_err());
    }

    #[test]
    fn top_and_anomalies_commands() {
        let dir = std::env::temp_dir().join("wikistale-cli-top-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let raw_s = raw.to_str().unwrap();
        run_words(&["generate", "--preset", "tiny", "--out", raw_s]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "template", "--k", "5"]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "property", "--kind", "update"]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "page"]).unwrap();
        assert!(run_words(&["top", "--in", raw_s, "--by", "color"]).is_err());
        assert!(run_words(&["top", "--in", raw_s, "--by", "page", "--kind", "x"]).is_err());
        run_words(&["anomalies", "--in", raw_s, "--limit", "3"]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_slice_merge_round_trip() {
        let dir = std::env::temp_dir().join("wikistale-cli-ops-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let raw_s = raw.to_str().unwrap();
        run_words(&["generate", "--preset", "tiny", "--out", raw_s]).unwrap();

        // Export to XML and re-ingest: change counts survive (the tiny
        // corpus's same-day churn collapses to snapshots, so counts can
        // only shrink, never grow).
        let xml = dir.join("dump.xml");
        let back = dir.join("back.wcube");
        run_words(&["export", "--in", raw_s, "--xml", xml.to_str().unwrap()]).unwrap();
        run_words(&[
            "ingest",
            "--xml",
            xml.to_str().unwrap(),
            "--out",
            back.to_str().unwrap(),
        ])
        .unwrap();
        assert!(back.exists());

        // Slice into two halves and merge back: no changes lost.
        let left = dir.join("left.wcube");
        let right = dir.join("right.wcube");
        let merged = dir.join("merged.wcube");
        run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2014-01-01",
            "--to",
            "2017-01-01",
            "--out",
            left.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2017-01-01",
            "--to",
            "2019-12-31",
            "--out",
            right.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&[
            "merge",
            left.to_str().unwrap(),
            right.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ])
        .unwrap();
        let original = wikistale_wikicube::binio::read_from_path(&raw).unwrap();
        let remerged = wikistale_wikicube::binio::read_from_path(&merged).unwrap();
        assert_eq!(original.num_changes(), remerged.num_changes());

        // Error paths.
        assert!(run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2018-01-01",
            "--to",
            "2017-01-01",
            "--out",
            "/tmp/x.wcube"
        ])
        .is_err());
        assert!(run_words(&["merge", raw_s, "--out", "/tmp/x.wcube"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
