//! Subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use std::path::{Path, PathBuf};
use wikistale_apriori::Support;
use wikistale_core::checkpoint::{self, CheckpointManifest};
use wikistale_core::experiment::{
    run_paper_evaluation, run_paper_evaluation_resumable, run_paper_evaluation_serial,
    ExperimentConfig, PaperResults,
};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictors::DistanceNorm;
use wikistale_core::report;
use wikistale_core::split::EvalSplit;
use wikistale_synth::SynthConfig;
use wikistale_wikicube::{binio, ChangeCube, CorpusStats, CubeIndex, Date, DateRange};
use wikistale_wikitext::{ErrorBudget, PageStream};

const USAGE: &str = "\
wikistale — detect stale data in Wikipedia infoboxes (EDBT 2023 reproduction)

USAGE:
  wikistale generate --out <cube> [--preset tiny|small|medium] [--seed N] [--scale F]
  wikistale ingest   --xml <dump.xml> --out <cube> [--lossy] [--error-budget PCT]
                     [--quarantine <report.json>]
  wikistale stats    --in <cube>
  wikistale filter   --in <cube> --out <cube> [--no-min-changes]
  wikistale evaluate --in <filtered-cube> [--vs-paper] [--theta F]
                     [--support F] [--confidence F] [--day-count-norm]
  wikistale monitor  --in <filtered-cube> --at YYYY-MM-DD [--window DAYS]
  wikistale export   --in <cube> --xml <dump.xml>
  wikistale slice    --in <cube> --from YYYY-MM-DD --to YYYY-MM-DD --out <cube>
  wikistale merge    --out <cube> <cube…>
  wikistale anomalies --in <cube> [--limit N]
  wikistale top      --in <cube> --by template|property|page [--k N] [--kind create|update|delete]
  wikistale figures  --in <filtered-cube> --out-dir <dir>
  wikistale experiment [--preset tiny|small|medium] [--seed N] [--scale F]
                     [--no-min-changes] [--vs-paper] [--theta F]
                     [--support F] [--confidence F] [--day-count-norm]
                     [--checkpoint-dir <dir>] [--resume]
  wikistale bench    [--preset tiny|small|medium] [--seed N] [--scale F]
                     [--no-min-changes] [--out <BENCH_parallel.json>]
  wikistale bench pipeline [--scale tiny|small|medium] [--seed N]
                     [--out <BENCH_pipeline.json>]
  wikistale serve    --artifacts <checkpoint-dir> [--addr HOST:PORT]
                     [--queue-limit N] [--deadline-ms N] [--cache-entries N]
                     [--theta F] [--support F] [--confidence F] [--day-count-norm]
  wikistale loadgen  --artifacts <checkpoint-dir> [--addr HOST:PORT]
                     [--connections N] [--requests M] [--seed N] [--work-ms N]
                     [--out <BENCH_serve.json>] [--queue-limit N]
                     [--deadline-ms N] [--cache-entries N]
                     [--theta F] [--support F] [--confidence F] [--day-count-norm]

Every subcommand additionally accepts:
  --metrics <path>            write a pipeline-stage metrics report
                              (use `-` for stdout)
  --metrics-format json|table report format (default json)
  --threads N                 worker threads for the parallel stages
                              (default: WIKISTALE_THREADS, else all
                              cores; results are byte-identical at any
                              thread count)

`ingest --lossy` quarantines malformed pages instead of aborting; a
summary of everything skipped goes to stderr, the full report to
`--quarantine <path>` as JSON. `--error-budget 0.5` aborts once more
than 0.5 % of pages were quarantined (implies --lossy).

`experiment` runs the whole pipeline — generate, filter, train, predict,
evaluate — serially in one process, so the metrics stage tree nests and
its top-level stage times sum to the wall time. With
`--checkpoint-dir <dir>` each completed stage is recorded there
atomically, and `--resume` picks up after a crash, skipping verified
finished work; results are identical to an uninterrupted run.

`bench` runs the full pipeline twice — once at --threads 1, once at the
resolved parallel thread count — verifies the results match exactly, and
records both wall times plus per-stage timings as JSON (default
BENCH_parallel.json).

`bench pipeline` times every stage of the end-to-end pipeline
(synth → filter → cube → train → predict → eval) at --threads 1 and at
the resolved parallel thread count, recording wall time and peak
allocator bytes per stage plus the columnar change-table and day-store
memory versus their row-layout baselines (default BENCH_pipeline.json).
The two legs' predictions must be byte-identical or the command fails.

`serve` loads the CRC-verified `filter` stage artifact from an
`experiment --checkpoint-dir` directory, re-trains the predictors
deterministically, and answers staleness queries over HTTP/1.1 until
SIGINT/SIGTERM, then drains in-flight requests:
  GET  /healthz                        liveness + artifact generation
  GET  /metrics[?format=json|table]    live pipeline metrics
  GET  /v1/stale/{page}[?at=D&window=N] flagged fields with provenance
  POST /v1/score                       batch (entity, property, window)
Admission is bounded: past --queue-limit queued connections the server
sheds 503 + Retry-After; requests exceeding --deadline-ms get 504.
`--threads` sets the worker pool; responses are byte-identical at any
thread count. `--addr 127.0.0.1:0` picks an ephemeral port (printed).

`loadgen` drives a server with a seeded deterministic request mix and
reports exact p50/p95/p99 latency plus the 503 shed rate as JSON
(default BENCH_serve.json). Without --addr it self-hosts a server on an
ephemeral loopback port using the same artifacts. `--work-ms` inflates
request service time to demonstrate admission shedding.

Cube files use the versioned wikicube binary format (.wcube).

EXIT CODES:
  0 success   1 other failure       2 usage error
  3 i/o error 4 corrupt input       5 error budget exceeded
";

/// Dispatch `argv`; returns a classified error for the user on failure.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv);
    // Each invocation reports its own pipeline run (tests call `run`
    // several times per process).
    wikistale_obs::MetricsRegistry::global().reset();
    // --threads is global like --metrics. Absent, the worker count falls
    // back to WIKISTALE_THREADS, then to the machine's parallelism; the
    // explicit reset matters because tests call `run` repeatedly in one
    // process. Thread count never changes artifact bytes — only wall
    // time — so it is deliberately absent from checkpoint fingerprints.
    match get_parsed::<usize>(&args, "threads")? {
        Some(0) => return Err(CliError::Usage("--threads must be at least 1".into())),
        Some(n) => wikistale_exec::set_threads(n),
        None => wikistale_exec::set_threads(0),
    }
    let result = match args.positional(0) {
        None | Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("generate") => cmd_generate(&args),
        Some("ingest") => cmd_ingest(&args),
        Some("stats") => cmd_stats(&args),
        Some("filter") => cmd_filter(&args),
        Some("evaluate") => cmd_evaluate(&args),
        Some("experiment") => cmd_experiment(&args),
        Some("monitor") => cmd_monitor(&args),
        Some("export") => cmd_export(&args),
        Some("slice") => cmd_slice(&args),
        Some("merge") => cmd_merge(&args),
        Some("anomalies") => cmd_anomalies(&args),
        Some("top") => cmd_top(&args),
        Some("figures") => cmd_figures(&args),
        Some("bench") => cmd_bench(&args),
        Some("serve") => cmd_serve(&args),
        Some("loadgen") => cmd_loadgen(&args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    if result.is_ok() {
        // `serve`/`loadgen` reuse --metrics-format as the default
        // rendering of the live /metrics route; for them a pipeline
        // metrics report is only written when --metrics asks for one.
        let serve_like = matches!(args.positional(0), Some("serve" | "loadgen"));
        if !serve_like || args.has("metrics") {
            write_metrics(&args)?;
        }
    }
    result
}

fn reject_unknown(args: &Args, known: &[&str]) -> Result<(), CliError> {
    // The metrics and threading flags are accepted by every subcommand.
    let mut known: Vec<&str> = known.to_vec();
    known.extend(["metrics", "metrics-format", "threads"]);
    let unknown = args.unknown_flags(&known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(CliError::Usage(format!(
            "unknown flag(s): --{}",
            unknown.join(", --")
        )))
    }
}

/// A required flag's value, as a usage error when missing.
fn require<'a>(args: &'a Args, name: &str) -> Result<&'a str, CliError> {
    args.require(name).map_err(CliError::Usage)
}

/// An optional typed flag, as a usage error when unparseable.
fn get_parsed<T: std::str::FromStr>(args: &Args, name: &str) -> Result<Option<T>, CliError> {
    args.get_parsed::<T>(name).map_err(CliError::Usage)
}

/// Honor `--metrics <path>` / `--metrics-format {json,table}` after a
/// successful command: render the global registry and write it out
/// (`-` or an empty value prints to stdout).
fn write_metrics(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.get("metrics") else {
        if args.has("metrics-format") {
            return Err(CliError::Usage("--metrics-format needs --metrics".into()));
        }
        return Ok(());
    };
    let registry = wikistale_obs::MetricsRegistry::global();
    let rendered = match args.get("metrics-format").unwrap_or("json") {
        "json" => registry.render_json(),
        "table" => registry.render_table(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown metrics format {other:?} (json|table)"
            )))
        }
    };
    if path.is_empty() || path == "-" {
        print!("{rendered}");
    } else {
        std::fs::write(path, &rendered)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        println!("wrote metrics → {path}");
    }
    Ok(())
}

fn load_cube(path: &str) -> Result<ChangeCube, CliError> {
    binio::read_from_path(Path::new(path))
        .map_err(|e| CliError::from_cube(&format!("cannot read {path}"), e))
}

fn save_cube(cube: &ChangeCube, path: &str) -> Result<(), CliError> {
    binio::write_to_path(cube, Path::new(path))
        .map_err(|e| CliError::from_cube(&format!("cannot write {path}"), e))
}

fn synth_config(args: &Args) -> Result<SynthConfig, CliError> {
    let mut config = match args.get("preset").unwrap_or("small") {
        "tiny" => SynthConfig::tiny(),
        "small" => SynthConfig::small(),
        "medium" => SynthConfig::medium(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown preset {other:?} (tiny|small|medium)"
            )))
        }
    };
    if let Some(seed) = get_parsed::<u64>(args, "seed")? {
        config.seed = seed;
    }
    if let Some(scale) = get_parsed::<f64>(args, "scale")? {
        if scale <= 0.0 {
            return Err(CliError::Usage("--scale must be positive".into()));
        }
        config = config.scaled(scale);
    }
    Ok(config)
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["preset", "seed", "scale", "out"])?;
    let config = synth_config(args)?;
    let out = require(args, "out")?;
    let corpus = wikistale_synth::try_generate(&config)?;
    save_cube(&corpus.cube, out)?;
    println!(
        "generated {} changes over {} entities / {} templates → {out}",
        corpus.cube.num_changes(),
        corpus.cube.num_entities(),
        corpus.cube.num_templates()
    );
    println!(
        "ground truth: {} forgotten updates (true staleness)",
        corpus.ground_truth.len()
    );
    Ok(())
}

fn cmd_ingest(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "xml",
            "out",
            "all-namespaces",
            "lossy",
            "error-budget",
            "quarantine",
        ],
    )?;
    let xml_path = require(args, "xml")?;
    let out = require(args, "out")?;
    let all_namespaces = args.has("all-namespaces");
    let budget_pct = get_parsed::<f64>(args, "error-budget")?;
    if let Some(pct) = budget_pct {
        if !(0.0..=100.0).contains(&pct) {
            return Err(CliError::Usage(
                "--error-budget must be a percentage in [0, 100]".into(),
            ));
        }
    }
    let lossy = args.has("lossy") || budget_pct.is_some();
    if args.has("quarantine") && !lossy {
        return Err(CliError::Usage(
            "--quarantine needs --lossy or --error-budget".into(),
        ));
    }

    // Stream page by page: full-history dumps do not fit in memory.
    let file = std::fs::File::open(xml_path)
        .map_err(|e| CliError::Io(format!("cannot read {xml_path}: {e}")))?;
    let reader = std::io::BufReader::new(file);
    let mut stream = match budget_pct {
        Some(pct) => PageStream::lossy_with_budget(reader, ErrorBudget::fraction(pct / 100.0)),
        None if lossy => PageStream::lossy(reader),
        None => PageStream::new(reader),
    };
    let mut acc = wikistale_wikitext::diff::CubeAccumulator::new();
    let mut skipped = 0usize;
    let mut failure: Option<CliError> = None;
    for page in &mut stream {
        let page = match page {
            Ok(page) => page,
            Err(e) => {
                failure = Some(CliError::from_stream(xml_path, e));
                break;
            }
        };
        if all_namespaces || wikistale_wikitext::diff::is_article_title(&page.title) {
            acc.add_page(&page);
        } else {
            skipped += 1;
        }
    }

    // The quarantine summary goes out even (especially) when the run
    // aborted on an exhausted budget: that is the post-mortem.
    let report = stream.into_quarantine();
    if !report.is_clean() {
        eprintln!("{}", report.summary());
        for entry in report.entries().iter().take(5) {
            eprintln!(
                "  {} @ byte {} (+{}): {}",
                entry.title.as_deref().unwrap_or("<unknown page>"),
                entry.byte_offset,
                entry.byte_len,
                entry.error
            );
        }
        if report.entries().len() > 5 {
            eprintln!("  … ({} entries total)", report.entries().len());
        }
    }
    if let Some(qpath) = args.get("quarantine") {
        std::fs::write(qpath, report.render_json())
            .map_err(|e| CliError::Io(format!("cannot write {qpath}: {e}")))?;
        eprintln!("wrote quarantine report → {qpath}");
    }
    if let Some(e) = failure {
        return Err(e);
    }

    let pages = acc.pages_seen();
    let cube = acc.finish();
    save_cube(&cube, out)?;
    println!(
        "ingested {} pages ({} non-article pages skipped) → {} changes over {} infoboxes → {out}",
        pages,
        skipped,
        cube.num_changes(),
        cube.num_entities()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in"])?;
    let cube = load_cube(require(args, "in")?)?;
    let stats = CorpusStats::compute(&cube);
    println!("changes        {}", stats.total_changes);
    println!(
        "  creates      {} ({:.2} %)   [paper: 50.6 %]",
        stats.by_kind[0],
        100.0 * stats.create_fraction()
    );
    println!(
        "  updates      {} ({:.2} %)",
        stats.by_kind[1],
        100.0 * stats.by_kind[1] as f64 / stats.total_changes.max(1) as f64
    );
    println!(
        "  deletes      {} ({:.2} %)   [paper: 20.3 %]",
        stats.by_kind[2],
        100.0 * stats.delete_fraction()
    );
    println!(
        "bot-reverted   {} ({:.4} %)  [paper: 0.008 %]",
        stats.bot_reverted,
        100.0 * stats.bot_reverted_fraction()
    );
    println!(
        "same-day dups  {} ({:.2} %)  [paper: 19.185 %]",
        stats.same_day_duplicates,
        100.0 * stats.same_day_duplicate_fraction()
    );
    println!("fields         {}", stats.distinct_fields);
    println!(
        "  sparse (<{}) {}",
        stats.min_changes_threshold, stats.fields_below_min_changes
    );
    println!("entities       {}", stats.active_entities);
    println!("templates      {}", stats.active_templates);
    if let Some(span) = stats.time_span {
        println!("span           {span}");
    }
    Ok(())
}

fn cmd_filter(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "out", "no-min-changes"])?;
    let cube = load_cube(require(args, "in")?)?;
    let out = require(args, "out")?;
    let pipeline = if args.has("no-min-changes") {
        FilterPipeline::without_min_changes()
    } else {
        FilterPipeline::paper()
    };
    let (filtered, report) = pipeline.apply(&cube);
    for (i, stage) in report.stages.iter().enumerate() {
        println!(
            "{:<28} removed {:>9} ({:>6.3} % of original)",
            stage.name,
            stage.removed,
            100.0 * report.removed_fraction_of_original(i)
        );
    }
    println!(
        "surviving                    {:>9} ({:>6.3} % of original)  [paper: 9.2 %]",
        filtered.num_changes(),
        100.0 * report.surviving_fraction()
    );
    save_cube(&filtered, out)?;
    println!("wrote {out}");
    Ok(())
}

fn experiment_config(args: &Args) -> Result<ExperimentConfig, CliError> {
    let mut config = ExperimentConfig::default();
    if let Some(theta) = get_parsed::<f64>(args, "theta")? {
        config.field_corr.theta = theta;
    }
    if args.has("day-count-norm") {
        config.field_corr.norm = DistanceNorm::DayCount;
    }
    if let Some(support) = get_parsed::<f64>(args, "support")? {
        config.assoc.apriori.min_support = Support::Fraction(support);
    }
    if let Some(confidence) = get_parsed::<f64>(args, "confidence")? {
        config.assoc.apriori.min_confidence = confidence;
    }
    Ok(config)
}

fn cmd_evaluate(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "in",
            "vs-paper",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
        ],
    )?;
    let cube = load_cube(require(args, "in")?)?;
    let span = cube
        .time_span()
        .ok_or_else(|| CliError::Other("cube is empty — nothing to evaluate".into()))?;
    let split = EvalSplit::for_span(span).ok_or_else(|| {
        CliError::Other("cube spans less than the two years needed for validation + test".into())
    })?;
    let config = experiment_config(args)?;
    let results = run_paper_evaluation(&cube, &split, &config);
    if args.has("vs-paper") {
        println!("{}", report::render_table1_vs_paper(&results));
    } else {
        println!("{}", report::render_table1(&results));
    }
    println!("{}", report::render_overlap(&results));
    println!("{}", report::render_figure3(&results));
    Ok(())
}

/// Exit code of the `--crash-after` fault-injection hook: distinct from
/// every real failure code so the chaos tests can tell a simulated crash
/// from an actual error.
pub const CRASH_EXIT_CODE: u8 = 42;

/// In a checkpointed experiment, obtain the cube of an
/// artifact-producing stage: reuse the verified checkpoint artifact when
/// resuming, otherwise compute it and (when checkpointing) persist it
/// atomically and record it in the manifest.
fn stage_cube(
    ckpt_dir: Option<&Path>,
    manifest: &mut CheckpointManifest,
    resume: bool,
    crash_after: Option<&str>,
    name: &str,
    compute: impl FnOnce() -> Result<ChangeCube, CliError>,
) -> Result<ChangeCube, CliError> {
    if let (Some(dir), true) = (ckpt_dir, resume) {
        if let Some(bytes) = manifest
            .verified_stage_bytes(dir, name)
            .map_err(CliError::from_checkpoint)?
        {
            let cube = binio::decode(&bytes)
                .map_err(|e| CliError::from_cube(&format!("checkpoint stage {name}"), e))?;
            eprintln!("resume: reusing checkpointed {name} stage");
            return Ok(cube);
        }
    }
    let cube = compute()?;
    if let Some(dir) = ckpt_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let file = format!("{name}.wcube");
        let bytes = binio::encode(&cube);
        binio::write_bytes_atomic(&dir.join(&file), &bytes)
            .map_err(|e| CliError::Io(format!("cannot write checkpoint {file}: {e}")))?;
        manifest.record_stage(name, &file, &bytes);
        manifest.save(dir).map_err(CliError::from_checkpoint)?;
    }
    maybe_crash(crash_after, name);
    Ok(cube)
}

/// The `--crash-after <stage>` hook: once the named stage has completed
/// *and its checkpoint is durable*, die abruptly — the closest a test
/// can get to yanking the power cord at the worst moment.
fn maybe_crash(crash_after: Option<&str>, completed: &str) {
    if crash_after == Some(completed) {
        eprintln!("simulated crash after stage {completed:?}");
        std::process::exit(i32::from(CRASH_EXIT_CODE));
    }
}

fn cmd_experiment(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "preset",
            "seed",
            "scale",
            "no-min-changes",
            "vs-paper",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
            "checkpoint-dir",
            "resume",
            "crash-after",
        ],
    )?;
    let config = synth_config(args)?;
    let no_min_changes = args.has("no-min-changes");
    let exp_config = experiment_config(args)?;
    let ckpt_dir = args.get("checkpoint-dir").map(PathBuf::from);
    let resume = args.has("resume");
    let crash_after = args.get("crash-after");
    if (resume || crash_after.is_some()) && ckpt_dir.is_none() {
        return Err(CliError::Usage(
            "--resume / --crash-after need --checkpoint-dir".into(),
        ));
    }

    // The checkpoint is bound to the exact configuration; the Debug
    // formats cover every tunable (seed, scale, thresholds, …). The
    // thread count is deliberately NOT part of the fingerprint: the
    // execution layer guarantees byte-identical artifacts at any
    // --threads value, so a checkpoint written at --threads 1 must
    // resume under --threads 4 and vice versa (the differential suite
    // pins this).
    let fp = checkpoint::fingerprint(&format!(
        "{config:?}|no-min-changes={no_min_changes}|{exp_config:?}"
    ));
    let mut manifest = match (&ckpt_dir, resume) {
        (Some(dir), true) => CheckpointManifest::load_expecting(dir, &fp)
            .map_err(CliError::from_checkpoint)?
            .unwrap_or_else(|| CheckpointManifest::new(&fp)),
        _ => CheckpointManifest::new(&fp),
    };

    let wall = std::time::Instant::now();
    let raw = stage_cube(
        ckpt_dir.as_deref(),
        &mut manifest,
        resume,
        crash_after,
        "generate",
        || Ok(wikistale_synth::try_generate(&config)?.cube),
    )?;
    let filtered = stage_cube(
        ckpt_dir.as_deref(),
        &mut manifest,
        resume,
        crash_after,
        "filter",
        || {
            let pipeline = if no_min_changes {
                FilterPipeline::without_min_changes()
            } else {
                FilterPipeline::paper()
            };
            Ok(pipeline.apply(&raw).0)
        },
    )?;
    drop(raw);
    let span = filtered
        .time_span()
        .ok_or_else(|| CliError::Other("filtered cube is empty — nothing to evaluate".into()))?;
    let split = EvalSplit::for_span(span).ok_or_else(|| {
        CliError::Other("corpus spans less than the two years needed for validation + test".into())
    })?;
    // Serial on purpose: the metrics stage tree then nests under one
    // thread and its top-level stage times sum to the wall time.
    let results = run_paper_evaluation_resumable(
        &filtered,
        &split,
        &exp_config,
        &mut manifest,
        &mut |stage, manifest| {
            if let Some(dir) = &ckpt_dir {
                manifest.save(dir).map_err(|e| e.to_string())?;
            }
            maybe_crash(crash_after, stage);
            Ok(())
        },
    )?;
    // Reference point for the stage breakdown: generate → evaluate,
    // excluding report rendering below.
    wikistale_obs::MetricsRegistry::global()
        .gauge_set("experiment/wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    if args.has("vs-paper") {
        println!("{}", report::render_table1_vs_paper(&results));
    } else {
        println!("{}", report::render_table1(&results));
    }
    println!("{}", report::render_overlap(&results));
    Ok(())
}

/// What one `bench` leg reports: the evaluation results, the wall-clock
/// milliseconds, and the top-level per-stage timings (label, ms).
type BenchLeg = (PaperResults, f64, Vec<(String, f64)>);

/// One timed leg of `bench`: the full pipeline (generate → filter →
/// train → evaluate) at a pinned thread count, with a fresh metrics run
/// so the per-stage breakdown belongs to this leg alone.
fn bench_leg(
    config: &SynthConfig,
    exp_config: &ExperimentConfig,
    no_min_changes: bool,
    threads: usize,
) -> Result<BenchLeg, CliError> {
    wikistale_exec::set_threads(threads);
    let registry = wikistale_obs::MetricsRegistry::global();
    registry.reset();
    let wall = std::time::Instant::now();
    let corpus = wikistale_synth::try_generate(config)?;
    let pipeline = if no_min_changes {
        FilterPipeline::without_min_changes()
    } else {
        FilterPipeline::paper()
    };
    let (filtered, _) = pipeline.apply(&corpus.cube);
    drop(corpus);
    let span = filtered
        .time_span()
        .ok_or_else(|| CliError::Other("filtered cube is empty — nothing to bench".into()))?;
    let split = EvalSplit::for_span(span).ok_or_else(|| {
        CliError::Other("corpus spans less than the two years needed for validation + test".into())
    })?;
    let results = if threads <= 1 {
        run_paper_evaluation_serial(&filtered, &split, exp_config)
    } else {
        run_paper_evaluation(&filtered, &split, exp_config)
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let snapshot = registry.snapshot();
    let mut stages: Vec<(String, f64)> = snapshot
        .spans
        .iter()
        .filter(|(path, _)| !path.contains('/'))
        .map(|(path, stat)| (path.clone(), stat.total.as_secs_f64() * 1e3))
        .collect();
    stages.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok((results, wall_ms, stages))
}

fn bench_stage_json(stages: &[(String, f64)]) -> String {
    let entries: Vec<String> = stages
        .iter()
        .map(|(name, ms)| format!("    \"{}\": {:.3}", name.replace('"', ""), ms))
        .collect();
    format!("{{\n{}\n  }}", entries.join(",\n"))
}

fn cmd_bench(args: &Args) -> Result<(), CliError> {
    if args.positional(1) == Some("pipeline") {
        return cmd_bench_pipeline(args);
    }
    reject_unknown(
        args,
        &[
            "preset",
            "seed",
            "scale",
            "no-min-changes",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
            "out",
        ],
    )?;
    let config = synth_config(args)?;
    let exp_config = experiment_config(args)?;
    let no_min_changes = args.has("no-min-changes");
    let out = args.get("out").unwrap_or("BENCH_parallel.json");
    // Parallel leg: the resolved thread count, or 4 when the machine (or
    // configuration) resolves to a single worker — a 1-vs-1 comparison
    // would measure nothing.
    let resolved = wikistale_exec::threads();
    let parallel_threads = if resolved > 1 { resolved } else { 4 };

    let (serial_results, serial_ms, serial_stages) =
        bench_leg(&config, &exp_config, no_min_changes, 1)?;
    let (parallel_results, parallel_ms, parallel_stages) =
        bench_leg(&config, &exp_config, no_min_changes, parallel_threads)?;
    // Restore the dispatch-time configuration (each leg pinned its own).
    match get_parsed::<usize>(args, "threads")? {
        Some(n) => wikistale_exec::set_threads(n),
        None => wikistale_exec::set_threads(0),
    }

    // The bench doubles as an end-to-end differential check.
    if serial_results != parallel_results {
        return Err(CliError::Other(
            "bench: parallel results diverged from serial — determinism bug".into(),
        ));
    }
    let speedup = if parallel_ms > 0.0 {
        serial_ms / parallel_ms
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"preset\": \"{}\",\n  \"seed\": {},\n  \"threads\": {},\n  \
         \"serial_wall_ms\": {:.3},\n  \"parallel_wall_ms\": {:.3},\n  \
         \"speedup\": {:.4},\n  \"identical_results\": true,\n  \
         \"serial_stages_ms\": {},\n  \"parallel_stages_ms\": {}\n}}\n",
        args.get("preset").unwrap_or("small").replace('"', ""),
        config.seed,
        parallel_threads,
        serial_ms,
        parallel_ms,
        speedup,
        bench_stage_json(&serial_stages),
        bench_stage_json(&parallel_stages),
    );
    std::fs::write(out, &json).map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    println!(
        "bench: serial {serial_ms:.0} ms, parallel ({parallel_threads} threads) \
         {parallel_ms:.0} ms, speedup {speedup:.2}x"
    );
    println!("bench: serial and parallel results identical");
    println!("wrote bench report → {out}");
    Ok(())
}

/// One timed stage of `bench pipeline`: wall time plus heap usage (peak
/// above the stage's baseline, and bytes still live when it finished).
struct PipelineStage {
    name: &'static str,
    wall_ms: f64,
    peak_alloc_bytes: u64,
    retained_bytes: u64,
}

/// Run `f` as one named pipeline stage, recording its wall time and
/// allocator high-water mark into `stages`.
fn pipeline_stage<T>(
    name: &'static str,
    stages: &mut Vec<PipelineStage>,
    f: impl FnOnce() -> T,
) -> T {
    let scope = wikistale_obs::alloc::AllocScope::begin();
    let wall = std::time::Instant::now();
    let value = f();
    stages.push(PipelineStage {
        name,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        peak_alloc_bytes: scope.peak_delta() as u64,
        retained_bytes: scope.retained_delta() as u64,
    });
    value
}

/// Memory layout of the filtered cube's hot data plane, with the
/// row-layout baselines the columnar representation is measured against.
struct CubeMemory {
    num_changes: usize,
    change_table_bytes: usize,
    row_layout_baseline_bytes: usize,
    day_store_bytes: usize,
    day_store_decoded_baseline_bytes: usize,
}

/// What one `bench pipeline` leg produced: stage timings plus the exact
/// prediction sets and evaluation outcomes, for the cross-leg
/// determinism check.
struct PipelineLeg {
    threads: usize,
    wall_ms: f64,
    stages: Vec<PipelineStage>,
    memory: CubeMemory,
    predicted: Vec<wikistale_core::scoring::PredictedSets>,
    outcomes: Vec<Vec<wikistale_core::EvalOutcome>>,
}

/// One leg of `bench pipeline`: the full synth → filter → cube → train →
/// predict → eval pipeline at a pinned thread count, each stage timed
/// and memory-profiled separately.
fn pipeline_leg(
    config: &SynthConfig,
    exp_config: &ExperimentConfig,
    threads: usize,
) -> Result<PipelineLeg, CliError> {
    use wikistale_core::experiment::TrainedPredictors;
    use wikistale_core::scoring::predict_all;
    use wikistale_core::{truth_set, EvalData, GRANULARITIES};
    wikistale_exec::set_threads(threads);
    let mut stages = Vec::new();
    let wall = std::time::Instant::now();
    let corpus = pipeline_stage("synth", &mut stages, || {
        wikistale_synth::try_generate(config)
    })?;
    let filtered = pipeline_stage("filter", &mut stages, || {
        FilterPipeline::paper().apply(&corpus.cube).0
    });
    drop(corpus);
    let span = filtered
        .time_span()
        .ok_or_else(|| CliError::Other("filtered cube is empty — nothing to bench".into()))?;
    let split = EvalSplit::for_span(span).ok_or_else(|| {
        CliError::Other("corpus spans less than the two years needed for validation + test".into())
    })?;
    // "cube": materialize the shared delta-encoded day-list store and the
    // evaluation index over it.
    let index = pipeline_stage("cube", &mut stages, || {
        filtered.day_lists();
        CubeIndex::build(&filtered)
    });
    let day_store = filtered.day_lists();
    let memory = CubeMemory {
        num_changes: filtered.num_changes(),
        change_table_bytes: filtered.change_table_bytes(),
        row_layout_baseline_bytes: filtered.row_layout_baseline_bytes(),
        day_store_bytes: day_store.heap_bytes(),
        day_store_decoded_baseline_bytes: day_store.decoded_baseline_bytes(),
    };
    let data = EvalData::new(&filtered, &index);
    let predictors = pipeline_stage("train", &mut stages, || {
        TrainedPredictors::train(&data, split.train_and_validation(), exp_config)
    });
    let predicted: Vec<wikistale_core::scoring::PredictedSets> =
        pipeline_stage("predict", &mut stages, || {
            GRANULARITIES
                .iter()
                .map(|&g| predict_all(&data, &predictors, split.test, g))
                .collect()
        });
    let outcomes: Vec<Vec<wikistale_core::EvalOutcome>> =
        pipeline_stage("eval", &mut stages, || {
            GRANULARITIES
                .iter()
                .zip(&predicted)
                .map(|(&g, sets)| {
                    let truth = truth_set(&index, split.test, g);
                    [
                        &sets.mean,
                        &sets.threshold,
                        &sets.field_corr,
                        &sets.assoc,
                        &sets.and,
                        &sets.or,
                    ]
                    .into_iter()
                    .map(|set| wikistale_core::eval::evaluate(set, &truth))
                    .collect()
                })
                .collect()
        });
    Ok(PipelineLeg {
        threads,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        stages,
        memory,
        predicted,
        outcomes,
    })
}

fn pipeline_leg_json(leg: &PipelineLeg) -> String {
    let stages: Vec<String> = leg
        .stages
        .iter()
        .map(|s| {
            format!(
                "        {{\"name\": \"{}\", \"wall_ms\": {:.3}, \
                 \"peak_alloc_bytes\": {}, \"retained_bytes\": {}}}",
                s.name, s.wall_ms, s.peak_alloc_bytes, s.retained_bytes
            )
        })
        .collect();
    format!(
        "    {{\n      \"threads\": {},\n      \"wall_ms\": {:.3},\n      \
         \"stages\": [\n{}\n      ]\n    }}",
        leg.threads,
        leg.wall_ms,
        stages.join(",\n")
    )
}

fn cmd_bench_pipeline(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["scale", "seed", "out"])?;
    let scale = args.get("scale").unwrap_or("small");
    let mut config = match scale {
        "tiny" => SynthConfig::tiny(),
        "small" => SynthConfig::small(),
        "medium" => SynthConfig::medium(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown scale {other:?} (tiny|small|medium)"
            )))
        }
    };
    if let Some(seed) = get_parsed::<u64>(args, "seed")? {
        config.seed = seed;
    }
    let exp_config = ExperimentConfig::default();
    let out = args.get("out").unwrap_or("BENCH_pipeline.json");
    let resolved = wikistale_exec::threads();
    let parallel_threads = if resolved > 1 { resolved } else { 4 };

    let serial = pipeline_leg(&config, &exp_config, 1)?;
    let parallel = pipeline_leg(&config, &exp_config, parallel_threads)?;
    // Restore the dispatch-time thread configuration.
    match get_parsed::<usize>(args, "threads")? {
        Some(n) => wikistale_exec::set_threads(n),
        None => wikistale_exec::set_threads(0),
    }

    // The bench doubles as the end-to-end row-vs-columnar differential:
    // both legs must produce the exact same prediction sets and scores.
    if serial.predicted != parallel.predicted || serial.outcomes != parallel.outcomes {
        return Err(CliError::Other(
            "bench pipeline: parallel results diverged from serial — determinism bug".into(),
        ));
    }
    let m = &parallel.memory;
    let savings = |actual: usize, baseline: usize| {
        if baseline == 0 {
            0.0
        } else {
            1.0 - actual as f64 / baseline as f64
        }
    };
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"parallel_threads\": {},\n  \
         \"identical_results\": true,\n  \"legs\": [\n{},\n{}\n  ],\n  \
         \"memory\": {{\n    \"num_changes\": {},\n    \
         \"change_table_bytes\": {},\n    \"row_layout_baseline_bytes\": {},\n    \
         \"change_table_savings_fraction\": {:.4},\n    \
         \"day_store_bytes\": {},\n    \"day_store_decoded_baseline_bytes\": {},\n    \
         \"day_store_savings_fraction\": {:.4}\n  }}\n}}\n",
        scale.replace('"', ""),
        config.seed,
        parallel_threads,
        pipeline_leg_json(&serial),
        pipeline_leg_json(&parallel),
        m.num_changes,
        m.change_table_bytes,
        m.row_layout_baseline_bytes,
        savings(m.change_table_bytes, m.row_layout_baseline_bytes),
        m.day_store_bytes,
        m.day_store_decoded_baseline_bytes,
        savings(m.day_store_bytes, m.day_store_decoded_baseline_bytes),
    );
    std::fs::write(out, &json).map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    println!(
        "bench pipeline ({scale}): serial {:.0} ms, parallel ({} threads) {:.0} ms",
        serial.wall_ms, parallel.threads, parallel.wall_ms
    );
    println!(
        "{:<10} {:>12} {:>12} {:>16} {:>16}",
        "stage", "t1_ms", "tN_ms", "t1_peak_bytes", "tN_peak_bytes"
    );
    for (s1, sn) in serial.stages.iter().zip(&parallel.stages) {
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>16} {:>16}",
            s1.name, s1.wall_ms, sn.wall_ms, s1.peak_alloc_bytes, sn.peak_alloc_bytes
        );
    }
    println!(
        "memory: change table {} B vs row baseline {} B ({:.1} % saved); \
         day store {} B vs decoded baseline {} B ({:.1} % saved)",
        m.change_table_bytes,
        m.row_layout_baseline_bytes,
        100.0 * savings(m.change_table_bytes, m.row_layout_baseline_bytes),
        m.day_store_bytes,
        m.day_store_decoded_baseline_bytes,
        100.0 * savings(m.day_store_bytes, m.day_store_decoded_baseline_bytes),
    );
    println!("bench pipeline: serial and parallel results identical");
    println!("wrote pipeline report → {out}");
    Ok(())
}

/// Load the serving artifact set named by `--artifacts`, with the
/// shared predictor tuning flags folded into the cache generation.
fn load_serve_artifacts(args: &Args) -> Result<wikistale_serve::ServeArtifacts, CliError> {
    let dir = PathBuf::from(require(args, "artifacts")?);
    let config = experiment_config(args)?;
    wikistale_serve::ServeArtifacts::load(&dir, &config).map_err(CliError::from_artifact)
}

/// Parse the server tuning flags shared by `serve` and `loadgen`.
fn serve_server_config(args: &Args) -> Result<wikistale_serve::ServerConfig, CliError> {
    let mut config = wikistale_serve::ServerConfig::default();
    if let Some(threads) = get_parsed::<usize>(args, "threads")? {
        config.threads = threads;
    }
    match get_parsed::<usize>(args, "queue-limit")? {
        Some(0) => return Err(CliError::Usage("--queue-limit must be at least 1".into())),
        Some(limit) => config.queue_limit = limit,
        None => {}
    }
    match get_parsed::<u64>(args, "deadline-ms")? {
        Some(0) => return Err(CliError::Usage("--deadline-ms must be positive".into())),
        Some(ms) => config.deadline = std::time::Duration::from_millis(ms),
        None => {}
    }
    if let Some(entries) = get_parsed::<usize>(args, "cache-entries")? {
        config.cache_entries = entries;
    }
    if let Some(format) = args.get("metrics-format") {
        config.metrics_format = wikistale_serve::MetricsFormat::parse(format).ok_or_else(|| {
            CliError::Usage(format!(
                "--metrics-format must be json or table, got {format:?}"
            ))
        })?;
    }
    Ok(config)
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "artifacts",
            "addr",
            "queue-limit",
            "deadline-ms",
            "cache-entries",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
        ],
    )?;
    let artifacts = std::sync::Arc::new(load_serve_artifacts(args)?);
    let config = serve_server_config(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8780");
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("cannot resolve bound address: {e}")))?;
    println!(
        "wikistale serve: fingerprint {} · generation {}",
        artifacts.fingerprint, artifacts.generation
    );
    println!(
        "eval range {}..{} · {} threads · queue-limit {} · deadline {} ms · cache {}",
        artifacts.eval_range.start(),
        artifacts.eval_range.end(),
        config.threads,
        config.queue_limit,
        config.deadline.as_millis(),
        config.cache_entries,
    );
    // The "serving on" line is the machine-readable readiness signal
    // (tests and scripts parse the address out of it; stdout is
    // line-buffered so it flushes even when piped).
    println!("serving on http://{local}");
    wikistale_serve::server::signals::install();
    let server = wikistale_serve::Server::new(artifacts, config);
    server
        .run(listener)
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    println!("shutdown: drained in-flight requests");
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "artifacts",
            "addr",
            "connections",
            "requests",
            "seed",
            "work-ms",
            "out",
            "queue-limit",
            "deadline-ms",
            "cache-entries",
            "theta",
            "support",
            "confidence",
            "day-count-norm",
        ],
    )?;
    let artifacts = std::sync::Arc::new(load_serve_artifacts(args)?);
    let load_config = wikistale_serve::LoadConfig {
        connections: get_parsed::<usize>(args, "connections")?
            .unwrap_or(8)
            .max(1),
        requests: get_parsed::<usize>(args, "requests")?.unwrap_or(50).max(1),
        seed: get_parsed::<u64>(args, "seed")?.unwrap_or(42),
        work_ms: get_parsed::<u64>(args, "work-ms")?.unwrap_or(0),
    };
    let server_config = serve_server_config(args)?;
    let out = args.get("out").unwrap_or("BENCH_serve.json");

    let (report, self_hosted) = match args.get("addr") {
        Some(addr) => {
            let target: std::net::SocketAddr = addr
                .parse()
                .map_err(|e| CliError::Usage(format!("--addr: {e}")))?;
            println!("loadgen: targeting http://{target}");
            (
                wikistale_serve::loadgen::run(target, &artifacts, &load_config),
                false,
            )
        }
        None => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0")
                .map_err(|e| CliError::Io(format!("cannot bind loopback: {e}")))?;
            let server = wikistale_serve::Server::new(
                std::sync::Arc::clone(&artifacts),
                server_config.clone(),
            );
            let handle = server
                .spawn(listener)
                .map_err(|e| CliError::Io(format!("cannot start server: {e}")))?;
            println!("loadgen: self-hosting on http://{}", handle.addr());
            let report = wikistale_serve::loadgen::run(handle.addr(), &artifacts, &load_config);
            handle
                .stop()
                .map_err(|e| CliError::Io(format!("server drain: {e}")))?;
            (report, true)
        }
    };

    let json = format!(
        "{{\n  \"connections\": {},\n  \"requests_per_connection\": {},\n  \
         \"seed\": {},\n  \"work_ms\": {},\n  \"self_hosted\": {self_hosted},\n  \
         \"threads\": {},\n  \"queue_limit\": {},\n  \"deadline_ms\": {},\n  \
         \"generation\": {},\n  \"report\": {}\n}}\n",
        load_config.connections,
        load_config.requests,
        load_config.seed,
        load_config.work_ms,
        server_config.threads,
        server_config.queue_limit,
        server_config.deadline.as_millis(),
        wikistale_obs::json::escape(&artifacts.generation),
        report.render_json().trim_end(),
    );
    std::fs::write(out, &json).map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    println!(
        "loadgen: {} requests · {} ok · {} shed (rate {:.3}) · {} late · {} errors",
        report.total,
        report.ok,
        report.shed_503,
        report.shed_rate,
        report.deadline_504,
        report.errors,
    );
    println!(
        "loadgen: p50 {:.2} ms · p95 {:.2} ms · p99 {:.2} ms · max {:.2} ms · {:.0} req/s",
        report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms, report.rps,
    );
    println!("wrote load report → {out}");
    Ok(())
}

fn cmd_monitor(args: &Args) -> Result<(), CliError> {
    reject_unknown(
        args,
        &[
            "in",
            "at",
            "window",
            "theta",
            "support",
            "confidence",
            "limit",
        ],
    )?;
    let cube = load_cube(require(args, "in")?)?;
    let at: Date = require(args, "at")?
        .parse()
        .map_err(|e| CliError::Usage(format!("--at: {e}")))?;
    let window: u32 = get_parsed::<u32>(args, "window")?.unwrap_or(7);
    if window == 0 {
        return Err(CliError::Usage("--window must be positive".into()));
    }
    let limit: usize = get_parsed::<usize>(args, "limit")?.unwrap_or(25);
    let span = cube
        .time_span()
        .ok_or_else(|| CliError::Other("cube is empty".into()))?;
    let window_range = DateRange::new(at - window as i32, at);
    if window_range.start() <= span.start() {
        return Err(CliError::Usage(format!(
            "--at {at} leaves no history before the window (corpus starts {})",
            span.start()
        )));
    }

    // The deployment facade: filter (idempotent on already-filtered
    // cubes), train on everything before the window, flag with
    // explanations. The §6 seasonal extension is enabled — it only adds
    // banners.
    let detector_config = wikistale_core::DetectorConfig {
        experiment: experiment_config(args)?,
        seasonal: Some(wikistale_core::predictors::SeasonalParams::default()),
        ..Default::default()
    };
    let detector = wikistale_core::StalenessDetector::train_until(
        &cube,
        window_range.start(),
        &detector_config,
    )
    .map_err(|e| CliError::Other(e.to_string()))?;
    let flags = detector.flag(window_range);
    println!(
        "{} stale-candidate banners in [{} .. {}) — showing up to {limit}:",
        flags.len(),
        window_range.start(),
        window_range.end()
    );
    for flag in flags.iter().take(limit) {
        print!("{}", flag.render(&detector.data()));
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "xml"])?;
    let cube = load_cube(require(args, "in")?)?;
    let xml_path = require(args, "xml")?;
    let pages = wikistale_wikitext::cube_to_dump(&cube);
    let xml = wikistale_wikitext::render_export(&pages);
    std::fs::write(xml_path, xml)
        .map_err(|e| CliError::Io(format!("cannot write {xml_path}: {e}")))?;
    println!(
        "exported {} changes as {} pages → {xml_path}",
        cube.num_changes(),
        pages.len()
    );
    Ok(())
}

fn cmd_slice(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "from", "to", "out"])?;
    let cube = load_cube(require(args, "in")?)?;
    let from: Date = require(args, "from")?
        .parse()
        .map_err(|e| CliError::Usage(format!("--from: {e}")))?;
    let to: Date = require(args, "to")?
        .parse()
        .map_err(|e| CliError::Usage(format!("--to: {e}")))?;
    if to <= from {
        return Err(CliError::Usage("--to must be after --from".into()));
    }
    let out = require(args, "out")?;
    let sliced = wikistale_wikicube::slice(&cube, DateRange::new(from, to));
    save_cube(&sliced, out)?;
    println!(
        "sliced [{from} .. {to}): {} of {} changes → {out}",
        sliced.num_changes(),
        cube.num_changes()
    );
    Ok(())
}

fn cmd_merge(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["out"])?;
    let out = require(args, "out")?;
    let mut inputs = Vec::new();
    let mut i = 1;
    while let Some(path) = args.positional(i) {
        inputs.push(load_cube(path)?);
        i += 1;
    }
    if inputs.len() < 2 {
        return Err(CliError::Usage(
            "merge needs at least two input cubes".into(),
        ));
    }
    let merged =
        wikistale_wikicube::merge(inputs.iter()).map_err(|e| CliError::Other(e.to_string()))?;
    save_cube(&merged, out)?;
    println!(
        "merged {} cubes into {} changes over {} entities → {out}",
        inputs.len(),
        merged.num_changes(),
        merged.num_entities()
    );
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "by", "k", "kind"])?;
    let cube = load_cube(require(args, "in")?)?;
    let k: usize = get_parsed::<usize>(args, "k")?.unwrap_or(20);
    let mut query = wikistale_wikicube::olap::CubeQuery::new(&cube);
    if let Some(kind) = args.get("kind") {
        query = query.of_kind(match kind {
            "create" => wikistale_wikicube::ChangeKind::Create,
            "update" => wikistale_wikicube::ChangeKind::Update,
            "delete" => wikistale_wikicube::ChangeKind::Delete,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown kind {other:?} (create|update|delete)"
                )))
            }
        });
    }
    use wikistale_wikicube::olap::top_k;
    match require(args, "by")? {
        "template" => {
            for (id, n) in top_k(&query.counts_by_template(), k) {
                println!("{n:>10}  {}", cube.template_name(id));
            }
        }
        "property" => {
            for (id, n) in top_k(&query.counts_by_property(), k) {
                println!("{n:>10}  {}", cube.property_name(id));
            }
        }
        "page" => {
            for (id, n) in top_k(&query.counts_by_page(), k) {
                println!("{n:>10}  {}", cube.page_title(id));
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown dimension {other:?} (template|property|page)"
            )))
        }
    }
    Ok(())
}

fn cmd_figures(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "out-dir"])?;
    let cube = load_cube(require(args, "in")?)?;
    let out_dir = std::path::Path::new(require(args, "out-dir")?);
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError::Io(format!("cannot create {}: {e}", out_dir.display())))?;
    let span = cube
        .time_span()
        .ok_or_else(|| CliError::Other("cube is empty".into()))?;
    let split = EvalSplit::for_span(span).ok_or_else(|| {
        CliError::Other("cube spans less than the two years needed for validation + test".into())
    })?;
    let results = run_paper_evaluation(&cube, &split, &ExperimentConfig::default());
    let f3 = out_dir.join("figure3.svg");
    std::fs::write(&f3, wikistale_core::figures::figure3_svg(&results))
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", f3.display())))?;
    println!("wrote {}", f3.display());
    if let Some(svg) = wikistale_core::figures::figure4_svg(&results) {
        let f4 = out_dir.join("figure4.svg");
        std::fs::write(&f4, svg)
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", f4.display())))?;
        println!("wrote {}", f4.display());
    }
    Ok(())
}

fn cmd_anomalies(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["in", "limit"])?;
    let cube = load_cube(require(args, "in")?)?;
    let limit: usize = get_parsed::<usize>(args, "limit")?.unwrap_or(25);
    let index = CubeIndex::build(&cube);
    let anomalies = wikistale_core::find_counter_anomalies(
        &cube,
        &index,
        &wikistale_core::AnomalyParams::default(),
    );
    println!(
        "{} counter anomalies (the §5.4 typo pattern) — showing up to {limit}:",
        anomalies.len()
    );
    for a in anomalies.iter().take(limit) {
        println!(
            "  {} {:<40} {:<24} {} → {} ({})",
            a.day,
            cube.page_title(cube.page_of(a.field.entity)),
            cube.property_name(a.field.property),
            a.previous,
            a.value,
            match a.kind {
                wikistale_core::AnomalyKind::Collapse => "suspicious collapse",
                wikistale_core::AnomalyKind::Correction => "likely bulk correction",
            }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<(), CliError> {
        run(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run_words(&[]).is_ok());
        assert!(run_words(&["help"]).is_ok());
        let err = run_words(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = run_words(&["generate", "--ouput", "x"]).unwrap_err();
        assert!(err.to_string().contains("--ouput"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn generate_requires_out() {
        let err = run_words(&["generate", "--preset", "tiny"]).unwrap_err();
        assert!(err.to_string().contains("--out"));
        let err = run_words(&["generate", "--preset", "nope", "--out", "/tmp/x"]).unwrap_err();
        assert!(err.to_string().contains("unknown preset"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn missing_input_is_an_io_error() {
        let err = run_words(&["evaluate", "--in", "/nonexistent/x.wcube"]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn corrupt_input_is_a_corruption_error() {
        let dir = std::env::temp_dir().join("wikistale-cli-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.wcube");
        std::fs::write(&bad, b"WCUBE\0\0\0garbage that is not a cube").unwrap();
        let err = run_words(&["stats", "--in", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flags_need_each_other() {
        let err = run_words(&["experiment", "--preset", "tiny", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("--checkpoint-dir"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn lossy_ingest_flags_validate() {
        let err = run_words(&[
            "ingest",
            "--xml",
            "/nonexistent.xml",
            "--out",
            "/tmp/x.wcube",
            "--error-budget",
            "150",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("percentage"), "{err}");
        let err = run_words(&[
            "ingest",
            "--xml",
            "/nonexistent.xml",
            "--out",
            "/tmp/x.wcube",
            "--quarantine",
            "/tmp/q.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--lossy"), "{err}");
    }

    #[test]
    fn full_cli_round_trip_on_tiny_corpus() {
        let dir = std::env::temp_dir().join("wikistale-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let filtered = dir.join("filtered.wcube");
        run_words(&[
            "generate",
            "--preset",
            "tiny",
            "--out",
            raw.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&["stats", "--in", raw.to_str().unwrap()]).unwrap();
        run_words(&[
            "filter",
            "--in",
            raw.to_str().unwrap(),
            "--out",
            filtered.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&["evaluate", "--in", filtered.to_str().unwrap(), "--vs-paper"]).unwrap();
        run_words(&[
            "monitor",
            "--in",
            filtered.to_str().unwrap(),
            "--at",
            "2019-06-01",
            "--window",
            "7",
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_ingest_quarantines_and_writes_report() {
        let dir = std::env::temp_dir().join("wikistale-cli-lossy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("dump.xml");
        let out = dir.join("out.wcube");
        let q = dir.join("quarantine.json");
        std::fs::write(
            &xml,
            "<mediawiki><page><title>Good</title><revision>\
             <timestamp>2019-01-01T00:00:00Z</timestamp>\
             <text>{{Infobox x | a = 1}}</text></revision></page>\
             <page><revision><timestamp>2019-01-01T00:00:00Z</timestamp>\
             <text>no title</text></revision></page></mediawiki>",
        )
        .unwrap();
        // Strict ingest refuses (corrupt input).
        let err = run_words(&[
            "ingest",
            "--xml",
            xml.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Lossy ingest succeeds and writes the quarantine report.
        run_words(&[
            "ingest",
            "--xml",
            xml.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--lossy",
            "--quarantine",
            q.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.exists());
        let report = std::fs::read_to_string(&q).unwrap();
        let v = wikistale_obs::json::parse(&report).unwrap();
        assert_eq!(
            v.get("pages_quarantined").and_then(|x| x.as_f64()),
            Some(1.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiment_checkpoint_resume_reuses_stages() {
        let dir = std::env::temp_dir().join("wikistale-cli-ckpt-test");
        std::fs::remove_dir_all(&dir).ok();
        let ckpt = dir.join("ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let base = [
            "experiment",
            "--preset",
            "tiny",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ];
        run_words(&base).unwrap();
        assert!(ckpt.join("manifest.json").exists());
        assert!(ckpt.join("generate.wcube").exists());
        assert!(ckpt.join("filter.wcube").exists());
        // Resume on a complete checkpoint re-renders without recomputing.
        let mut resume = base.to_vec();
        resume.push("--resume");
        run_words(&resume).unwrap();
        // Different parameters refuse the stored checkpoint.
        let err = run_words(&[
            "experiment",
            "--preset",
            "tiny",
            "--seed",
            "99",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--resume",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("different parameters"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_pipeline_writes_report_and_verifies_determinism() {
        let dir = std::env::temp_dir().join("wikistale-cli-bench-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_pipeline.json");
        run_words(&[
            "bench",
            "pipeline",
            "--scale",
            "tiny",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        let report = std::fs::read_to_string(&out).unwrap();
        let v = wikistale_obs::json::parse(&report).unwrap();
        assert!(matches!(
            v.get("identical_results"),
            Some(wikistale_obs::json::Value::Bool(true))
        ));
        // Both legs report the full six-stage breakdown.
        for stage in ["synth", "filter", "cube", "train", "predict", "eval"] {
            assert!(
                report.contains(&format!("\"name\": \"{stage}\"")),
                "{stage}"
            );
        }
        // The columnar change table must beat the row-layout baseline,
        // and the counting allocator must have observed the pipeline
        // (the CLI installs it as the global allocator).
        let mem = v.get("memory").expect("memory section");
        let table = mem.get("change_table_bytes").and_then(|x| x.as_f64());
        let baseline = mem
            .get("row_layout_baseline_bytes")
            .and_then(|x| x.as_f64());
        assert!(
            table.unwrap() < baseline.unwrap(),
            "{table:?} vs {baseline:?}"
        );
        assert!(report.contains("\"peak_alloc_bytes\""));
        assert!(run_words(&["bench", "pipeline", "--scale", "nope"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitor_rejects_bad_dates_and_windows() {
        let dir = std::env::temp_dir().join("wikistale-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        run_words(&[
            "generate",
            "--preset",
            "tiny",
            "--out",
            raw.to_str().unwrap(),
        ])
        .unwrap();
        let raw = raw.to_str().unwrap();
        assert!(run_words(&["monitor", "--in", raw, "--at", "junk"]).is_err());
        // Signed date components must be rejected at the flag layer too
        // (Date::from_str used to accept `+2018-+09-+01`).
        assert!(run_words(&["monitor", "--in", raw, "--at", "+2019-+06-+01"]).is_err());
        assert!(run_words(&[
            "monitor",
            "--in",
            raw,
            "--at",
            "2019-06-01",
            "--window",
            "0"
        ])
        .is_err());
        assert!(run_words(&["monitor", "--in", raw, "--at", "1990-01-01"]).is_err());
        std::fs::remove_dir_all(std::env::temp_dir().join("wikistale-cli-test2")).ok();
    }

    #[test]
    fn top_and_anomalies_commands() {
        let dir = std::env::temp_dir().join("wikistale-cli-top-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let raw_s = raw.to_str().unwrap();
        run_words(&["generate", "--preset", "tiny", "--out", raw_s]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "template", "--k", "5"]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "property", "--kind", "update"]).unwrap();
        run_words(&["top", "--in", raw_s, "--by", "page"]).unwrap();
        assert!(run_words(&["top", "--in", raw_s, "--by", "color"]).is_err());
        assert!(run_words(&["top", "--in", raw_s, "--by", "page", "--kind", "x"]).is_err());
        run_words(&["anomalies", "--in", raw_s, "--limit", "3"]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_slice_merge_round_trip() {
        let dir = std::env::temp_dir().join("wikistale-cli-ops-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.wcube");
        let raw_s = raw.to_str().unwrap();
        run_words(&["generate", "--preset", "tiny", "--out", raw_s]).unwrap();

        // Export to XML and re-ingest: change counts survive (the tiny
        // corpus's same-day churn collapses to snapshots, so counts can
        // only shrink, never grow).
        let xml = dir.join("dump.xml");
        let back = dir.join("back.wcube");
        run_words(&["export", "--in", raw_s, "--xml", xml.to_str().unwrap()]).unwrap();
        run_words(&[
            "ingest",
            "--xml",
            xml.to_str().unwrap(),
            "--out",
            back.to_str().unwrap(),
        ])
        .unwrap();
        assert!(back.exists());

        // Slice into two halves and merge back: no changes lost.
        let left = dir.join("left.wcube");
        let right = dir.join("right.wcube");
        let merged = dir.join("merged.wcube");
        run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2014-01-01",
            "--to",
            "2017-01-01",
            "--out",
            left.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2017-01-01",
            "--to",
            "2019-12-31",
            "--out",
            right.to_str().unwrap(),
        ])
        .unwrap();
        run_words(&[
            "merge",
            left.to_str().unwrap(),
            right.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ])
        .unwrap();
        let original = wikistale_wikicube::binio::read_from_path(&raw).unwrap();
        let remerged = wikistale_wikicube::binio::read_from_path(&merged).unwrap();
        assert_eq!(original.num_changes(), remerged.num_changes());

        // Error paths.
        assert!(run_words(&[
            "slice",
            "--in",
            raw_s,
            "--from",
            "2018-01-01",
            "--to",
            "2017-01-01",
            "--out",
            "/tmp/x.wcube"
        ])
        .is_err());
        assert!(run_words(&["merge", raw_s, "--out", "/tmp/x.wcube"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
