//! Tiny flag parser: `--key value` pairs plus positional words, no
//! external dependencies.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, flags as key → value
/// (`--flag` without a value stores an empty string).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse raw arguments. A token starting with `--` is a flag; it
    /// consumes the following token as its value unless that token is
    /// itself a flag (then it is boolean).
    pub fn parse(argv: &[String]) -> Args {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(name) = tok.strip_prefix("--") {
                let value = argv
                    .get(i + 1)
                    .filter(|next| !next.starts_with("--"))
                    .cloned();
                match value {
                    Some(v) => {
                        args.flags.insert(name.to_owned(), v);
                        i += 2;
                    }
                    None => {
                        args.flags.insert(name.to_owned(), String::new());
                        i += 1;
                    }
                }
            } else {
                args.positional.push(tok.clone());
                i += 1;
            }
        }
        args
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Raw string value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether `--name` was given at all (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// Optional typed flag; errors only on an unparseable value.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {raw:?}")),
        }
    }

    /// Flags the command did not declare — catches typos like `--ouput`.
    pub fn unknown_flags(&self, known: &[&str]) -> Vec<String> {
        self.flags
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["generate", "--preset", "small", "--out", "x.wcube"]);
        assert_eq!(a.positional(0), Some("generate"));
        assert_eq!(a.get("preset"), Some("small"));
        assert_eq!(a.get("out"), Some("x.wcube"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.positional(1), None);
    }

    #[test]
    fn boolean_flags() {
        let a = parse(&["evaluate", "--vs-paper", "--in", "f.wcube"]);
        assert!(a.has("vs-paper"));
        assert_eq!(a.get("vs-paper"), Some(""));
        assert_eq!(a.get("in"), Some("f.wcube"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["--a", "--b", "v"]);
        assert_eq!(a.get("a"), Some(""));
        assert_eq!(a.get("b"), Some("v"));
    }

    #[test]
    fn typed_and_required() {
        let a = parse(&["--seed", "42", "--theta", "0.1", "--bad", "x"]);
        assert_eq!(a.get_parsed::<u64>("seed").unwrap(), Some(42));
        assert_eq!(a.get_parsed::<f64>("theta").unwrap(), Some(0.1));
        assert_eq!(a.get_parsed::<u64>("missing").unwrap(), None);
        assert!(a.get_parsed::<u64>("bad").is_err());
        assert!(a.require("seed").is_ok());
        assert!(a.require("nope").is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse(&["--preset", "small", "--ouput", "typo"]);
        assert_eq!(a.unknown_flags(&["preset", "out"]), vec!["ouput"]);
    }
}
