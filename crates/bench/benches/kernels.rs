//! Micro-benchmarks of the hot kernels (experiment P1): the normalized
//! Manhattan distance of §3.2, Apriori mining of §3.3, string interning,
//! and cube (de)serialization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use wikistale_apriori::{frequent_itemsets, mine, AprioriParams, Support, TransactionSet};
use wikistale_core::predictors::{change_distance, DistanceNorm};
use wikistale_wikicube::{binio, Date, DateRange, Interner};

fn sorted_days(rng: &mut StdRng, n: usize, span: i32) -> Vec<Date> {
    let mut days: Vec<Date> = (0..n)
        .map(|_| Date::EPOCH + rng.random_range(0..span))
        .collect();
    days.sort_unstable();
    days
}

fn bench_distance(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let range = DateRange::with_len(Date::EPOCH, 4_836);
    let mut group = c.benchmark_group("distance");
    for &n in &[10usize, 100, 1_000] {
        let a = sorted_days(&mut rng, n, 4_836);
        let b = sorted_days(&mut rng, n, 4_836);
        group.bench_function(format!("total_mass/{n}"), |bench| {
            bench.iter(|| {
                black_box(change_distance(
                    black_box(&a),
                    black_box(&b),
                    range,
                    DistanceNorm::TotalMass,
                ))
            })
        });
    }
    group.finish();
}

fn weekly_like_transactions(rng: &mut StdRng, n_tx: usize, n_items: u32) -> TransactionSet {
    let mut builder = TransactionSet::builder();
    for _ in 0..n_tx {
        let len = rng.random_range(1..6usize);
        builder.push((0..len).map(|_| rng.random_range(0..n_items)));
    }
    builder.finish()
}

fn bench_apriori(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("apriori");
    for &(n_tx, n_items) in &[(1_000usize, 20u32), (10_000, 50)] {
        let ts = weekly_like_transactions(&mut rng, n_tx, n_items);
        group.bench_function(
            format!("frequent_itemsets/{n_tx}tx_{n_items}items"),
            |bench| {
                bench.iter(|| {
                    black_box(frequent_itemsets(
                        black_box(&ts),
                        Support::Fraction(0.0025),
                        2,
                    ))
                })
            },
        );
        group.bench_function(format!("mine_rules/{n_tx}tx_{n_items}items"), |bench| {
            bench.iter(|| black_box(mine(black_box(&ts), &AprioriParams::default())))
        });
    }
    group.finish();
}

fn bench_interner(c: &mut Criterion) {
    let words: Vec<String> = (0..10_000).map(|i| format!("prop_{}", i % 2_000)).collect();
    c.bench_function("interner/10k_mixed_hits", |bench| {
        bench.iter_batched(
            Interner::new,
            |mut interner| {
                for w in &words {
                    black_box(interner.intern(w));
                }
                interner
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_binio(c: &mut Criterion) {
    let corpus = wikistale_synth::generate(&wikistale_synth::SynthConfig::tiny());
    let bytes = binio::encode(&corpus.cube);
    let mut group = c.benchmark_group("binio");
    group.bench_function("encode_tiny_corpus", |bench| {
        bench.iter(|| black_box(binio::encode(black_box(&corpus.cube))))
    });
    group.bench_function("decode_tiny_corpus", |bench| {
        bench.iter(|| black_box(binio::decode(black_box(&bytes)).expect("valid")))
    });
    group.finish();
}

fn bench_wikitext(c: &mut Criterion) {
    // A realistic page: a 30-parameter infobox with nested templates and
    // links, plus surrounding article text.
    let mut infobox = String::from("{{Infobox settlement\n");
    for i in 0..30 {
        infobox.push_str(&format!(
            "| field_{i} = [[Link {i}|label]] with {{{{convert|{i}|km}}}} text\n"
        ));
    }
    infobox.push_str("}}\n");
    let page = format!("Intro text.\n{infobox}\n{}", "Body paragraph. ".repeat(200));
    let mut group = c.benchmark_group("wikitext");
    group.bench_function("extract_infoboxes/30_params", |bench| {
        bench.iter(|| black_box(wikistale_wikitext::extract_infoboxes(black_box(&page))))
    });
    let revisions: Vec<wikistale_wikitext::PageDump> = (0..20)
        .map(|i| wikistale_wikitext::PageDump {
            title: format!("Page {i}"),
            revisions: (0..5)
                .map(|r| wikistale_wikitext::Revision {
                    date: Date::EPOCH + r * 30,
                    text: page.replace("field_0 =", &format!("field_0 = rev{r}")),
                })
                .collect(),
        })
        .collect();
    group.bench_function("diff/20_pages_x_5_revisions", |bench| {
        bench.iter(|| black_box(wikistale_wikitext::build_cube(black_box(&revisions))))
    });
    let xml = wikistale_wikitext::render_export(&revisions);
    group.bench_function("parse_export/20_pages", |bench| {
        bench.iter(|| black_box(wikistale_wikitext::parse_export(black_box(&xml)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_apriori,
    bench_interner,
    bench_binio,
    bench_wikitext
);
criterion_main!(benches);
