//! End-to-end benchmark (experiment P1): the complete Table 1 evaluation
//! — train on training + validation, predict and score all four window
//! granularities — on the tiny corpus. This is the number to scale when
//! estimating a full-Wikipedia deployment (the paper reports ~6 h for
//! 25 M filtered changes on a 4-socket Xeon E7-8837).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, SynthConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let config = ExperimentConfig::default();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("paper_evaluation_tiny", |bench| {
        bench.iter(|| black_box(run_paper_evaluation(&filtered, &split, &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
