//! Benchmarks of the data-preparation pipeline (experiment P1): corpus
//! generation, the §4 filter stages, and index construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wikistale_core::filters::FilterPipeline;
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::CubeIndex;

fn bench_generate(c: &mut Criterion) {
    let config = SynthConfig::tiny();
    c.bench_function("synth/generate_tiny", |bench| {
        bench.iter(|| black_box(generate(black_box(&config))))
    });
}

fn bench_filters(c: &mut Criterion) {
    let corpus = generate(&SynthConfig::tiny());
    let mut group = c.benchmark_group("filters");
    group.bench_function("paper_pipeline_tiny", |bench| {
        bench.iter(|| black_box(FilterPipeline::paper().apply(black_box(&corpus.cube))))
    });
    group.bench_function("dedup_only_tiny", |bench| {
        let pipeline = FilterPipeline {
            drop_bot_reverted: false,
            dedup_days: true,
            drop_creations_deletions: false,
            min_changes: None,
        };
        bench.iter(|| black_box(pipeline.apply(black_box(&corpus.cube))))
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    c.bench_function("index/build_filtered_tiny", |bench| {
        bench.iter(|| black_box(CubeIndex::build(black_box(&filtered))))
    });
}

criterion_group!(benches, bench_generate, bench_filters, bench_index);
criterion_main!(benches);
