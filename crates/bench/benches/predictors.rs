//! Benchmarks of predictor training and prediction (experiment P1, the
//! per-predictor costs behind Table 1). The paper's full run takes ~6 h on
//! a 4-socket Xeon for 25 M filtered changes; these benches track our
//! cost per component so regressions are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wikistale_core::ensemble::or_ensemble;
use wikistale_core::eval::truth_set;
use wikistale_core::experiment::{ExperimentConfig, TrainedPredictors};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{
    AssocParams, AssociationRulePredictor, FieldCorrelation, FieldCorrelationParams, MeanBaseline,
};
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::CubeIndex;

struct Fixture {
    filtered: wikistale_wikicube::ChangeCube,
    index: CubeIndex,
    split: EvalSplit,
}

fn fixture() -> Fixture {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let index = CubeIndex::build(&filtered);
    Fixture {
        filtered,
        index,
        split,
    }
}

fn bench_training(c: &mut Criterion) {
    let f = fixture();
    let data = EvalData::new(&f.filtered, &f.index);
    let range = f.split.train_and_validation();
    let mut group = c.benchmark_group("train");
    group.bench_function("field_correlation", |bench| {
        bench.iter(|| {
            black_box(FieldCorrelation::train(
                &data,
                range,
                FieldCorrelationParams::default(),
            ))
        })
    });
    group.bench_function("association_rules", |bench| {
        bench.iter(|| {
            black_box(AssociationRulePredictor::train(
                &data,
                range,
                AssocParams::default(),
            ))
        })
    });
    group.bench_function("mean_baseline", |bench| {
        bench.iter(|| black_box(MeanBaseline::train(&data, range)))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let f = fixture();
    let data = EvalData::new(&f.filtered, &f.index);
    let trained = TrainedPredictors::train(
        &data,
        f.split.train_and_validation(),
        &ExperimentConfig::default(),
    );
    let mut group = c.benchmark_group("predict");
    for granularity in [1u32, 7, 365] {
        group.bench_function(format!("field_correlation/{granularity}d"), |bench| {
            bench.iter(|| black_box(trained.field_corr.predict(&data, f.split.test, granularity)))
        });
        group.bench_function(format!("association_rules/{granularity}d"), |bench| {
            bench.iter(|| black_box(trained.assoc.predict(&data, f.split.test, granularity)))
        });
    }
    group.bench_function("mean_baseline/7d", |bench| {
        bench.iter(|| black_box(trained.mean.predict(&data, f.split.test, 7)))
    });
    group.bench_function("threshold_baseline/7d", |bench| {
        bench.iter(|| black_box(trained.threshold.predict(&data, f.split.test, 7)))
    });
    group.finish();
}

fn bench_eval_ops(c: &mut Criterion) {
    let f = fixture();
    let data = EvalData::new(&f.filtered, &f.index);
    let trained = TrainedPredictors::train(
        &data,
        f.split.train_and_validation(),
        &ExperimentConfig::default(),
    );
    let fc = trained.field_corr.predict(&data, f.split.test, 7);
    let ar = trained.assoc.predict(&data, f.split.test, 7);
    let mut group = c.benchmark_group("eval");
    group.bench_function("truth_set/7d", |bench| {
        bench.iter(|| black_box(truth_set(&f.index, f.split.test, 7)))
    });
    group.bench_function("or_ensemble", |bench| {
        bench.iter(|| black_box(or_ensemble(black_box(&fc), black_box(&ar))))
    });
    group.finish();
}

fn bench_detector(c: &mut Criterion) {
    use wikistale_core::detector::{DetectorConfig, StalenessDetector};
    let corpus = generate(&SynthConfig::tiny());
    let mut group = c.benchmark_group("detector");
    group.sample_size(20);
    group.bench_function("train_from_raw_tiny", |bench| {
        bench.iter(|| {
            black_box(
                StalenessDetector::train_from_raw(&corpus.cube, &DetectorConfig::default())
                    .expect("trains"),
            )
        })
    });
    let detector =
        StalenessDetector::train_from_raw(&corpus.cube, &DetectorConfig::default()).unwrap();
    let week_end = wikistale_wikicube::Date::from_ymd(2019, 6, 3).unwrap();
    group.bench_function("flag_week", |bench| {
        bench.iter(|| black_box(detector.flag_week(black_box(week_end))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_prediction,
    bench_eval_ops,
    bench_detector
);
criterion_main!(benches);
