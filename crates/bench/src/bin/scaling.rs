//! Experiment P2 — **scaling study**: wall-clock of every pipeline stage
//! as the corpus grows. The paper reports ≈ 6 h total training +
//! prediction for 25 M filtered changes on a 4-socket Xeon E7-8837 and
//! stresses the "tight limits on training and prediction time" of a
//! system that must re-run for all of Wikipedia regularly; this binary
//! measures our cost per stage across corpus scales so that claim can be
//! extrapolated.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin scaling --release
//! ```

use std::time::Instant;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, SynthConfig};

fn main() {
    let scales = [0.25, 0.5, 1.0, 2.0];
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "scale", "raw", "filtered", "gen [s]", "filt [s]", "eval [s]", "total[s]", "eval/change"
    );
    for &factor in &scales {
        let config = SynthConfig::small().scaled(factor);
        let t0 = Instant::now();
        let corpus = generate(&config);
        let t_gen = t0.elapsed();

        let t0 = Instant::now();
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let t_filter = t0.elapsed();

        let split =
            EvalSplit::for_span(filtered.time_span().expect("non-empty")).expect("long corpus");
        let t0 = Instant::now();
        let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
        let t_eval = t0.elapsed();

        let per_change = t_eval.as_secs_f64() / filtered.num_changes().max(1) as f64;
        println!(
            "{:>5.2}x {:>10} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.1} ns",
            factor,
            corpus.cube.num_changes(),
            filtered.num_changes(),
            t_gen.as_secs_f64(),
            t_filter.as_secs_f64(),
            t_eval.as_secs_f64(),
            (t_gen + t_filter + t_eval).as_secs_f64(),
            per_change * 1e9,
        );
        // Keep the optimizer honest.
        assert!(results.granularity(7).is_some());
    }
    println!(
        "\nextrapolation: 25 M filtered changes (the paper's corpus) at the 1.00x \
         eval rate ≈ shown ns/change × 25e6; the paper needed ~6 h on 2011 hardware."
    );

    // Accumulated across all four scale factors, so each stage's min/max
    // bracket the smallest and largest corpus (a quick read on how each
    // stage scales) and count shows how often it ran.
    println!("\npipeline stage breakdown, all scales pooled (wikistale-obs registry):");
    print!(
        "{}",
        wikistale_obs::MetricsRegistry::global().render_table()
    );
}
