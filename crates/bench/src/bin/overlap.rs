//! Experiment O1 — regenerate the **§5.3.4 overlap analysis**: how much
//! of the field-correlation and association-rule prediction sets is
//! shared (the paper reports 37–42 %, meaning 58–63 % of each predictor's
//! predictions are unique and feed the OR-ensemble's recall).
//!
//! ```sh
//! cargo run -p wikistale-bench --bin overlap --release [-- --scale small]
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::report;

fn main() {
    run_experiment("overlap", |prepared, _rest| {
        let results = run_paper_evaluation(
            &prepared.filtered,
            &prepared.split,
            &ExperimentConfig::default(),
        );
        println!("{}", report::render_overlap(&results));
        for g in &results.per_granularity {
            let o = g.fc_ar_overlap;
            let or_unique = o.a_total + o.b_total - 2 * o.shared;
            println!(
                "{:>4}d: {} of {} OR-ensemble predictions come from exactly one predictor",
                g.granularity, or_unique, g.or_ensemble.predictions
            );
        }
    });
}
