//! Experiment A3 — the **correlation-period ablation** (§3.2): the paper
//! "tried different time periods (to, e.g., allow delayed updates), but
//! same-day worked best on our dataset". This binary sweeps the
//! delayed-update tolerance of the field-correlation training distance
//! (0 = the paper's same-day choice) and reports test-set precision and
//! recall for each lag.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin ablation_lag --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{FieldCorrelation, FieldCorrelationParams};
use wikistale_wikicube::CubeIndex;

fn main() {
    run_experiment("ablation_lag", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let truth = truth_set(&index, prepared.split.test, 7);
        println!("field-correlation delayed-update tolerance (θ = 0.1, 7-day windows)");
        println!(
            "{:>4} {:>8} {:>10} {:>10} {:>10}",
            "lag", "rules", "P [%]", "R [%]", "#"
        );
        for lag_days in [0u32, 1, 2, 3, 5, 7] {
            let fc = FieldCorrelation::train(
                &data,
                prepared.split.train_and_validation(),
                FieldCorrelationParams {
                    lag_days,
                    ..FieldCorrelationParams::default()
                },
            );
            let predictions = fc.predict(&data, prepared.split.test, 7);
            let outcome = evaluate(&predictions, &truth);
            println!(
                "{:>3}d {:>8} {:>10.2} {:>10.2} {:>10}",
                lag_days,
                fc.num_rules(),
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions
            );
        }
        println!("(paper §3.2: same-day — lag 0 — worked best on their dataset)");
    });
}
