//! Experiment F3 — regenerate **Figure 3**: the histogram of discovered
//! association rules per infobox template (log-bucketed x-axis like the
//! paper's plot).
//!
//! The paper finds 3,852 rules over 8,276 templates, 191 templates with
//! exactly one rule, and one template (`infobox legislative election`)
//! with more than 150; our corpus reproduces the skew at its own scale.
//!
//! Pass `--svg <path>` to additionally write the chart as an SVG file.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin figure3 --release [-- --scale small --svg figure3.svg]
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::report;

/// The value following `--svg`, if present.
fn svg_path(rest: &[String]) -> Option<String> {
    rest.iter()
        .position(|f| f == "--svg")
        .and_then(|i| rest.get(i + 1).cloned())
}

fn main() {
    run_experiment("figure3", |prepared, rest| {
        let results = run_paper_evaluation(
            &prepared.filtered,
            &prepared.split,
            &ExperimentConfig::default(),
        );
        println!("{}", report::render_figure3(&results));
        let ones = results
            .rules_per_template
            .iter()
            .filter(|&&(_, n)| n == 1)
            .count();
        let max = results
            .rules_per_template
            .iter()
            .map(|&(_, n)| n)
            .max()
            .unwrap_or(0);
        println!("templates with exactly one rule: {ones} (paper: 191 of 8,276)");
        println!("largest rule count for one template: {max} (paper: > 150)");
        if let Some(path) = svg_path(rest) {
            let svg = wikistale_core::figures::figure3_svg(&results);
            std::fs::write(&path, svg).expect("write SVG");
            eprintln!("figure3: wrote {path}");
        }
    });
}
