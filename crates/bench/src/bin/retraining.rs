//! Experiment X2 — the **retraining-cadence study** behind §5.3.3: "with
//! decreasing precision and slightly decreasing recall, we recommend
//! retraining at least once per year to maintain both high precision and
//! recall."
//!
//! This binary evaluates the test year with models whose training data was
//! cut off 0, 1, 2, and 3 years before the test start — i.e. models that
//! have not been retrained for that long. Rule sets go stale as fields are
//! created, renamed, and deleted, so precision and especially recall decay
//! with the cutoff age.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin retraining --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::ensemble::or_ensemble;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::experiment::{ExperimentConfig, TrainedPredictors};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_wikicube::{CubeIndex, DateRange};

fn main() {
    run_experiment("retraining", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let truth = truth_set(&index, prepared.split.test, 7);
        let full_train = prepared.split.train_and_validation();

        println!("model age vs test-year performance (7-day windows)");
        println!(
            "{:>10} {:>9} {:>9} {:>10} {:>10} {:>10}",
            "cutoff", "FC rules", "AR rules", "P [%]", "R [%]", "#"
        );
        for years_stale in 0u32..4 {
            let cutoff = full_train.end() - (years_stale * 365) as i32;
            let train = DateRange::new(full_train.start(), cutoff);
            let trained = TrainedPredictors::train(&data, train, &ExperimentConfig::default());
            let fc = trained.field_corr.predict(&data, prepared.split.test, 7);
            let ar = trained.assoc.predict(&data, prepared.split.test, 7);
            let outcome = evaluate(&or_ensemble(&fc, &ar), &truth);
            println!(
                "{:>7} yr {:>9} {:>9} {:>10.2} {:>10.2} {:>10}",
                years_stale,
                trained.field_corr.num_rules(),
                trained.assoc.num_rules(),
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions
            );
        }
        println!("(paper §5.3.3: retrain at least once per year)");
    });
}
