//! Experiment T1 — regenerate **Table 1**: precision, recall, and number
//! of predictions for all six predictors at 1/7/30/365-day windows,
//! printed next to the paper's published values.
//!
//! Pass `--markdown` for a GitHub-flavoured table with 95 % confidence
//! intervals on the measured precision.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin table1 --release [-- --scale small --seed N --markdown]
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::report;

fn main() {
    run_experiment("table1", |prepared, rest| {
        let results = run_paper_evaluation(
            &prepared.filtered,
            &prepared.split,
            &ExperimentConfig::default(),
        );
        if rest.iter().any(|f| f == "--markdown") {
            println!("{}", report::render_table1_markdown(&results));
        } else {
            println!("{}", report::render_table1_vs_paper(&results));
        }
        println!(
            "rules: {} field correlations, {} association rules, {} covered entities",
            results.num_field_corr_rules, results.num_assoc_rules, results.covered_entities
        );
    });
}
