//! Experiment A1 — the **distance-normalization ablation** behind the
//! §3.2 design choice our DESIGN.md documents: the paper's prose
//! ("Manhattan distance normalized by the vector length k") conflicts
//! with its stated semantics ("1 indicates no overlapping changes").
//!
//! This ablation trains the field-correlation predictor under both
//! readings at the same θ and shows why the total-mass normalization is
//! the one that can reach an 85 %-precision operating point: under the
//! literal day-count reading, every sparse same-page pair looks
//! correlated, the rule set explodes, and precision collapses.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin ablation_norm --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{DistanceNorm, FieldCorrelation, FieldCorrelationParams};
use wikistale_wikicube::CubeIndex;

fn main() {
    run_experiment("ablation_norm", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let truth = truth_set(&index, prepared.split.test, 7);
        println!("field-correlation normalization ablation (θ = 0.1, 7-day windows)");
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10}",
            "norm", "rules", "P [%]", "R [%]", "#"
        );
        for (label, norm) in [
            ("total-mass", DistanceNorm::TotalMass),
            ("day-count", DistanceNorm::DayCount),
        ] {
            let fc = FieldCorrelation::train(
                &data,
                prepared.split.train_and_validation(),
                FieldCorrelationParams {
                    theta: 0.1,
                    norm,
                    lag_days: 0,
                },
            );
            let predictions = fc.predict(&data, prepared.split.test, 7);
            let outcome = evaluate(&predictions, &truth);
            println!(
                "{:<12} {:>8} {:>10.2} {:>10.2} {:>10}",
                label,
                fc.num_rules(),
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions
            );
        }
        println!("(the day-count reading floods the rule set with spurious sparse pairs)");
    });
}
