//! Experiment X1 — the paper's first **future-work extension** (§6):
//! "adding predictors to the ensemble that focus on other aspects of the
//! data: they could capture seasonality".
//!
//! This binary trains the seasonal-recurrence predictor alongside the two
//! §3 predictors and compares the paper's OR-ensemble against the extended
//! three-way OR-ensemble: the extension must add recall (seasonal fields
//! with no co-changing partner are invisible to FC and AR) while keeping
//! precision above the 85 % target.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin extension_seasonal --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::ensemble::or_ensemble;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::experiment::{ExperimentConfig, TrainedPredictors};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::SeasonalPredictor;
use wikistale_core::TARGET_PRECISION;
use wikistale_wikicube::CubeIndex;

fn main() {
    run_experiment("extension_seasonal", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let trained = TrainedPredictors::train(
            &data,
            prepared.split.train_and_validation(),
            &ExperimentConfig::default(),
        );
        let seasonal = SeasonalPredictor::default();

        println!("paper OR-ensemble vs seasonal-extended OR-ensemble");
        println!("(the seasonal predictor joins the ensemble only at granularities where it");
        println!(" clears the 85 % target on the validation year — the paper's tuning protocol)\n");
        println!(
            "{:>5} {:>24} {:>24} {:>24}",
            "gran", "seasonal alone (P R #)", "OR (P R #)", "OR+seasonal (P R #)"
        );
        for granularity in wikistale_core::GRANULARITIES {
            // Qualify the extension on the validation year first.
            let val_truth = truth_set(&index, prepared.split.validation, granularity);
            let val_se = seasonal.predict(&data, prepared.split.validation, granularity);
            let qualified = evaluate(&val_se, &val_truth).precision() >= TARGET_PRECISION;

            let truth = truth_set(&index, prepared.split.test, granularity);
            let fc = trained
                .field_corr
                .predict(&data, prepared.split.test, granularity);
            let ar = trained
                .assoc
                .predict(&data, prepared.split.test, granularity);
            let se = seasonal.predict(&data, prepared.split.test, granularity);
            let or = or_ensemble(&fc, &ar);
            let extended = if qualified {
                or_ensemble(&or, &se)
            } else {
                or.clone()
            };
            let cells = |o: &wikistale_core::EvalOutcome| {
                format!(
                    "{:>6.2} {:>6.2} {:>8}",
                    100.0 * o.precision(),
                    100.0 * o.recall(),
                    o.predictions
                )
            };
            let (o_se, o_or, o_ext) = (
                evaluate(&se, &truth),
                evaluate(&or, &truth),
                evaluate(&extended, &truth),
            );
            println!(
                "{:>4}d {} {} {}{}",
                granularity,
                cells(&o_se),
                cells(&o_or),
                cells(&o_ext),
                if !qualified {
                    "   (seasonal not qualified on validation)"
                } else if o_ext.precision() >= TARGET_PRECISION && o_ext.recall() > o_or.recall() {
                    "   ✓ recall gained, target held"
                } else if o_ext.precision() < TARGET_PRECISION {
                    "   ✗ below target"
                } else {
                    ""
                }
            );
        }
    });
}
