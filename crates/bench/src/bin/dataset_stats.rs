//! Experiment D1 — regenerate the **§4 dataset statistics**: the raw
//! change composition and the per-stage filter removals, next to the
//! paper's numbers (which are fractions of the original corpus and sum,
//! with the 9.2 % survivors, to 100 %).
//!
//! ```sh
//! cargo run -p wikistale-bench --bin dataset_stats --release [-- --scale small]
//! ```

use wikistale_bench::run_experiment;

fn main() {
    run_experiment("dataset_stats", |prepared, _rest| {
        let stats = &prepared.raw_stats;
        println!("raw corpus composition        ours      paper");
        println!(
            "  changes             {:>12}      283 M",
            stats.total_changes
        );
        println!(
            "  creations           {:>11.2} %     50.6 %",
            100.0 * stats.create_fraction()
        );
        println!(
            "  deletions           {:>11.2} %     20.3 %",
            100.0 * stats.delete_fraction()
        );
        println!(
            "  bot-reverted        {:>11.4} %      0.008 %",
            100.0 * stats.bot_reverted_fraction()
        );
        println!(
            "  same-day duplicates {:>11.2} %     ~19 %",
            100.0 * stats.same_day_duplicate_fraction()
        );

        println!("\nfilter pipeline (removed, as % of original)   ours      paper");
        let paper = [0.008, 19.185, 61.373, 10.241];
        let report = &prepared.filter_report;
        for (i, stage) in report.stages.iter().enumerate() {
            println!(
                "  {:<28} {:>9}  {:>7.3} %  {:>7.3} %",
                stage.name,
                stage.removed,
                100.0 * report.removed_fraction_of_original(i),
                paper[i]
            );
        }
        println!(
            "  {:<28} {:>9}  {:>7.3} %  {:>7.3} %",
            "surviving",
            prepared.filtered.num_changes(),
            100.0 * report.surviving_fraction(),
            9.193
        );
    });
}
