//! Experiment X3 — **precision–recall trade-off curves** for both §3
//! predictors, generalizing the paper's single grid-search operating
//! point into the full frontier:
//!
//! * field correlations: sweep θ (looser threshold → more rules → more
//!   recall, less precision),
//! * association rules: sweep min-confidence (stricter rules → fewer,
//!   better predictions).
//!
//! Models are trained on training + validation and scored on the test
//! year, so the curve shows the deployable frontier around the paper's
//! chosen points (θ = 0.1, confidence = 0.6).
//!
//! ```sh
//! cargo run -p wikistale-bench --bin pr_curve --release
//! ```

use wikistale_apriori::Support;
use wikistale_bench::run_experiment;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{
    AssocParams, AssociationRulePredictor, FieldCorrelation, FieldCorrelationParams,
};
use wikistale_core::TARGET_PRECISION;
use wikistale_wikicube::CubeIndex;

const GRANULARITY: u32 = 7;

fn main() {
    run_experiment("pr_curve", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let train = prepared.split.train_and_validation();
        let truth = truth_set(&index, prepared.split.test, GRANULARITY);

        println!("field correlations: θ sweep ({GRANULARITY}-day windows, test year)");
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>10}",
            "theta", "rules", "P [%]", "R [%]", "#"
        );
        for theta in [0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5] {
            let fc = FieldCorrelation::train(
                &data,
                train,
                FieldCorrelationParams {
                    theta,
                    ..FieldCorrelationParams::default()
                },
            );
            let outcome = evaluate(&fc.predict(&data, prepared.split.test, GRANULARITY), &truth);
            println!(
                "{:>6.2} {:>8} {:>10.2} {:>10.2} {:>10}{}",
                theta,
                fc.num_rules(),
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions,
                if outcome.precision() >= TARGET_PRECISION {
                    ""
                } else {
                    "   below target"
                }
            );
        }

        println!("\nassociation rules: min-confidence sweep");
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>10}",
            "conf", "rules", "P [%]", "R [%]", "#"
        );
        for confidence in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            let ar = AssociationRulePredictor::train(
                &data,
                train,
                AssocParams {
                    apriori: wikistale_apriori::AprioriParams {
                        min_support: Support::Fraction(0.0025),
                        min_confidence: confidence,
                        max_itemset_size: 2,
                    },
                    ..AssocParams::default()
                },
            );
            let outcome = evaluate(&ar.predict(&data, prepared.split.test, GRANULARITY), &truth);
            println!(
                "{:>6.2} {:>8} {:>10.2} {:>10.2} {:>10}{}",
                confidence,
                ar.num_rules(),
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions,
                if outcome.precision() >= TARGET_PRECISION {
                    ""
                } else {
                    "   below target"
                }
            );
        }
        println!("\n(the paper operates at θ = 0.10 and confidence = 0.60)");
    });
}
