//! Experiment X5 — **per-template breakdown** of the OR-ensemble's test
//! predictions: which templates carry the precision, and where do the
//! false positives concentrate?
//!
//! The paper reports only corpus-level numbers; an operator deploying
//! banners would want exactly this table to blocklist templates whose
//! rules misfire (§5.3.3 attributes drift to renamed/deleted properties —
//! a per-template view localizes it).
//!
//! ```sh
//! cargo run -p wikistale-bench --bin breakdown --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::ensemble::or_ensemble;
use wikistale_core::eval::truth_set;
use wikistale_core::experiment::{ExperimentConfig, TrainedPredictors};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_wikicube::{CubeIndex, FxHashMap, TemplateId};

fn main() {
    run_experiment("breakdown", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        let trained = TrainedPredictors::train(
            &data,
            prepared.split.train_and_validation(),
            &ExperimentConfig::default(),
        );
        let or = or_ensemble(
            &trained.field_corr.predict(&data, prepared.split.test, 7),
            &trained.assoc.predict(&data, prepared.split.test, 7),
        );
        let truth = truth_set(&index, prepared.split.test, 7);

        let mut per_template: FxHashMap<TemplateId, (u64, u64)> = FxHashMap::default();
        for &(pos, w) in or.items() {
            let template = prepared
                .filtered
                .template_of(index.field(pos as usize).entity);
            let entry = per_template.entry(template).or_insert((0, 0));
            entry.0 += 1;
            if truth.contains(pos, w) {
                entry.1 += 1;
            }
        }

        let mut rows: Vec<(TemplateId, u64, u64)> = per_template
            .into_iter()
            .map(|(t, (preds, tp))| (t, preds, tp))
            .collect();
        rows.sort_unstable_by_key(|&(t, preds, _)| (std::cmp::Reverse(preds), t));

        println!("per-template OR-ensemble performance (7-day windows, test year)");
        println!(
            "{:<26} {:>8} {:>6} {:>6} {:>10}",
            "template", "preds", "TP", "FP", "P [%]"
        );
        let mut below_target = 0;
        for &(template, preds, tp) in rows.iter().take(20) {
            let precision = tp as f64 / preds as f64;
            if precision < wikistale_core::TARGET_PRECISION {
                below_target += 1;
            }
            println!(
                "{:<26} {:>8} {:>6} {:>6} {:>10.2}{}",
                prepared.filtered.template_name(template),
                preds,
                tp,
                preds - tp,
                100.0 * precision,
                if precision < wikistale_core::TARGET_PRECISION {
                    "  ←"
                } else {
                    ""
                }
            );
        }
        println!(
            "\n{} of the top {} templates fall below the 85 % target — candidates \
             for per-template blocklisting or retraining.",
            below_target,
            rows.len().min(20)
        );

        println!("\npipeline stage breakdown (wikistale-obs registry):");
        print!(
            "{}",
            wikistale_obs::MetricsRegistry::global().render_table()
        );
    });
}
