//! Experiments G1 / G2 — regenerate the **§5.2 grid searches** on the
//! validation year (models trained on the training range only; selection
//! rule: highest recall among candidates with precision ≥ 85 %).
//!
//! * `--theta`   sweeps the field-correlation threshold θ ∈ {0.01 … 0.15}
//!   (paper's pick: 0.1 at 87.65 % precision / 5.19 % recall).
//! * `--apriori` sweeps Apriori min-support × min-confidence ×
//!   rule-validation fraction (paper's pick: 0.25 %, 60 %, 10 %).
//!
//! Without a selector both searches run.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin gridsearch --release -- --theta
//! ```

use wikistale_apriori::Support;
use wikistale_bench::run_experiment;
use wikistale_core::predictors::FieldCorrelationParams;
use wikistale_core::tuning::{
    apriori_grid_search, paper_apriori_grid, paper_theta_grid, theta_grid_search,
};

/// The paper quotes its grid-search numbers at daily granularity.
const GRANULARITY: u32 = 1;

fn main() {
    run_experiment("gridsearch", |prepared, rest| {
        let run_theta = rest.is_empty() || rest.iter().any(|f| f == "--theta");
        let run_apriori = rest.is_empty() || rest.iter().any(|f| f == "--apriori");

        if run_theta {
            let search = theta_grid_search(
                &prepared.filtered,
                &prepared.split,
                &FieldCorrelationParams::default(),
                &paper_theta_grid(),
                GRANULARITY,
            );
            println!("G1 — θ grid search (validation year, {GRANULARITY}-day windows)");
            println!("{:>6} {:>10} {:>10} {:>10}", "theta", "P [%]", "R [%]", "#");
            for (i, point) in search.points.iter().enumerate() {
                println!(
                    "{:>6.2} {:>10.2} {:>10.2} {:>10}{}",
                    point.params.theta,
                    100.0 * point.outcome.precision(),
                    100.0 * point.outcome.recall(),
                    point.outcome.predictions,
                    if search.best == Some(i) {
                        "   ← selected"
                    } else {
                        ""
                    }
                );
            }
            match search.best_params() {
                Some(p) => println!("selected θ = {:.2} (paper selected 0.10)\n", p.theta),
                None => println!("no θ met the 85 % precision target\n"),
            }
        }

        if run_apriori {
            let search = apriori_grid_search(
                &prepared.filtered,
                &prepared.split,
                paper_apriori_grid(),
                GRANULARITY,
            );
            println!("G2 — Apriori grid search (validation year, {GRANULARITY}-day windows)");
            println!(
                "{:>9} {:>6} {:>6} {:>10} {:>10} {:>10}",
                "support", "conf", "frac", "P [%]", "R [%]", "#"
            );
            for (i, point) in search.points.iter().enumerate() {
                let support = match point.params.apriori.min_support {
                    Support::Fraction(f) => f,
                    Support::Count(c) => c as f64,
                };
                println!(
                    "{:>9.4} {:>6.2} {:>6.2} {:>10.2} {:>10.2} {:>10}{}",
                    support,
                    point.params.apriori.min_confidence,
                    point.params.validation_fraction,
                    100.0 * point.outcome.precision(),
                    100.0 * point.outcome.recall(),
                    point.outcome.predictions,
                    if search.best == Some(i) {
                        "   ← selected"
                    } else {
                        ""
                    }
                );
            }
            match search.best_params() {
                Some(p) => println!(
                    "selected support {:?}, confidence {:.2}, fraction {:.2} (paper: 0.0025 / 0.60 / 0.10)",
                    p.apriori.min_support, p.apriori.min_confidence, p.validation_fraction
                ),
                None => println!("no Apriori configuration met the 85 % precision target"),
            }
        }
    });
}
